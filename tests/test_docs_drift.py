"""Drift checks: documentation tables vs their live registries.

``docs/metrics_reference.md`` embeds the table rendered by
``repro.obs.metrics.catalog_markdown_table()`` between ``catalog:begin`` /
``catalog:end`` markers; ``docs/sql_reference.md`` embeds
``repro.vertica.sql.analyzer.sa_codes_markdown_table()`` between
``sa-codes`` markers.  ``docs/observability.md`` and
``docs/fault_tolerance.md`` must name every span in ``SPAN_TAXONOMY`` and
every site in ``FAULT_SITES``.  These tests fail when either side moves
without the other.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs.metrics import (
    CATALOG,
    MetricsRegistry,
    catalog_markdown_table,
    declared_instruments,
)

DOC = Path(__file__).parent.parent / "docs" / "metrics_reference.md"


def documented_table() -> str:
    text = DOC.read_text()
    match = re.search(
        r"<!-- catalog:begin -->\n(.*?)\n<!-- catalog:end -->", text, re.DOTALL
    )
    assert match, "docs/metrics_reference.md lost its catalog markers"
    return match.group(1).strip()


def documented_names() -> set[str]:
    return set(re.findall(r"^\| `([a-z_]+)` \|", documented_table(), re.MULTILINE))


def test_doc_table_matches_rendered_catalog():
    """The embedded table is byte-identical to the generated rendering."""
    assert documented_table() == catalog_markdown_table(), (
        "docs/metrics_reference.md drifted from repro.obs.metrics.CATALOG; "
        "regenerate with `PYTHONPATH=src python -m repro.obs.metrics` and "
        "paste between the catalog:begin/end markers"
    )


def test_every_declared_metric_is_documented():
    missing = {spec.name for spec in declared_instruments()} - documented_names()
    assert not missing, f"declared but undocumented metrics: {sorted(missing)}"


def test_every_documented_metric_is_declared():
    stale = documented_names() - set(CATALOG)
    assert not stale, f"documented but undeclared metrics: {sorted(stale)}"


@pytest.mark.parametrize("spec", declared_instruments(),
                         ids=lambda spec: spec.name)
def test_declared_metric_instantiates_as_declared_kind(spec):
    """Every cataloged name creates a live instrument of its declared kind
    (so the doc's type column describes what snapshots actually contain)."""
    registry = MetricsRegistry()
    getter = {"counter": registry.counter, "gauge": registry.gauge,
              "histogram": registry.histogram}[spec.kind]
    instrument = getter(spec.name)
    assert instrument.spec is spec
    assert not instrument.dynamic


def test_emitting_modules_exist():
    """The 'emitted by' column names real importable modules."""
    import importlib

    for module in sorted({spec.module for spec in declared_instruments()}):
        importlib.import_module(module)


# ---------------------------------------------------------------------------
# SQL diagnostic codes: docs/sql_reference.md vs analyzer.SA_CODES
# ---------------------------------------------------------------------------

SQL_DOC = Path(__file__).parent.parent / "docs" / "sql_reference.md"


def test_sa_codes_table_matches_rendered_registry():
    from repro.vertica.sql.analyzer import sa_codes_markdown_table

    text = SQL_DOC.read_text()
    match = re.search(
        r"<!-- sa-codes:begin -->\n(.*?)\n<!-- sa-codes:end -->",
        text, re.DOTALL,
    )
    assert match, "docs/sql_reference.md lost its sa-codes markers"
    assert match.group(1).strip() == sa_codes_markdown_table(), (
        "docs/sql_reference.md drifted from analyzer.SA_CODES; regenerate "
        "with `PYTHONPATH=src python -c \"from repro.vertica.sql.analyzer "
        "import sa_codes_markdown_table; print(sa_codes_markdown_table())\"` "
        "and paste between the sa-codes markers"
    )


# ---------------------------------------------------------------------------
# Span taxonomy and fault sites: docs name every registered entry
# ---------------------------------------------------------------------------

def test_every_span_name_is_documented():
    from repro.obs.trace import SPAN_TAXONOMY

    text = (Path(__file__).parent.parent / "docs" / "observability.md").read_text()
    documented = set(re.findall(r"`([a-z_.]+)`", text))
    missing = set(SPAN_TAXONOMY) - documented
    assert not missing, (
        f"spans in SPAN_TAXONOMY but absent from docs/observability.md: "
        f"{sorted(missing)}"
    )


def test_every_fault_site_is_documented():
    from repro.faults import FAULT_SITES

    text = (Path(__file__).parent.parent / "docs" / "fault_tolerance.md").read_text()
    documented = set(re.findall(r"`([a-z_.]+)`", text))
    missing = set(FAULT_SITES) - documented
    assert not missing, (
        f"sites in FAULT_SITES but absent from docs/fault_tolerance.md: "
        f"{sorted(missing)}"
    )


# ---------------------------------------------------------------------------
# Architecture map: docs/architecture.md covers every src/repro/ package
# ---------------------------------------------------------------------------

def repro_packages() -> set[str]:
    """Dotted names of every package under ``src/repro/`` (``repro.x.y``)."""
    src = Path(__file__).parent.parent / "src" / "repro"
    packages = set()
    for init in src.rglob("__init__.py"):
        relative = init.parent.relative_to(src.parent)
        packages.add(".".join(relative.parts))
    packages.discard("repro")
    return packages


def test_architecture_map_mentions_every_package():
    """The system map stays complete: a new src/repro/ package must appear
    in docs/architecture.md (by dotted name) before it ships."""
    doc = Path(__file__).parent.parent / "docs" / "architecture.md"
    assert doc.exists(), "docs/architecture.md is missing"
    text = doc.read_text()
    missing = {pkg for pkg in repro_packages() if pkg not in text}
    assert not missing, (
        f"packages absent from docs/architecture.md: {sorted(missing)}; "
        "add each to the system map (one line in the right subsystem section)"
    )


def test_architecture_map_links_the_subsystem_docs():
    """The map cross-links every other doc in docs/."""
    docs = Path(__file__).parent.parent / "docs"
    text = (docs / "architecture.md").read_text()
    missing = {
        path.name for path in docs.glob("*.md")
        if path.name != "architecture.md" and f"({path.name})" not in text
    }
    assert not missing, (
        f"docs not linked from docs/architecture.md: {sorted(missing)}"
    )
