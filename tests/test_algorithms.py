"""Tests for the distributed ML algorithms and single-threaded baselines."""

import numpy as np
import pytest

from repro.algorithms import (
    accuracy,
    assign_to_centers,
    binomial,
    confusion_matrix,
    cv_hpdglm,
    family_by_name,
    gaussian,
    hpdglm,
    hpdkmeans,
    hpdpagerank,
    hpdrandomforest,
    log_loss,
    mean_squared_error,
    poisson,
    r_squared,
    train_tree,
)
from repro.errors import ModelError
from repro.rbase import glm_fit, lm, r_kmeans
from repro.workloads import make_blobs, make_classification, make_regression


def fill_pair(session, features, responses, npartitions=3):
    """Load co-partitioned (Y, X) darrays from plain arrays."""
    x = session.darray(npartitions=npartitions)
    x.fill_from(features)
    y = session.darray(
        npartitions=npartitions,
        worker_assignment=[x.worker_of(i) for i in range(npartitions)],
    )
    boundaries = np.linspace(0, len(features), npartitions + 1).astype(int)
    for i in range(npartitions):
        y.fill_partition(i, responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
    return y, x


class TestFamilies:
    def test_lookup(self):
        assert family_by_name("gaussian").name == "gaussian"
        assert family_by_name("BINOMIAL").link_name == "logit"
        assert family_by_name("poisson").link_name == "log"
        with pytest.raises(ModelError):
            family_by_name("gamma")

    def test_sigmoid_stable_at_extremes(self):
        fam = binomial()
        mu = fam.inverse_link(np.array([-800.0, 0.0, 800.0]))
        assert mu[0] == pytest.approx(0.0)
        assert mu[1] == pytest.approx(0.5)
        assert mu[2] == pytest.approx(1.0)
        assert np.isfinite(mu).all()

    def test_gaussian_deviance_is_sse(self):
        fam = gaussian()
        y = np.array([1.0, 2.0])
        mu = np.array([0.0, 0.0])
        assert fam.deviance(y, mu).sum() == pytest.approx(5.0)

    def test_binomial_deviance_zero_at_perfect_fit(self):
        fam = binomial()
        y = np.array([0.0, 1.0])
        assert fam.deviance(y, y).sum() == pytest.approx(0.0, abs=1e-6)

    def test_binomial_response_validation(self):
        with pytest.raises(ModelError):
            binomial().validate_response(np.array([0.0, 2.0]))

    def test_poisson_response_validation(self):
        with pytest.raises(ModelError):
            poisson().validate_response(np.array([-1.0]))


class TestHpdGlm:
    def test_gaussian_recovers_truth(self, session):
        data = make_regression(4000, 4, noise_scale=0.05, seed=1)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x, family="gaussian")
        assert model.converged
        assert model.coefficients[0] == pytest.approx(data.true_intercept, abs=0.02)
        assert np.allclose(model.coefficients[1:], data.true_coefficients, atol=0.02)

    def test_gaussian_matches_lstsq_exactly(self, session):
        data = make_regression(500, 3, noise_scale=0.5, seed=2)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x, family="gaussian")
        design = np.column_stack([np.ones(500), data.features])
        expected = np.linalg.lstsq(design, data.responses, rcond=None)[0]
        assert np.allclose(model.coefficients, expected, atol=1e-8)

    def test_binomial_recovers_signs_and_scale(self, session):
        data = make_classification(8000, 3, seed=3,
                                   coefficients=np.array([1.5, -2.0, 0.8]))
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        model = hpdglm(y, x, family="binomial")
        assert model.converged
        assert np.allclose(model.coefficients[1:], [1.5, -2.0, 0.8], atol=0.25)

    def test_binomial_matches_single_node_irls(self, session):
        data = make_classification(2000, 2, seed=4)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        distributed = hpdglm(y, x, family="binomial")
        single = glm_fit(data.features, data.responses, family="binomial")
        assert np.allclose(distributed.coefficients, single, atol=1e-6)

    def test_poisson_fit(self, session):
        rng = np.random.default_rng(5)
        x_data = rng.normal(size=(3000, 2))
        rate = np.exp(0.3 + x_data @ np.array([0.5, -0.4]))
        counts = rng.poisson(rate).astype(float)
        y, x = fill_pair(session, x_data, counts)
        model = hpdglm(y, x, family="poisson")
        assert np.allclose(model.coefficients, [0.3, 0.5, -0.4], atol=0.1)

    def test_no_intercept(self, session):
        data = make_regression(1000, 2, intercept=0.0, noise_scale=0.01, seed=6)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x, intercept=False)
        assert len(model.coefficients) == 2
        assert np.allclose(model.coefficients, data.true_coefficients, atol=0.01)

    def test_ridge_shrinks(self, session):
        data = make_regression(300, 3, noise_scale=0.1, seed=7)
        y, x = fill_pair(session, data.features, data.responses)
        plain = hpdglm(y, x)
        ridged = hpdglm(y, x, ridge=100.0)
        assert np.linalg.norm(ridged.coefficients[1:]) < np.linalg.norm(
            plain.coefficients[1:]
        )

    def test_predict_response_and_link(self, session):
        data = make_classification(2000, 2, seed=8)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        model = hpdglm(y, x, family="binomial")
        probabilities = model.predict(data.features)
        assert ((probabilities >= 0) & (probabilities <= 1)).all()
        link = model.predict(data.features, response_type="link")
        assert not ((link >= 0) & (link <= 1)).all()

    def test_predict_wrong_width_rejected(self, session):
        data = make_regression(200, 3, seed=9)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x)
        with pytest.raises(ModelError):
            model.predict(np.ones((5, 7)))

    def test_trace_records_iterations(self, session):
        data = make_classification(1000, 2, seed=10)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        trace = []
        model = hpdglm(y, x, family="binomial", trace=trace)
        assert len(trace) == model.iterations
        deviances = [t[0] for t in trace]
        assert deviances[-1] <= deviances[0]

    def test_summary_mentions_features(self, session):
        data = make_regression(200, 2, seed=11)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x, feature_names=["alpha", "beta"])
        text = model.summary()
        assert "alpha" in text and "beta" in text and "(Intercept)" in text

    def test_standard_errors_shrink_with_data(self, session):
        small = make_regression(200, 2, noise_scale=1.0, seed=12)
        big = make_regression(5000, 2, noise_scale=1.0, seed=12)
        y_s, x_s = fill_pair(session, small.features, small.responses)
        y_b, x_b = fill_pair(session, big.features, big.responses)
        se_small = hpdglm(y_s, x_s).standard_errors
        se_big = hpdglm(y_b, x_b).standard_errors
        assert (se_big < se_small).all()

    def test_mismatched_partitions_rejected(self, session):
        x = session.darray(npartitions=2)
        x.fill_from(np.ones((10, 2)))
        y = session.darray(npartitions=3)
        y.fill_from(np.ones((10, 1)))
        with pytest.raises(ModelError):
            hpdglm(y, x)

    def test_too_few_rows_rejected(self, session):
        x = session.darray(npartitions=1)
        x.fill_from(np.ones((2, 5)))
        y = session.darray(npartitions=1, worker_assignment=[x.worker_of(0)])
        y.fill_partition(0, np.ones((2, 1)))
        with pytest.raises(ModelError):
            hpdglm(y, x)

    def test_null_deviance_exceeds_deviance(self, session):
        data = make_regression(1000, 3, noise_scale=0.1, seed=13)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x)
        assert model.null_deviance > model.deviance

    def test_unequal_partitions_supported(self, session):
        data = make_regression(100, 2, noise_scale=0.01, seed=14)
        x = session.darray(npartitions=3)
        x.fill_partition(0, data.features[:10])
        x.fill_partition(1, data.features[10:80])
        x.fill_partition(2, data.features[80:])
        y = session.darray(npartitions=3,
                           worker_assignment=[x.worker_of(i) for i in range(3)])
        y.fill_partition(0, data.responses[:10].reshape(-1, 1))
        y.fill_partition(1, data.responses[10:80].reshape(-1, 1))
        y.fill_partition(2, data.responses[80:].reshape(-1, 1))
        model = hpdglm(y, x)
        assert np.allclose(model.coefficients[1:], data.true_coefficients, atol=0.05)


class TestHpdKmeans:
    def test_recovers_blob_structure(self, session):
        dataset = make_blobs(2000, 5, 4, spread=0.2, seed=1)
        data = session.darray(npartitions=3)
        data.fill_from(dataset.points)
        model = hpdkmeans(data, k=4, seed=0, max_iterations=30)
        assert model.converged
        # Each true center should be close to some fitted center.
        for center in dataset.centers:
            distance = np.linalg.norm(model.centers - center, axis=1).min()
            assert distance < 0.5

    def test_inertia_decreases_monotonically(self, session):
        dataset = make_blobs(1500, 4, 5, seed=2)
        data = session.darray(npartitions=3)
        data.fill_from(dataset.points)
        inertias = []
        hpdkmeans(data, k=5, seed=0, max_iterations=15,
                  iteration_callback=lambda i, inertia: inertias.append(inertia))
        assert all(b <= a + 1e-6 for a, b in zip(inertias, inertias[1:]))

    def test_matches_single_threaded_given_same_init(self, session):
        dataset = make_blobs(800, 3, 4, seed=3)
        data = session.darray(npartitions=2)
        data.fill_from(dataset.points)
        init = dataset.points[:4].copy()
        distributed = hpdkmeans(data, k=4, initial_centers=init, max_iterations=10,
                                tolerance=0.0)
        sequential = r_kmeans(dataset.points, k=4, initial_centers=init,
                              max_iterations=10, tolerance=0.0)
        assert np.allclose(
            np.sort(distributed.centers, axis=0),
            np.sort(sequential.centers, axis=0),
            atol=1e-8,
        )
        assert distributed.inertia == pytest.approx(sequential.inertia)

    def test_predict_labels_consistent_with_centers(self, session):
        dataset = make_blobs(500, 3, 3, seed=4)
        data = session.darray(npartitions=2)
        data.fill_from(dataset.points)
        model = hpdkmeans(data, k=3, seed=1)
        labels = model.predict(dataset.points)
        expected, _ = assign_to_centers(dataset.points, model.centers)
        assert np.array_equal(labels, expected)

    def test_cluster_sizes_sum_to_n(self, session):
        dataset = make_blobs(700, 3, 4, seed=5)
        data = session.darray(npartitions=3)
        data.fill_from(dataset.points)
        model = hpdkmeans(data, k=4, seed=2)
        assert model.cluster_sizes.sum() == 700

    def test_kmeanspp_beats_random_init_on_average(self, session):
        dataset = make_blobs(1000, 4, 8, spread=0.1, seed=6)
        data = session.darray(npartitions=2)
        data.fill_from(dataset.points)
        pp = hpdkmeans(data, k=8, init="kmeans++", seed=3, max_iterations=3)
        rnd = hpdkmeans(data, k=8, init="random", seed=3, max_iterations=3)
        assert pp.inertia <= rnd.inertia * 1.5

    def test_k_larger_than_rows_rejected(self, session):
        data = session.darray(npartitions=1)
        data.fill_from(np.ones((3, 2)))
        with pytest.raises(ModelError):
            hpdkmeans(data, k=10)

    def test_bad_initial_centers_shape(self, session):
        data = session.darray(npartitions=1)
        data.fill_from(np.ones((10, 2)))
        with pytest.raises(ModelError):
            hpdkmeans(data, k=2, initial_centers=np.ones((2, 5)))

    def test_assign_to_centers_distances_nonnegative(self):
        points = np.random.default_rng(0).normal(size=(100, 3))
        labels, distances = assign_to_centers(points, points[:5])
        assert (distances >= 0).all()
        assert labels.max() < 5


class TestRandomForest:
    def test_single_tree_learns_threshold(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(500, 2))
        y = (x[:, 0] > 0.25).astype(np.int64)
        tree = train_tree(x, y, task="classification", seed=1)
        predictions = np.argmax(tree.predict_value(x), axis=1)
        assert accuracy(y, predictions) > 0.98

    def test_regression_tree_fits_step(self):
        x = np.linspace(0, 1, 300).reshape(-1, 1)
        y = np.where(x.ravel() > 0.5, 10.0, -10.0)
        tree = train_tree(x, y, task="regression", seed=2)
        assert mean_squared_error(y, tree.predict_value(x)) < 1.0

    def test_max_depth_respected(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(400, 3))
        y = rng.normal(size=400)
        tree = train_tree(x, y, task="regression", max_depth=3, seed=4)
        assert tree.depth <= 3

    def test_forest_classification(self, session):
        data = make_classification(2500, 3, seed=5,
                                   coefficients=np.array([2.0, -2.0, 1.0]))
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        forest = hpdrandomforest(y, x, n_trees=9, task="classification",
                                 max_depth=8, seed=6)
        predictions = forest.predict(data.features)
        assert accuracy(data.responses, predictions) > 0.8

    def test_forest_regression(self, session):
        data = make_regression(1500, 3, noise_scale=0.1, seed=7)
        y, x = fill_pair(session, data.features, data.responses)
        forest = hpdrandomforest(y, x, n_trees=9, task="regression",
                                 max_depth=10, seed=8)
        predictions = forest.predict(data.features)
        assert r_squared(data.responses, predictions) > 0.7

    def test_predict_proba_rows_sum_to_one(self, session):
        data = make_classification(800, 2, seed=9)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        forest = hpdrandomforest(y, x, n_trees=6, task="classification", seed=10)
        probabilities = forest.predict_proba(data.features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_proba_on_regression_rejected(self, session):
        data = make_regression(300, 2, seed=11)
        y, x = fill_pair(session, data.features, data.responses)
        forest = hpdrandomforest(y, x, n_trees=3, task="regression", seed=12)
        with pytest.raises(ModelError):
            forest.predict_proba(data.features)

    def test_tree_count_capped(self, session):
        data = make_regression(300, 2, seed=13)
        y, x = fill_pair(session, data.features, data.responses)
        forest = hpdrandomforest(y, x, n_trees=7, seed=14)
        assert forest.n_trees == 7

    def test_invalid_task_rejected(self):
        with pytest.raises(ModelError):
            train_tree(np.ones((10, 1)), np.ones(10), task="ranking")


class TestCrossValidation:
    def test_gaussian_cv_metric_near_noise_floor(self, session):
        data = make_regression(1200, 3, noise_scale=0.2, seed=15)
        y, x = fill_pair(session, data.features, data.responses)
        result = cv_hpdglm(y, x, family="gaussian", nfolds=4, seed=0)
        assert result.nfolds == 4
        assert len(result.models) == 4
        # Held-out MSE should approach the noise variance (0.04).
        assert result.mean_metric < 0.08

    def test_binomial_cv_accuracy(self, session):
        data = make_classification(2000, 2, seed=16,
                                   coefficients=np.array([3.0, -3.0]))
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        result = cv_hpdglm(y, x, family="binomial", nfolds=3, seed=1)
        assert result.metric_name == "accuracy"
        assert result.mean_metric > 0.8

    def test_summary_lists_folds(self, session):
        data = make_regression(600, 2, seed=17)
        y, x = fill_pair(session, data.features, data.responses)
        result = cv_hpdglm(y, x, nfolds=3, seed=2)
        assert result.summary().count("fold") >= 3

    def test_too_few_folds_rejected(self, session):
        data = make_regression(100, 2, seed=18)
        y, x = fill_pair(session, data.features, data.responses)
        with pytest.raises(ModelError):
            cv_hpdglm(y, x, nfolds=1)


class TestPageRank:
    def test_matches_networkx(self, session):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(19)
        edges = rng.integers(0, 30, size=(300, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        edges = np.unique(edges, axis=0)  # networkx collapses parallel edges
        graph = networkx.DiGraph()
        graph.add_nodes_from(range(30))
        graph.add_edges_from(map(tuple, edges))
        expected = networkx.pagerank(graph, alpha=0.85, tol=1e-10)

        earray = session.darray(npartitions=3, dtype=np.int64)
        earray.fill_from(edges.astype(np.float64))
        result = hpdpagerank(earray, n_nodes=30, tolerance=1e-12,
                             max_iterations=200)
        ours = result.ranks / result.ranks.sum()
        theirs = np.array([expected[i] for i in range(30)])
        assert np.allclose(ours, theirs, atol=1e-4)

    def test_ranks_sum_to_one(self, session):
        edges = np.array([[0, 1], [1, 2], [2, 0], [3, 0]], dtype=float)
        earray = session.darray(npartitions=2)
        earray.fill_from(edges)
        result = hpdpagerank(earray, n_nodes=4)
        assert result.ranks.sum() == pytest.approx(1.0, abs=1e-6)

    def test_top_returns_descending(self, session):
        edges = np.array([[1, 0], [2, 0], [3, 0], [3, 1]], dtype=float)
        earray = session.darray(npartitions=1)
        earray.fill_from(edges)
        result = hpdpagerank(earray, n_nodes=4)
        top = result.top(4)
        assert top[0][0] == 0
        ranks = [r for _, r in top]
        assert ranks == sorted(ranks, reverse=True)

    def test_bad_damping_rejected(self, session):
        earray = session.darray(npartitions=1)
        earray.fill_from(np.array([[0.0, 1.0]]))
        with pytest.raises(ModelError):
            hpdpagerank(earray, damping=1.5)


class TestRBaseline:
    def test_lm_matches_lstsq(self):
        data = make_regression(400, 3, noise_scale=0.3, seed=20)
        fit = lm(data.features, data.responses)
        design = np.column_stack([np.ones(400), data.features])
        expected = np.linalg.lstsq(design, data.responses, rcond=None)[0]
        assert np.allclose(fit.coefficients, expected, atol=1e-10)
        assert 0 <= fit.r_squared <= 1

    def test_lm_predict(self):
        data = make_regression(300, 2, noise_scale=0.01, seed=21)
        fit = lm(data.features, data.responses)
        predictions = fit.predict(data.features)
        assert r_squared(data.responses, predictions) > 0.99

    def test_lm_shape_validation(self):
        with pytest.raises(ModelError):
            lm(np.ones((5, 2)), np.ones(4))

    def test_r_kmeans_converges(self):
        dataset = make_blobs(600, 3, 4, seed=22)
        model = r_kmeans(dataset.points, k=4, seed=0, max_iterations=30)
        assert model.converged
        assert model.cluster_sizes.sum() == 600


class TestMetrics:
    def test_mse_rmse(self):
        assert mean_squared_error([1, 2], [1, 4]) == pytest.approx(2.0)

    def test_r_squared_perfect(self):
        y = np.arange(10.0)
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_log_loss_bounds(self):
        assert log_loss([1, 0], [0.9, 0.1]) < log_loss([1, 0], [0.6, 0.4])

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert labels == [0, 1]
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 1] == 2

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            mean_squared_error([1], [1, 2])
