"""Tests for the Distributed R engine: data structures and sessions."""

import numpy as np
import pytest

from repro.dr import DRSession, clone, partitionsize, start_session
from repro.errors import PartitionError, SessionError


class TestDArrayFlexible:
    def test_declaration_reserves_no_memory(self, session):
        array = session.darray(npartitions=3)
        assert array.npartitions == 3
        assert not array.is_filled
        assert session.master.total_bytes() == 0

    def test_unequal_partitions(self, session):
        array = session.darray(npartitions=3)
        array.fill_partition(0, np.ones((1, 2)))
        array.fill_partition(1, np.ones((3, 2)))
        array.fill_partition(2, np.ones((2, 2)))
        assert array.shape == (6, 2)
        assert array.partition_shapes() == [(1, 2), (3, 2), (2, 2)]

    def test_collect_preserves_row_order(self, session):
        array = session.darray(npartitions=2)
        array.fill_partition(0, np.array([[1.0], [2.0]]))
        array.fill_partition(1, np.array([[3.0]]))
        assert np.array_equal(array.collect().ravel(), [1.0, 2.0, 3.0])

    def test_column_conformability_enforced(self, session):
        array = session.darray(npartitions=2)
        array.fill_partition(0, np.ones((2, 3)))
        with pytest.raises(PartitionError, match="column"):
            array.fill_partition(1, np.ones((2, 4)))

    def test_vector_fill_becomes_column(self, session):
        array = session.darray(npartitions=1)
        array.fill_partition(0, np.arange(5.0))
        assert array.shape == (5, 1)

    def test_refill_partition_allowed(self, session):
        array = session.darray(npartitions=1)
        array.fill_partition(0, np.ones((2, 2)))
        array.fill_partition(0, np.zeros((5, 2)))
        assert array.shape == (5, 2)

    def test_nrow_unknown_until_filled(self, session):
        array = session.darray(npartitions=2)
        array.fill_partition(0, np.ones((2, 2)))
        with pytest.raises(PartitionError):
            _ = array.nrow

    def test_collect_unfilled_rejected(self, session):
        array = session.darray(npartitions=2)
        with pytest.raises(PartitionError):
            array.collect()

    def test_fill_from_splits_evenly(self, session):
        array = session.darray(npartitions=3)
        array.fill_from(np.arange(12.0).reshape(6, 2))
        assert array.shape == (6, 2)
        assert np.array_equal(array.collect(), np.arange(12.0).reshape(6, 2))

    def test_out_of_range_partition(self, session):
        array = session.darray(npartitions=2)
        with pytest.raises(PartitionError):
            array.fill_partition(5, np.ones((1, 1)))

    def test_free_releases_memory(self, session):
        array = session.darray(npartitions=2)
        array.fill_from(np.ones((10, 4)))
        assert session.master.total_bytes() > 0
        array.free()
        assert session.master.total_bytes() == 0
        assert not array.is_filled

    def test_3d_rejected(self, session):
        array = session.darray(npartitions=1)
        with pytest.raises(PartitionError):
            array.fill_partition(0, np.ones((2, 2, 2)))


class TestDArrayLegacy:
    def test_grid_blocks(self, session):
        array = session.darray(dim=(6, 4), blocks=(2, 2))
        assert array.npartitions == 6  # 3 row blocks x 2 col blocks
        assert array.is_legacy
        assert array.shape == (6, 4)

    def test_zero_filled_at_declaration(self, session):
        array = session.darray(dim=(4, 2), blocks=(2, 2))
        assert np.array_equal(array.collect(), np.zeros((4, 2)))

    def test_trailing_block_smaller(self, session):
        array = session.darray(dim=(5, 2), blocks=(2, 2))
        shapes = array.partition_shapes()
        assert shapes[-1] == (1, 2)

    def test_exact_block_shape_enforced(self, session):
        array = session.darray(dim=(4, 2), blocks=(2, 2))
        with pytest.raises(PartitionError):
            array.fill_partition(0, np.ones((3, 2)))

    def test_fill_from_roundtrip(self, session):
        data = np.arange(24.0).reshape(6, 4)
        array = session.darray(dim=(6, 4), blocks=(2, 2))
        array.fill_from(data)
        assert np.array_equal(array.collect(), data)

    def test_dim_and_npartitions_mutually_exclusive(self, session):
        with pytest.raises(PartitionError):
            session.darray(npartitions=2, dim=(4, 2), blocks=(2, 2))
        with pytest.raises(PartitionError):
            session.darray()

    def test_blocks_required_with_dim(self, session):
        with pytest.raises(PartitionError):
            session.darray(dim=(4, 2))

    def test_block_larger_than_dim_rejected(self, session):
        with pytest.raises(PartitionError):
            session.darray(dim=(2, 2), blocks=(4, 2))

    def test_clone_of_legacy_rejected(self, session):
        array = session.darray(dim=(4, 2), blocks=(2, 2))
        with pytest.raises(PartitionError):
            clone(array)


class TestTable1Helpers:
    def test_partitionsize_single(self, session):
        array = session.darray(npartitions=2)
        array.fill_partition(0, np.ones((3, 2)))
        array.fill_partition(1, np.ones((1, 2)))
        assert partitionsize(array, 0) == (3, 2)
        assert partitionsize(array, 1) == (1, 2)

    def test_partitionsize_matrix(self, session):
        array = session.darray(npartitions=2)
        array.fill_from(np.ones((4, 2)))
        sizes = partitionsize(array)
        assert sizes.shape == (2, 2)
        assert sizes.sum(axis=0)[0] == 4

    def test_partitionsize_unfilled_rejected(self, session):
        array = session.darray(npartitions=2)
        with pytest.raises(PartitionError):
            partitionsize(array)

    def test_clone_structure_and_colocation(self, session):
        array = session.darray(npartitions=3)
        array.fill_partition(0, np.ones((1, 4)))
        array.fill_partition(1, np.ones((5, 4)))
        array.fill_partition(2, np.ones((2, 4)))
        cloned = clone(array)
        assert cloned.partition_shapes() == array.partition_shapes()
        for i in range(3):
            assert cloned.worker_of(i) == array.worker_of(i)

    def test_clone_ncol_override(self, session):
        array = session.darray(npartitions=2)
        array.fill_from(np.ones((6, 4)))
        vector = clone(array, ncol=1, fill=7.0)
        assert vector.ncol == 1
        assert np.all(vector.collect() == 7.0)
        assert vector.nrow == 6

    def test_clone_unfilled_rejected(self, session):
        array = session.darray(npartitions=2)
        with pytest.raises(PartitionError):
            clone(array)


class TestDFrame:
    def test_fill_and_collect(self, session):
        frame = session.dframe(npartitions=2)
        frame.fill_partition(0, {"x": np.arange(3),
                                 "s": np.array(["a", "b", "c"], dtype=object)})
        frame.fill_partition(1, {"x": np.arange(2),
                                 "s": np.array(["d", "e"], dtype=object)})
        collected = frame.collect()
        assert list(collected["s"]) == ["a", "b", "c", "d", "e"]
        assert frame.nrow == 5

    def test_column_names_conformability(self, session):
        frame = session.dframe(npartitions=2)
        frame.fill_partition(0, {"x": np.arange(3)})
        with pytest.raises(PartitionError):
            frame.fill_partition(1, {"y": np.arange(3)})

    def test_ragged_partition_rejected(self, session):
        frame = session.dframe(npartitions=1)
        with pytest.raises(PartitionError):
            frame.fill_partition(0, {"x": np.arange(3), "y": np.arange(2)})

    def test_column_array(self, session):
        frame = session.dframe(npartitions=2)
        frame.fill_partition(0, {"x": np.arange(3)})
        frame.fill_partition(1, {"x": np.arange(3, 5)})
        assert np.array_equal(frame.column_array("x"), np.arange(5))

    def test_unknown_column_rejected(self, session):
        frame = session.dframe(npartitions=1)
        frame.fill_partition(0, {"x": np.arange(3)})
        with pytest.raises(PartitionError):
            frame.column_array("nope")


class TestDList:
    def test_fill_append_collect(self, session):
        dlist = session.dlist(npartitions=2)
        dlist.fill_partition(0, [1, 2])
        dlist.append_to_partition(0, 3)
        dlist.fill_partition(1, ["a"])
        assert dlist.collect() == [1, 2, 3, "a"]
        assert dlist.total_items == 4

    def test_append_to_empty_partition(self, session):
        dlist = session.dlist(npartitions=1)
        dlist.append_to_partition(0, "first")
        assert dlist.collect() == ["first"]

    def test_non_list_rejected(self, session):
        dlist = session.dlist(npartitions=1)
        with pytest.raises(PartitionError):
            dlist.fill_partition(0, (1, 2))

    def test_partial_collect_skips_empty(self, session):
        dlist = session.dlist(npartitions=3)
        dlist.fill_partition(1, ["only"])
        assert dlist.collect() == ["only"]


class TestExecution:
    def test_map_partitions_gathers_in_order(self, session):
        array = session.darray(npartitions=3)
        array.fill_from(np.arange(9.0).reshape(9, 1))
        sums = array.map_partitions(lambda i, part: float(part.sum()))
        assert sum(sums) == pytest.approx(36.0)
        assert len(sums) == 3

    def test_map_partitions_receives_index(self, session):
        array = session.darray(npartitions=3)
        array.fill_from(np.ones((6, 1)))
        indices = array.map_partitions(lambda i, part: i)
        assert indices == [0, 1, 2]

    def test_map_with_copartitioned_arrays(self, session):
        x = session.darray(npartitions=2)
        x.fill_from(np.ones((4, 2)))
        y = clone(x, ncol=1, fill=2.0)
        dots = x.map_partitions(lambda i, xs, ys: float((xs.sum(axis=1) * ys.ravel()).sum()), y)
        assert sum(dots) == pytest.approx(16.0)

    def test_partition_count_mismatch_rejected(self, session):
        x = session.darray(npartitions=2)
        x.fill_from(np.ones((4, 1)))
        y = session.darray(npartitions=3)
        y.fill_from(np.ones((4, 1)))
        with pytest.raises(PartitionError):
            x.map_partitions(lambda i, a, b: None, y)

    def test_update_partitions(self, session):
        array = session.darray(npartitions=2)
        array.fill_from(np.ones((4, 2)))
        array.update_partitions(lambda i, part: part * 10)
        assert np.all(array.collect() == 10.0)

    def test_exception_in_task_propagates(self, session):
        array = session.darray(npartitions=2)
        array.fill_from(np.ones((4, 1)))

        def boom(i, part):
            raise ValueError("task failed")

        with pytest.raises(ValueError, match="task failed"):
            array.map_partitions(boom)

    def test_foreach(self, session):
        result = session.foreach(range(5), lambda i: i * i)
        assert result == [0, 1, 4, 9, 16]

    def test_remote_fetch_counted(self, session):
        x = session.darray(npartitions=2, worker_assignment=[0, 1])
        x.fill_from(np.ones((4, 1)))
        y = session.darray(npartitions=2, worker_assignment=[1, 2])
        y.fill_from(np.ones((4, 1)))
        before = session.telemetry.get("dr_remote_partition_fetches")
        x.map_partitions(lambda i, a, b: None, y)
        assert session.telemetry.get("dr_remote_partition_fetches") > before


class TestSessionLifecycle:
    def test_start_session_shape(self):
        with start_session(node_count=2, instances_per_node=4) as session:
            assert session.node_count == 2
            assert session.total_instances == 8

    def test_memory_limit_enforced(self):
        with start_session(node_count=1, instances_per_node=1,
                           memory_limit_per_worker=1000) as session:
            array = session.darray(npartitions=1)
            with pytest.raises(MemoryError):
                array.fill_partition(0, np.ones((1000, 10)))

    def test_shutdown_rejects_new_work(self):
        session = start_session(node_count=1, instances_per_node=1)
        session.shutdown()
        with pytest.raises(SessionError):
            session.darray(npartitions=1)

    def test_double_shutdown_safe(self):
        session = start_session(node_count=1, instances_per_node=1)
        session.shutdown()
        session.shutdown()

    def test_invalid_shapes_rejected(self):
        with pytest.raises(SessionError):
            DRSession(node_count=0)
        with pytest.raises(SessionError):
            DRSession(node_count=1, instances_per_node=0)

    def test_worker_assignment_validation(self, session):
        with pytest.raises(PartitionError):
            session.darray(npartitions=2, worker_assignment=[0])
        with pytest.raises(PartitionError):
            session.darray(npartitions=1, worker_assignment=[99])

    def test_memory_manager_tracks_partition_map(self, session):
        array = session.darray(npartitions=3)
        array.fill_from(np.ones((6, 1)))
        mapping = session.master.partition_map()
        assert array.object_id in mapping
        assert len(mapping[array.object_id]) == 3
