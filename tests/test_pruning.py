"""Tests for zone-map predicate pushdown (row-group pruning)."""

import numpy as np
import pytest

from repro.vertica import VerticaCluster
from repro.vertica.pruning import ColumnRange, extract_column_ranges
from repro.vertica.sql import parse_expression


def ranges_of(text: str) -> dict[str, ColumnRange]:
    return extract_column_ranges(parse_expression(text))


class TestRangeExtraction:
    def test_simple_bounds(self):
        ranges = ranges_of("ts >= 10 AND ts < 20")
        assert ranges["ts"].low == 10
        assert ranges["ts"].high == 20

    def test_equality(self):
        ranges = ranges_of("k = 7")
        assert ranges["k"].low == ranges["k"].high == 7

    def test_mirrored_orientation(self):
        ranges = ranges_of("100 > ts AND 10 <= ts")
        assert ranges["ts"].low == 10
        assert ranges["ts"].high == 100

    def test_between_desugars_to_range(self):
        ranges = ranges_of("x BETWEEN 5 AND 9")
        assert ranges["x"].low == 5
        assert ranges["x"].high == 9

    def test_in_list_envelope(self):
        ranges = ranges_of("k IN (3, 9, 5)")
        assert ranges["k"].low == 3
        assert ranges["k"].high == 9

    def test_tightest_bound_wins(self):
        ranges = ranges_of("x > 1 AND x > 5 AND x < 100 AND x < 50")
        assert ranges["x"].low == 5
        assert ranges["x"].high == 50

    def test_negative_literals(self):
        ranges = ranges_of("x >= -10")
        assert ranges["x"].low == -10

    def test_or_contributes_nothing(self):
        assert ranges_of("x > 5 OR y < 3") == {}

    def test_cross_column_comparison_ignored(self):
        assert ranges_of("x > y") == {}

    def test_string_comparison_ignored(self):
        assert ranges_of("s = 'hello'") == {}

    def test_multiple_columns(self):
        ranges = ranges_of("a > 1 AND b < 2 AND s = 'x'")
        assert set(ranges) == {"a", "b"}

    def test_none_where(self):
        assert extract_column_ranges(None) == {}


@pytest.fixture
def clustered_cluster():
    """A table loaded in sorted batches: tight per-rowgroup zone maps."""
    cluster = VerticaCluster(node_count=2)
    cluster.sql("CREATE TABLE events (ts INT, v FLOAT)")
    for start in range(0, 50_000, 5_000):
        ts = np.arange(start, start + 5_000)
        cluster.bulk_load("events", {"ts": ts, "v": ts * 0.5})
    return cluster


class TestPruningExecution:
    def test_selective_query_prunes(self, clustered_cluster):
        result = clustered_cluster.sql(
            "SELECT COUNT(*) FROM events WHERE ts >= 45000")
        assert result.scalar() == 5_000
        assert clustered_cluster.telemetry.get("rowgroups_pruned") > 0

    def test_results_identical_with_and_without_pruning(self, clustered_cluster):
        query = ("SELECT SUM(v) FROM events "
                 "WHERE ts BETWEEN 12000 AND 17999")
        pruned = clustered_cluster.sql(query).scalar()
        expected = float((np.arange(12_000, 18_000) * 0.5).sum())
        assert pruned == pytest.approx(expected)

    def test_full_scan_prunes_nothing(self, clustered_cluster):
        before = clustered_cluster.telemetry.get("rowgroups_pruned")
        clustered_cluster.sql("SELECT COUNT(*) FROM events")
        assert clustered_cluster.telemetry.get("rowgroups_pruned") == before

    def test_impossible_predicate_prunes_everything(self, clustered_cluster):
        assert clustered_cluster.sql(
            "SELECT COUNT(*) FROM events WHERE ts > 10000000").scalar() == 0
        # every row group on every node skipped
        assert clustered_cluster.telemetry.get("rowgroups_pruned") >= 10

    def test_pruning_on_unprojected_column(self, clustered_cluster):
        """The constrained column need not be in the SELECT list."""
        result = clustered_cluster.sql(
            "SELECT AVG(v) FROM events WHERE ts < 5000")
        assert result.scalar() == pytest.approx(
            float((np.arange(5_000) * 0.5).mean()))

    def test_or_predicate_still_correct(self, clustered_cluster):
        count = clustered_cluster.sql(
            "SELECT COUNT(*) FROM events WHERE ts < 100 OR ts >= 49900"
        ).scalar()
        assert count == 200

    def test_pruning_with_disk_backed_table(self, tmp_path):
        cluster = VerticaCluster(node_count=2, data_dir=tmp_path)
        cluster.sql("CREATE TABLE d (ts INT)")
        for start in range(0, 20_000, 5_000):
            cluster.bulk_load("d", {"ts": np.arange(start, start + 5_000)})
        assert cluster.sql(
            "SELECT COUNT(*) FROM d WHERE ts >= 19000").scalar() == 1_000
        assert cluster.telemetry.get("rowgroups_pruned") > 0

    def test_unclustered_data_prunes_little_but_stays_correct(self):
        cluster = VerticaCluster(node_count=2)
        rng = np.random.default_rng(80)
        values = rng.permutation(30_000)
        cluster.sql("CREATE TABLE shuffled (x INT)")
        for start in range(0, 30_000, 5_000):
            cluster.bulk_load("shuffled", {"x": values[start:start + 5_000]})
        count = cluster.sql(
            "SELECT COUNT(*) FROM shuffled WHERE x < 1000").scalar()
        assert count == 1_000  # zone maps overlap everywhere: no wrong answers
