"""Tests for the extension features: COPY CSV, EXPLAIN, naive Bayes, and
connected components."""

import numpy as np
import pytest

from repro.algorithms import (
    accuracy,
    hpdconnectedcomponents,
    hpdnaivebayes,
    register_naive_bayes_support,
)
from repro.deploy import deploy_model, deserialize_model, serialize_model
from repro.errors import CatalogError, ModelError, SqlSyntaxError, StorageError
from repro.vertica import VerticaCluster, copy_from_csv, write_csv
from repro.workloads import make_blobs


class TestCopyCsv:
    def make_table(self, cluster):
        cluster.sql("CREATE TABLE t (a INT, b FLOAT, s VARCHAR, flag BOOLEAN) "
                    "SEGMENTED BY HASH(a) ALL NODES")

    def test_roundtrip_all_types(self, cluster, tmp_path):
        self.make_table(cluster)
        rng = np.random.default_rng(1)
        columns = {
            "a": rng.integers(0, 100, 200),
            "b": rng.normal(size=200),
            "s": np.asarray([f"row {i}" for i in range(200)], dtype=object),
            "flag": rng.random(200) > 0.5,
        }
        path = tmp_path / "data.csv"
        assert write_csv(path, columns) == 200
        assert copy_from_csv(cluster, "t", path) == 200
        assert cluster.sql("SELECT COUNT(*) FROM t").scalar() == 200
        assert cluster.sql("SELECT SUM(a) FROM t").scalar() == columns["a"].sum()
        true_count = cluster.sql("SELECT COUNT(*) FROM t WHERE flag").scalar()
        assert true_count == int(columns["flag"].sum())

    def test_header_order_independent(self, cluster, tmp_path):
        self.make_table(cluster)
        path = tmp_path / "data.csv"
        path.write_text("s,flag,b,a\nhello,true,2.5,7\n")
        assert copy_from_csv(cluster, "t", path) == 1
        rows = cluster.sql("SELECT a, b, s FROM t").rows()
        assert rows == [(7, 2.5, "hello")]

    def test_headerless_uses_table_order(self, cluster, tmp_path):
        self.make_table(cluster)
        path = tmp_path / "data.csv"
        path.write_text("7,2.5,hello,false\n8,3.5,bye,true\n")
        assert copy_from_csv(cluster, "t", path, header=False) == 2

    def test_missing_header_column_rejected(self, cluster, tmp_path):
        self.make_table(cluster)
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2.0\n")
        with pytest.raises(CatalogError, match="missing"):
            copy_from_csv(cluster, "t", path)

    def test_bad_value_rejected(self, cluster, tmp_path):
        self.make_table(cluster)
        path = tmp_path / "data.csv"
        path.write_text("a,b,s,flag\nnotanint,1.0,x,true\n")
        with pytest.raises(StorageError):
            copy_from_csv(cluster, "t", path)

    def test_null_token_handling(self, cluster, tmp_path):
        self.make_table(cluster)
        path = tmp_path / "data.csv"
        path.write_text("a,b,s,flag\n1,,,true\n")
        assert copy_from_csv(cluster, "t", path) == 1
        value = cluster.sql("SELECT b FROM t").column("b")[0]
        assert np.isnan(value)

    def test_missing_file(self, cluster):
        self.make_table(cluster)
        with pytest.raises(StorageError, match="not found"):
            copy_from_csv(cluster, "t", "/nonexistent.csv")

    def test_empty_file_loads_zero(self, cluster, tmp_path):
        self.make_table(cluster)
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert copy_from_csv(cluster, "t", path) == 0

    def test_batched_loading(self, cluster, tmp_path):
        self.make_table(cluster)
        rng = np.random.default_rng(2)
        columns = {
            "a": rng.integers(0, 10, 500),
            "b": rng.normal(size=500),
            "s": np.asarray(["x"] * 500, dtype=object),
            "flag": np.zeros(500, dtype=bool),
        }
        path = tmp_path / "big.csv"
        write_csv(path, columns)
        assert copy_from_csv(cluster, "t", path, batch_rows=64) == 500
        assert cluster.sql("SELECT COUNT(*) FROM t").scalar() == 500


class TestExplain:
    def test_scan_plan(self, loaded_cluster):
        plan = loaded_cluster.sql(
            "EXPLAIN SELECT a FROM pts WHERE a > 0 ORDER BY a LIMIT 3"
        ).column("plan")
        text = "\n".join(plan)
        assert "SCAN pts" in text
        assert "FILTER" in text
        assert "SORT" in text
        assert "LIMIT 3" in text

    def test_aggregate_plan(self, loaded_cluster):
        plan = loaded_cluster.sql(
            "EXPLAIN SELECT k % 2, COUNT(*) FROM pts GROUP BY k % 2"
        ).column("plan")
        assert any("AGGREGATE" in line for line in plan)

    def test_join_plan(self, loaded_cluster):
        loaded_cluster.sql("CREATE TABLE dim (k INT, w FLOAT)")
        plan = loaded_cluster.sql(
            "EXPLAIN SELECT p.a FROM pts p JOIN dim d ON p.k = d.k"
        ).column("plan")
        text = "\n".join(plan)
        assert "HASH INNER JOIN" in text
        assert text.count("SCAN") == 2

    def test_udtf_plan(self, loaded_cluster):
        plan = loaded_cluster.sql(
            "EXPLAIN SELECT glmPredict(a USING PARAMETERS model='m') "
            "OVER (PARTITION NODES) FROM pts"
        ).column("plan")
        assert any("UDTF" in line and "one instance per node" in line
                   for line in plan)

    def test_explain_does_not_execute(self, loaded_cluster):
        # The referenced model does not exist; EXPLAIN must still succeed.
        loaded_cluster.sql(
            "EXPLAIN SELECT glmPredict(a USING PARAMETERS model='ghost') "
            "OVER (PARTITION BEST) FROM pts"
        )

    def test_explain_non_select_rejected(self, loaded_cluster):
        with pytest.raises(SqlSyntaxError):
            loaded_cluster.sql("EXPLAIN DROP TABLE pts")

    def test_segment_counts_in_scan_line(self, loaded_cluster):
        plan = loaded_cluster.sql("EXPLAIN SELECT a FROM pts").column("plan")
        assert "900 rows" in plan[0]


class TestNaiveBayes:
    def make_labeled(self, session, n=3000, seed=3):
        dataset = make_blobs(n, 4, 3, spread=0.5, seed=seed)
        x = session.darray(npartitions=3)
        x.fill_from(dataset.points)
        y = session.darray(npartitions=3,
                           worker_assignment=[x.worker_of(i) for i in range(3)])
        boundaries = np.linspace(0, n, 4).astype(int)
        for i in range(3):
            y.fill_partition(
                i, dataset.labels[boundaries[i]:boundaries[i + 1]]
                .astype(np.float64).reshape(-1, 1))
        return dataset, y, x

    def test_learns_blob_classes(self, session):
        dataset, y, x = self.make_labeled(session)
        model = hpdnaivebayes(y, x)
        assert model.n_classes == 3
        predictions = model.predict(dataset.points)
        assert accuracy(dataset.labels, predictions) > 0.95

    def test_matches_single_node_computation(self, session):
        dataset, y, x = self.make_labeled(session, n=900, seed=4)
        model = hpdnaivebayes(y, x)
        for klass in range(3):
            mask = dataset.labels == klass
            assert np.allclose(model.means[klass],
                               dataset.points[mask].mean(axis=0), atol=1e-9)
            assert np.allclose(
                model.variances[klass],
                dataset.points[mask].var(axis=0), atol=1e-6)

    def test_posteriors_sum_to_one(self, session):
        dataset, y, x = self.make_labeled(session, n=600, seed=5)
        model = hpdnaivebayes(y, x)
        probabilities = model.predict_proba(dataset.points[:50])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_empty_class_rejected(self, session):
        x = session.darray(npartitions=1)
        x.fill_from(np.random.default_rng(0).normal(size=(50, 2)))
        y = session.darray(npartitions=1,
                           worker_assignment=[x.worker_of(0)])
        y.fill_partition(0, np.zeros((50, 1)))  # only class 0
        with pytest.raises(ModelError):
            hpdnaivebayes(y, x, n_classes=3)

    def test_serialization_roundtrip(self, session):
        dataset, y, x = self.make_labeled(session, n=600, seed=6)
        cluster = VerticaCluster(node_count=2)
        register_naive_bayes_support(cluster)
        model = hpdnaivebayes(y, x)
        restored = deserialize_model(serialize_model(model))
        assert np.array_equal(restored.predict(dataset.points[:100]),
                              model.predict(dataset.points[:100]))

    def test_full_custom_model_deploy_and_sql_predict(self, session):
        """The §5 extension path end to end for a user-defined model type."""
        dataset, y, x = self.make_labeled(session, n=1200, seed=7)
        cluster = VerticaCluster(node_count=3)
        register_naive_bayes_support(cluster)
        rng = np.random.default_rng(8)
        columns = {"k": rng.integers(0, 10**6, 600),
                   **{f"f{j}": dataset.points[:600, j] for j in range(4)}}
        cluster.create_table_like("score_me", columns)
        cluster.bulk_load("score_me", columns)
        model = hpdnaivebayes(y, x)
        deploy_model(cluster, model, "nb1", description="custom model")
        result = cluster.sql(
            "SELECT nbPredict(f0, f1, f2, f3 USING PARAMETERS model='nb1') "
            "OVER (PARTITION BEST) FROM score_me"
        )
        assert len(result) == 600
        assert result.column("label").dtype.kind in "iu"
        table = cluster.catalog.get_table("score_me").scan_all(
            [f"f{j}" for j in range(4)])
        local = model.predict(np.column_stack([table[f"f{j}"] for j in range(4)]))
        assert np.array_equal(np.sort(result.column("label")), np.sort(local))


class TestConnectedComponents:
    def edges_to_darray(self, session, edges, npartitions=3):
        arr = session.darray(npartitions=npartitions)
        arr.fill_from(np.asarray(edges, dtype=np.float64))
        return arr

    def test_two_components(self, session):
        edges = [[0, 1], [1, 2], [3, 4]]
        result = hpdconnectedcomponents(
            self.edges_to_darray(session, edges, 2), n_nodes=5)
        assert result.converged
        assert result.n_components == 2
        assert result.same_component(0, 2)
        assert result.same_component(3, 4)
        assert not result.same_component(0, 3)

    def test_isolated_nodes_are_singletons(self, session):
        edges = [[0, 1]]
        result = hpdconnectedcomponents(
            self.edges_to_darray(session, edges, 1), n_nodes=4)
        assert result.n_components == 3
        sizes = result.component_sizes()
        assert sizes[0] == 2 and sizes[2] == 1 and sizes[3] == 1

    def test_matches_networkx(self, session):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(9)
        edges = rng.integers(0, 60, size=(80, 2))
        graph = networkx.Graph()
        graph.add_nodes_from(range(60))
        graph.add_edges_from(map(tuple, edges))
        expected = list(networkx.connected_components(graph))
        result = hpdconnectedcomponents(
            self.edges_to_darray(session, edges.astype(float)), n_nodes=60)
        assert result.n_components == len(expected)
        for component in expected:
            members = sorted(component)
            labels = {int(result.labels[m]) for m in members}
            assert len(labels) == 1

    def test_chain_converges_in_diameter_passes(self, session):
        chain = [[i, i + 1] for i in range(30)]
        result = hpdconnectedcomponents(
            self.edges_to_darray(session, chain, 3), n_nodes=31)
        assert result.converged
        assert result.n_components == 1

    def test_wrong_shape_rejected(self, session):
        arr = session.darray(npartitions=1)
        arr.fill_from(np.ones((4, 3)))
        with pytest.raises(ModelError):
            hpdconnectedcomponents(arr)
