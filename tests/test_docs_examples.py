"""Execute the fenced python blocks in the markdown docs.

Thin pytest wrapper over ``tools/docscheck.py`` (the same extraction and
execution the ``make docscheck`` / CI step uses), so broken documentation
examples fail the ordinary test run too — one test per markdown file.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import docscheck  # noqa: E402


def markdown_files() -> list[Path]:
    return docscheck.default_files()


@pytest.mark.parametrize("path", markdown_files(), ids=lambda p: p.name)
def test_doc_snippets_execute(path):
    errors = docscheck.run_file(path, verbose=False)
    assert not errors, "\n\n".join(errors)


def test_fence_extraction_sees_the_walkthrough():
    """Guard the extractor itself: the observability walkthrough must be
    found and runnable, and the static-analysis fragment must be skipped."""
    obs = docscheck.extract_fences(REPO_ROOT / "docs" / "observability.md")
    runnable = [fence for fence in obs if fence.runnable]
    assert len(runnable) >= 2

    static = docscheck.extract_fences(REPO_ROOT / "docs" / "static_analysis.md")
    python_fences = [f for f in static if f.language == "python"]
    assert python_fences and not any(f.runnable for f in python_fences)
