"""Shared fixtures: a small database cluster and a Distributed R session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dr import start_session
from repro.vertica import HashSegmentation, VerticaCluster


@pytest.fixture
def cluster():
    """A 3-node in-memory database cluster."""
    return VerticaCluster(node_count=3)


@pytest.fixture
def session():
    """A 3-worker Distributed R session (2 R instances each)."""
    with start_session(node_count=3, instances_per_node=2) as s:
        yield s


@pytest.fixture
def loaded_cluster(cluster):
    """The cluster with a hash-segmented numeric table ``pts`` (900 rows)."""
    rng = np.random.default_rng(7)
    n = 900
    columns = {
        "k": rng.integers(0, 10_000, n),
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "y": rng.normal(size=n),
    }
    cluster.create_table_like("pts", columns, HashSegmentation("k"))
    cluster.bulk_load("pts", columns)
    return cluster
