"""Shared fixtures: a small database cluster and a Distributed R session.

Also wires in the reprolint runtime race probe: with REPROLINT_LOCK_CHECK=1
in the environment, ``threading.Lock`` is replaced (before any engine object
is constructed) by an instrumented lock that fails the suite on lock-order
inversions.  Off by default; CI runs it as a separate race-probe job.
"""

from __future__ import annotations

import sys
from pathlib import Path

# The reprolint package lives in tools/, outside the installed src/ tree.
_TOOLS_DIR = str(Path(__file__).resolve().parent.parent / "tools")
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from reprolint import runtime as _reprolint_runtime  # noqa: E402

# Must happen before repro imports create any module-level locks.
_reprolint_runtime.maybe_install_from_env()

import numpy as np  # noqa: E402
import pytest  # noqa: E402

from repro.dr import start_session  # noqa: E402
from repro.vertica import HashSegmentation, VerticaCluster  # noqa: E402


@pytest.fixture
def cluster():
    """A 3-node in-memory database cluster."""
    return VerticaCluster(node_count=3)


@pytest.fixture
def session():
    """A 3-worker Distributed R session (2 R instances each)."""
    with start_session(node_count=3, instances_per_node=2) as s:
        yield s


@pytest.fixture
def loaded_cluster(cluster):
    """The cluster with a hash-segmented numeric table ``pts`` (900 rows)."""
    rng = np.random.default_rng(7)
    n = 900
    columns = {
        "k": rng.integers(0, 10_000, n),
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "y": rng.normal(size=n),
    }
    cluster.create_table_like("pts", columns, HashSegmentation("k"))
    cluster.bulk_load("pts", columns)
    return cluster
