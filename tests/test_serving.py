"""The serving layer: sessions, pools, admission, and both caches.

Covers the ISSUE-8 cache-correctness matrix — result-cache hit → mutate →
miss for every mutation flavor (INSERT, DELETE, UPDATE, mergeout purge,
model redeploy), ``AT EPOCH`` bypass, bit-identity of cached results
against direct uncached execution — plus admission control (queue-full and
timeout rejections, the ``serving.admit`` fault site) and a concurrent-
session stress that runs green under ``REPROLINT_LOCK_CHECK=1``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.errors import AdmissionError, ResourceError, ServingError
from repro.faults.plan import FaultKind, FaultPlan, InjectedFault
from repro.serving import PoolConfig, Server
from repro.serving.cache import PlanCache, ResultCache, is_cacheable
from repro.vertica.cluster import VerticaCluster
from repro.vertica.segmentation import HashSegmentation
from repro.vertica.sql.parser import parse
from repro.yarn.resource_manager import NodeCapacity, ResourceManager

MB = 1024 * 1024


def make_cluster(rows=600, nodes=3, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 1000, rows),
        "a": rng.normal(size=rows),
        "b": rng.normal(size=rows),
    }
    cluster = VerticaCluster(node_count=nodes, **kwargs)
    cluster.create_table_like("pts", columns, HashSegmentation("k"))
    cluster.bulk_load("pts", columns)
    return cluster


def make_server(cluster, **pool_kwargs):
    pool_kwargs.setdefault("max_concurrency", 4)
    return Server(cluster, pools=[PoolConfig("general", **pool_kwargs)])


def assert_results_identical(got, want):
    assert got.column_names == want.column_names
    for name in want.column_names:
        a, b = got.column(name), want.column(name)
        assert a.dtype == b.dtype
        assert np.array_equal(a, b), f"column {name!r} diverged"


# -- sessions -------------------------------------------------------------


class TestSessions:
    def test_session_lifecycle_and_gauge(self):
        cluster = make_cluster()
        with make_server(cluster) as server:
            assert cluster.telemetry.get("sessions_active") == 0
            with server.session() as session:
                assert cluster.telemetry.get("sessions_active") == 1
                assert server.active_sessions == 1
                result = session.execute("SELECT COUNT(*) AS n FROM pts")
                assert result.scalar() == 600
                assert session.statements == 1
            assert cluster.telemetry.get("sessions_active") == 0
            # Closing twice is idempotent: the gauge never goes negative.
            session.close()
            assert cluster.telemetry.get("sessions_active") == 0
            with pytest.raises(ServingError):
                session.execute("SELECT 1")

    def test_unknown_pool_and_closed_server(self):
        cluster = make_cluster()
        server = make_server(cluster)
        with pytest.raises(ServingError):
            server.session(pool="nope")
        server.close()
        server.close()  # idempotent
        with pytest.raises(ServingError):
            server.session()

    def test_serving_matches_direct_execution(self):
        cluster = make_cluster()
        direct = cluster.sql("SELECT k, SUM(a) AS s FROM pts "
                             "GROUP BY k ORDER BY k")
        with make_server(cluster) as server, server.session() as session:
            assert_results_identical(
                session.execute("SELECT k, SUM(a) AS s FROM pts "
                                "GROUP BY k ORDER BY k"),
                direct)

    def test_session_spans_emitted(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute("SELECT COUNT(*) FROM pts")
        names = [span.name for span in cluster.tracer.roots()]
        assert "serve.session" in names
        admits = [s for s in cluster.tracer.roots() if s.name == "serve.admit"]
        assert admits and admits[0].attributes["session"] == session.session_id
        execs = [c for s in admits for c in s.children
                 if c.name == "serve.execute"]
        assert execs, "serve.execute should nest under serve.admit"
        assert any(c.name == "query" for c in execs[0].children)


# -- plan cache -----------------------------------------------------------


class TestPlanCache:
    def test_parse_and_analyze_once_per_text(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute("SELECT SUM(a) FROM pts")
            session.execute("SELECT SUM(a) FROM pts")
            session.execute("SELECT   SUM(a)\n  FROM   pts")  # normalizes
        assert cluster.telemetry.get("plan_cache_misses") == 1
        assert cluster.telemetry.get("plan_cache_hits") == 2
        assert len(server.plan_cache) == 1

    def test_comment_stripping_shares_one_plan_entry(self):
        # ``--`` line comments are normalization noise: re-commented copies
        # of the same statement must hit the same prepared plan.
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute("SELECT SUM(a) FROM pts")
            session.execute("SELECT SUM(a) -- total\nFROM pts")
            session.execute("-- leading banner\nSELECT SUM(a)\nFROM pts"
                            " -- trailing, no newline")
        assert cluster.telemetry.get("plan_cache_misses") == 1
        assert cluster.telemetry.get("plan_cache_hits") == 2
        assert len(server.plan_cache) == 1

    def test_comment_stripping_preserves_string_literals(self):
        from repro.serving.cache import normalize_sql
        # A ``--`` inside a quoted literal is data, not a comment.
        sql = "SELECT COUNT(*) FROM t WHERE name = '-- keep me'"
        assert normalize_sql(sql) == sql
        # Doubled-quote escapes keep the scanner in string state.
        assert normalize_sql("SELECT 'it''s -- data' -- gone\nFROM t") == \
            "SELECT 'it''s -- data' FROM t"
        # The comment's newline still separates the surrounding tokens.
        assert normalize_sql("SELECT a--c\nFROM t") == "SELECT a FROM t"

    def test_ddl_change_invalidates_prepared_plans(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute("SELECT SUM(a) FROM pts")
            session.execute("CREATE TABLE other (x FLOAT)")
            session.execute("SELECT SUM(a) FROM pts")
        # The second SELECT re-analyzed: its plan was bound to the old
        # catalog version.
        assert cluster.telemetry.get("plan_cache_misses") >= 2

    def test_lru_eviction(self):
        cluster = make_cluster()
        cache = PlanCache(capacity=2)
        for i in range(4):
            cache.prepare(cluster, f"SELECT COUNT(*) AS n FROM pts WHERE k > {i}")
        assert len(cache) == 2

    def test_executor_mutation_does_not_corrupt_cached_ast(self):
        # _resolve_aliases rewrites GROUP BY/ORDER BY aliases in place and
        # the join path consumes WHERE; repeated executions must keep
        # returning identical results.
        cluster = make_cluster()
        sql = ("SELECT k AS key, COUNT(*) AS n FROM pts "
               "GROUP BY key ORDER BY key LIMIT 5")
        direct = cluster.sql(sql)
        with make_server(cluster) as server, server.session() as session:
            first = session.execute(sql)
            server.result_cache.clear()   # force re-execution from the AST
            second = session.execute(sql)
        assert_results_identical(first, direct)
        assert_results_identical(second, direct)


# -- result cache ---------------------------------------------------------


class TestResultCache:
    SQL = "SELECT SUM(a) AS s, COUNT(*) AS n FROM pts"

    def test_hit_is_bit_identical_to_uncached_execution(self):
        cluster = make_cluster()
        direct = cluster.sql(self.SQL)
        with make_server(cluster) as server, server.session() as session:
            miss = session.execute(self.SQL)
            hit = session.execute(self.SQL)
        assert cluster.telemetry.get("result_cache_hits") == 1
        assert cluster.telemetry.get("result_cache_misses") == 1
        assert_results_identical(miss, direct)
        assert_results_identical(hit, direct)

    @pytest.mark.parametrize("mutation", [
        "INSERT INTO pts VALUES (7, 100.0, 1.0)",
        "DELETE FROM pts WHERE k < 500",
        "UPDATE pts SET a = a + 1.0 WHERE k >= 500",
    ])
    def test_hit_then_mutate_then_miss(self, mutation):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute(self.SQL)
            session.execute(self.SQL)
            assert cluster.telemetry.get("result_cache_hits") == 1
            session.execute(mutation)
            fresh = session.execute(self.SQL)
            # The mutated-table key missed and re-executed...
            assert cluster.telemetry.get("result_cache_hits") == 1
            assert cluster.telemetry.get("result_cache_misses") == 2
            # ...and the answer matches direct execution of the new state.
            assert_results_identical(fresh, cluster.sql(self.SQL))

    def test_mergeout_purge_invalidates(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute("DELETE FROM pts WHERE k < 500")
            session.execute(self.SQL)
            session.execute(self.SQL)
            assert cluster.telemetry.get("result_cache_hits") == 1
            cluster.advance_ahm()
            cluster.tuple_mover.run_mergeout()
            fresh = session.execute(self.SQL)
            assert cluster.telemetry.get("result_cache_hits") == 1
            assert_results_identical(fresh, cluster.sql(self.SQL))

    def test_at_epoch_bypasses_the_result_cache(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            before = session.execute(self.SQL)
            epoch = cluster.catalog.epochs.current_epoch
            session.execute("DELETE FROM pts WHERE k < 500")
            historical_sql = f"AT EPOCH {epoch} {self.SQL}"
            hits0 = cluster.telemetry.get("result_cache_hits")
            misses0 = cluster.telemetry.get("result_cache_misses")
            first = session.execute(historical_sql)
            second = session.execute(historical_sql)
            # Neither execution touched the result cache.
            assert cluster.telemetry.get("result_cache_hits") == hits0
            assert cluster.telemetry.get("result_cache_misses") == misses0
            assert_results_identical(first, before)
            assert_results_identical(second, before)

    def test_returned_arrays_are_isolated_copies(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            first = session.execute(self.SQL)
            first.column("s")[0] = -1.0  # client scribbles on its copy
            hit = session.execute(self.SQL)
            assert hit.column("s")[0] != -1.0
            assert_results_identical(hit, cluster.sql(self.SQL))

    def test_non_select_statements_are_not_cached(self):
        cluster = make_cluster()
        with make_server(cluster) as server, server.session() as session:
            session.execute("INSERT INTO pts VALUES (1, 1.0, 1.0)")
            session.execute("INSERT INTO pts VALUES (1, 1.0, 1.0)")
        assert cluster.telemetry.get("result_cache_misses") == 0
        assert len(server.result_cache) == 0
        assert cluster.sql("SELECT COUNT(*) FROM pts").scalar() == 602

    def test_eviction_respects_byte_and_entry_bounds(self):
        cache = ResultCache(max_bytes=10 * MB, max_entries=3)
        from repro.vertica.executor import ResultSet

        big = ResultSet(["x"], {"x": np.zeros(MB // 2)})  # 4 MB each
        for i in range(4):
            cache.store(("k", i), big)
        assert len(cache) <= 2  # byte bound binds before the entry bound
        assert cache.resident_bytes <= 10 * MB
        # One oversize result is skipped outright.
        cache.store(("huge",), ResultSet(["x"], {"x": np.zeros(2 * MB)}))
        assert cache.lookup(("huge",)) is None

    def test_export_udtf_is_never_cached(self):
        cluster = make_cluster()
        cluster.install_standard_functions()
        udtf = cluster.catalog.get_udtf("ExportToDistributedR")
        assert udtf.cacheable is False
        stmt = parse("SELECT ExportToDistributedR(a USING PARAMETERS "
                     "target='t') OVER (PARTITION BEST) FROM pts")
        assert not is_cacheable(cluster, stmt)

    def test_model_redeploy_invalidates_predict_results(self):
        from repro.algorithms.glm import GlmModel
        from repro.deploy import deploy_model

        cluster = make_cluster(rows=300)
        sql = ("SELECT glmPredict(a, b USING PARAMETERS model='m') "
               "OVER (PARTITION NODES) FROM pts")

        def model(scale):
            return GlmModel(coefficients=np.array([0.0, scale, -scale]),
                            family="gaussian", link="identity", intercept=True,
                            iterations=1, deviance=0.0, null_deviance=0.0,
                            converged=True, n_observations=300)

        deploy_model(cluster, model(1.0), "m")
        with make_server(cluster) as server, server.session() as session:
            first = session.execute(sql)
            session.execute(sql)
            assert cluster.telemetry.get("result_cache_hits") == 1
            deploy_model(cluster, model(2.0), "m", replace=True)
            fresh = session.execute(sql)
            assert cluster.telemetry.get("result_cache_hits") == 1
            assert not np.array_equal(fresh.column("prediction"),
                                      first.column("prediction"))
            assert_results_identical(fresh, cluster.sql(sql))

    def test_r_models_select_tracks_catalog_version(self):
        from repro.algorithms.glm import GlmModel
        from repro.deploy import deploy_model

        cluster = make_cluster(rows=300)
        with make_server(cluster) as server, server.session() as session:
            deploy_model(cluster, GlmModel(
                coefficients=np.array([0.0, 1.0, -1.0]), family="gaussian",
                link="identity", intercept=True, iterations=1, deviance=0.0,
                null_deviance=0.0, converged=True, n_observations=300), "m1")
            assert len(session.execute("SELECT model FROM R_Models")) == 1
            deploy_model(cluster, GlmModel(
                coefficients=np.array([0.0, 1.0, -1.0]), family="gaussian",
                link="identity", intercept=True, iterations=1, deviance=0.0,
                null_deviance=0.0, converged=True, n_observations=300), "m2")
            assert len(session.execute("SELECT model FROM R_Models")) == 2

    def test_within_query_tracks_sample_lifecycle(self):
        cluster = make_cluster(rows=2000)
        sql = "SELECT COUNT(*) FROM pts WITHIN 50% ERROR"
        with make_server(cluster) as server, server.session() as session:
            session.execute("CREATE SAMPLE sp ON pts UNIFORM RATE 20%")
            first = session.execute(sql)
            assert first.column("sample_fraction")[0] < 1.0
            session.execute(sql)
            assert cluster.telemetry.get("result_cache_hits") == 1
            session.execute("DROP SAMPLE sp")
            fresh = session.execute(sql)
            # The AQP-catalog version is in the key: the cached approximate
            # answer missed, and the re-run fell back to exact.
            assert cluster.telemetry.get("result_cache_hits") == 1
            assert fresh.column("sample_fraction")[0] == 1.0
            assert fresh.column("estimate")[0] == 2000.0


# -- admission control ----------------------------------------------------


class TestAdmission:
    def test_queue_full_rejection(self):
        cluster = make_cluster()
        plan = FaultPlan.single("serving.admit", FaultKind.STALL,
                                stall_seconds=0.5, seed=7)
        cluster.install_fault_plan(plan)
        server = Server(cluster, pools=[PoolConfig(
            "tight", max_concurrency=1, queue_depth=1,
            admission_timeout_seconds=0.1)])
        with server, server.session(pool="tight") as session:
            stalled = threading.Thread(
                target=lambda: session.execute("SELECT COUNT(*) FROM pts"))
            stalled.start()
            # Wait until the stalled statement holds the worker slot.
            pool = server.pool("tight")
            for _ in range(200):
                if pool.running:
                    break
                threading.Event().wait(0.005)
            assert pool.running == 1
            # Distinct SQL texts: a result-cache hit would skip admission.
            filler = threading.Thread(target=lambda: (
                pytest.raises(AdmissionError,
                              session.execute, "SELECT COUNT(*) + 1 FROM pts")))
            filler.start()
            for _ in range(200):
                if pool.queued:
                    break
                threading.Event().wait(0.005)
            with pytest.raises(AdmissionError, match="queue is full"):
                session.execute("SELECT COUNT(*) + 2 FROM pts")
            stalled.join()
            filler.join()
        assert cluster.telemetry.get("statements_rejected") == 2
        assert cluster.telemetry.get("admission_queue_seconds_count") >= 1

    def test_admission_timeout_rejection(self):
        cluster = make_cluster()
        plan = FaultPlan.single("serving.admit", FaultKind.STALL,
                                stall_seconds=0.4, seed=7)
        cluster.install_fault_plan(plan)
        server = Server(cluster, pools=[PoolConfig(
            "tight", max_concurrency=1, queue_depth=4,
            admission_timeout_seconds=0.05)])
        with server, server.session(pool="tight") as session:
            stalled = threading.Thread(
                target=lambda: session.execute("SELECT COUNT(*) FROM pts"))
            stalled.start()
            pool = server.pool("tight")
            for _ in range(200):
                if pool.running:
                    break
                threading.Event().wait(0.005)
            with pytest.raises(AdmissionError, match="no execution slot"):
                session.execute("SELECT COUNT(*) + 1 FROM pts")
            stalled.join()
        assert cluster.telemetry.get("statements_rejected") == 1
        # The stalled statement itself completed fine.
        assert cluster.telemetry.get("statements_served") == 1

    def test_error_fault_fails_the_statement(self):
        cluster = make_cluster()
        plan = FaultPlan.single("serving.admit", FaultKind.ERROR, seed=7)
        cluster.install_fault_plan(plan)
        with make_server(cluster) as server, server.session() as session:
            with pytest.raises(InjectedFault):
                session.execute("SELECT COUNT(*) FROM pts")
            # The slot was released; the next statement runs normally.
            assert session.execute("SELECT COUNT(*) FROM pts").scalar() == 600
        assert plan.fired("serving.admit")

    def test_memory_budget_derives_concurrency(self):
        config = PoolConfig("budgeted", memory_budget_bytes=256 * MB,
                            statement_memory_bytes=64 * MB)
        assert config.concurrency == 4
        explicit = PoolConfig("explicit", max_concurrency=2,
                              memory_budget_bytes=256 * MB)
        assert explicit.concurrency == 2

    def test_yarn_budget_reservation_and_release(self):
        cluster = make_cluster()
        rm = ResourceManager([NodeCapacity(cores=4, memory_bytes=512 * MB)])
        server = Server(
            cluster,
            pools=[PoolConfig("budgeted", memory_budget_bytes=256 * MB)],
            resource_manager=rm,
        )
        granted = rm.telemetry.get("yarn_containers_granted")
        assert granted >= 1
        server.close()
        assert rm.telemetry.get("yarn_containers_released") == granted
        # An unsatisfiable budget fails construction instead of overcommitting.
        with pytest.raises(ResourceError):
            Server(cluster,
                   pools=[PoolConfig("huge", memory_budget_bytes=1024 * MB)],
                   resource_manager=rm)


# -- concurrency ----------------------------------------------------------


class TestConcurrentSessions:
    def test_many_sessions_share_the_plan_cache(self):
        """16 threads × 8 statements over 4 SQL texts: exactly 4 analyses,
        every result bit-identical to direct execution.  Runs green under
        REPROLINT_LOCK_CHECK=1 (the race-probe CI job)."""
        cluster = make_cluster()
        texts = [
            "SELECT SUM(a) AS s FROM pts",
            "SELECT COUNT(*) AS n FROM pts",
            "SELECT k, COUNT(*) AS n FROM pts GROUP BY k ORDER BY k LIMIT 3",
            "SELECT MIN(b) AS lo, MAX(b) AS hi FROM pts",
        ]
        expected = {sql: cluster.sql(sql) for sql in texts}
        with Server(cluster, pools=[PoolConfig(
                "general", max_concurrency=8, queue_depth=256)]) as server:

            def client(worker: int) -> int:
                with server.session() as session:
                    for i in range(8):
                        sql = texts[(worker + i) % len(texts)]
                        assert_results_identical(session.execute(sql),
                                                 expected[sql])
                    return session.statements

            with ThreadPoolExecutor(max_workers=16) as pool:
                done = list(pool.map(client, range(16)))
        assert done == [8] * 16
        assert cluster.telemetry.get("plan_cache_misses") == len(texts)
        assert cluster.telemetry.get("plan_cache_hits") == 16 * 8 - len(texts)
        assert cluster.telemetry.get("sessions_active") == 0
        assert cluster.telemetry.get("statements_served") == 16 * 8

    def test_concurrent_readers_and_writers_stay_correct(self):
        """Cached reads racing trickle inserts: every served SUM must equal
        a committed prefix of the insert sequence (no torn/stale mixes)."""
        cluster = make_cluster(rows=6)
        cluster.sql("CREATE TABLE ledger (v FLOAT)")
        cluster.sql("INSERT INTO ledger VALUES (0.0)")
        with Server(cluster, pools=[PoolConfig(
                "general", max_concurrency=8, queue_depth=256)]) as server:
            valid = {0.0}
            lock = threading.Lock()

            def writer():
                with server.session() as session:
                    total = 0.0
                    for i in range(1, 31):
                        # Declare the new total *before* the insert commits:
                        # a reader can observe the commit the instant it
                        # lands, but never a sum nobody declared.
                        total += float(i)
                        with lock:
                            valid.add(total)
                        session.execute(f"INSERT INTO ledger VALUES ({i}.0)")

            def reader():
                with server.session() as session:
                    for _ in range(30):
                        got = session.execute(
                            "SELECT SUM(v) AS s FROM ledger").column("s")[0]
                        value = 0.0 if np.isnan(got) else float(got)
                        with lock:
                            ok = value in valid
                        assert ok, f"served sum {value} was never committed"

            threads = [threading.Thread(target=writer)] + [
                threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert cluster.sql("SELECT SUM(v) FROM ledger").scalar() == sum(
            float(i) for i in range(31))
