"""Concurrent-writer stress for the metrics registry and the span tracer.

A thread pool hammers shared instruments and one shared span tree, then the
totals and structural invariants are checked exactly — lost updates or torn
tree links fail deterministically.  Run under ``REPROLINT_LOCK_CHECK=1``
(``make race``) to additionally prove the instrument/span locks stay leaves
in the lock order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.vertica.telemetry import Telemetry

THREADS = 8
ROUNDS = 400


def hammer(fn):
    """Run ``fn(thread_index)`` on THREADS threads; propagate exceptions."""
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for future in [pool.submit(fn, i) for i in range(THREADS)]:
            future.result()


class TestRegistryStress:
    def test_counter_no_lost_updates(self):
        registry = MetricsRegistry()

        def work(_):
            counter = registry.counter("rows_scanned")
            for _ in range(ROUNDS):
                counter.add(1)

        hammer(work)
        assert registry.counter("rows_scanned").value == THREADS * ROUNDS

    def test_gauge_balanced_traffic_returns_to_zero(self):
        registry = MetricsRegistry()

        def work(i):
            gauge = registry.gauge("pipeline_inflight_bytes")
            for _ in range(ROUNDS):
                # Paired charge/release per iteration: every prefix of the
                # interleaving is non-negative, so the clamp never distorts
                # and the final level must be exactly zero.
                gauge.add(i + 1)
                gauge.add(-(i + 1))

        hammer(work)
        gauge = registry.gauge("pipeline_inflight_bytes")
        assert gauge.now == 0
        assert 1 <= gauge.peak <= sum(range(1, THREADS + 1))

    def test_histogram_count_and_sum_exact(self):
        registry = MetricsRegistry()

        def work(_):
            histogram = registry.histogram("query_seconds")
            for _ in range(ROUNDS):
                histogram.observe(0.5)

        hammer(work)
        stats = registry.histogram("query_seconds").stats()
        assert stats["count"] == THREADS * ROUNDS
        assert stats["sum"] == THREADS * ROUNDS * 0.5
        assert stats["min"] == stats["max"] == 0.5

    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def work(_):
            seen.append(registry.counter("rows_scanned"))

        hammer(work)
        assert len({id(instrument) for instrument in seen}) == 1

    def test_telemetry_shim_concurrent_mixed_traffic(self):
        telemetry = Telemetry()

        def work(i):
            for _ in range(ROUNDS):
                telemetry.add("rows_scanned", 2)
                telemetry.gauge_add("pipeline_inflight_bytes", 8)
                telemetry.gauge_add("pipeline_inflight_bytes", -8)
                telemetry.observe_max("custom_peak", i)
                telemetry.record_event("tick", thread=i)

        hammer(work)
        snap = telemetry.snapshot()
        assert snap["rows_scanned"] == THREADS * ROUNDS * 2
        assert snap["pipeline_inflight_bytes_now"] == 0
        assert telemetry.get("custom_peak") == THREADS - 1


class TestTracerStress:
    def test_fanout_spans_all_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("query") as root:
            parent = tracer.current()

            def work(i):
                for j in range(ROUNDS // 10):
                    with tracer.span("scan.node", parent=parent,
                                     node=i) as span:
                        span.add(rows=1)

            hammer(work)
        expected = THREADS * (ROUNDS // 10)
        assert len(root.children) == expected
        assert all(child.parent is root for child in root.children)
        assert all(child.end is not None for child in root.children)
        assert root.total("rows") == expected
        # Fan-out children are not tracer roots.
        assert tracer.roots() == [root]

    def test_concurrent_attribute_updates_exact(self):
        tracer = Tracer()
        with tracer.span("span") as span:
            def work(i):
                for _ in range(ROUNDS):
                    span.add(rows=1, bytes=8)
                    span.max(peak=i)

            hammer(work)
        assert span.attributes["rows"] == THREADS * ROUNDS
        assert span.attributes["bytes"] == THREADS * ROUNDS * 8
        assert span.attributes["peak"] == THREADS - 1

    def test_independent_trees_per_thread(self):
        """Parentless spans opened on pool threads become separate roots —
        the ambient context never leaks across threads."""
        tracer = Tracer(max_roots=THREADS * 4)

        def work(i):
            with tracer.span(f"root-{i}") as root:
                with tracer.span("child"):
                    pass
            assert root.parent is None
            assert len(root.children) == 1

        hammer(work)
        roots = tracer.roots()
        assert len(roots) == THREADS
        assert {root.name for root in roots} == {
            f"root-{i}" for i in range(THREADS)}

    def test_walk_during_concurrent_attachment(self):
        """walk()/total() stay safe while children attach concurrently."""
        tracer = Tracer()
        with tracer.span("query") as root:
            parent = tracer.current()
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                def attach(i):
                    for _ in range(50):
                        with tracer.span("s", parent=parent) as span:
                            span.add(rows=1)

                futures = [pool.submit(attach, i) for i in range(THREADS)]
                for _ in range(20):
                    # Reading mid-storm must not raise or double-count.
                    assert root.total("rows") <= THREADS * 50
                for future in futures:
                    future.result()
        assert root.total("rows") == THREADS * 50
