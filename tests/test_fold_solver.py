"""Tests for the unified partition-fold solver kernel.

Covers the :mod:`repro.algorithms.fold` drivers (``fold_fit`` / ``sgd_fit``
/ ``LocalArray``), the SGD families built on them (linear SVM, matrix
factorization), carrier-independence of the ported solvers (a fit over a
``LocalArray`` matches the same fit over a distributed darray), and
cross-validation over the unified fold interface: seeded shuffle
determinism, fold-count edge cases, and CV-score parity against closed-form
per-fold fits.
"""

import numpy as np
import pytest

from repro.algorithms import (
    LocalArray,
    PartitionFold,
    SgdFold,
    cv_hpdglm,
    fold_fit,
    hpdglm,
    hpdkmeans,
    hpdmf,
    hpdnaivebayes,
    hpdsvm,
    sgd_fit,
)
from repro.errors import ModelError, PartitionError
from repro.workloads import make_blobs, make_classification, make_regression


def fill_pair(session, features, responses, npartitions=3):
    """Co-partitioned (Y, X) darrays, split at the same linspace boundaries
    LocalArray uses."""
    x = session.darray(npartitions=npartitions)
    x.fill_from(features)
    y = session.darray(
        npartitions=npartitions,
        worker_assignment=[x.worker_of(i) for i in range(npartitions)],
    )
    boundaries = np.linspace(0, len(features), npartitions + 1).astype(int)
    for i in range(npartitions):
        y.fill_partition(i, responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
    return y, x


class TestLocalArray:
    def test_linspace_splits_match_darray_convention(self):
        data = np.arange(20, dtype=float).reshape(10, 2)
        arr = LocalArray(data, npartitions=3)
        boundaries = np.linspace(0, 10, 4).astype(int)
        expected = [
            (boundaries[i + 1] - boundaries[i], 2) for i in range(3)
        ]
        assert arr.partition_shapes() == expected
        assert arr.nrow == 10 and arr.ncol == 2 and arr.shape == (10, 2)

    def test_one_dimensional_input_becomes_column(self):
        arr = LocalArray([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)
        assert np.array_equal(arr.collect(), [[1.0], [2.0], [3.0]])

    def test_collect_roundtrips(self):
        data = np.random.default_rng(0).normal(size=(17, 3))
        assert np.array_equal(LocalArray(data, npartitions=4).collect(), data)

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(PartitionError):
            LocalArray(np.zeros((2, 2, 2)))

    def test_zero_partitions_rejected(self):
        with pytest.raises(PartitionError):
            LocalArray(np.zeros((4, 1)), npartitions=0)

    def test_map_partitions_forwards_index_and_companions(self):
        x = LocalArray(np.arange(6, dtype=float).reshape(6, 1), npartitions=2)
        y = LocalArray(np.arange(6, 12, dtype=float), npartitions=2)
        seen = x.map_partitions(
            lambda i, xp, yp: (i, float(xp.sum()), float(yp.sum())), y)
        assert seen == [(0, 3.0, 21.0), (1, 12.0, 30.0)]

    def test_map_partitions_rejects_mismatched_companions(self):
        x = LocalArray(np.zeros((6, 1)), npartitions=2)
        y = LocalArray(np.zeros((6, 1)), npartitions=3)
        with pytest.raises(PartitionError):
            x.map_partitions(lambda i, xp, yp: None, y)


class _ColumnSumFold:
    """One-shot fold: sum of every row across partitions."""

    solver = "test.sum"

    def init_state(self):
        return None

    def partial(self, state, index, partition):
        return partition.sum(axis=0)

    def merge(self, partials):
        return np.sum(partials, axis=0)

    def step(self, state, merged, iteration):
        return merged

    def converged(self, state):
        return True


class _CountingFold(_ColumnSumFold):
    """Never converges; counts the synchronized iterations it gets."""

    solver = "test.count"

    def __init__(self):
        self.iterations = 0

    def step(self, state, merged, iteration):
        self.iterations = iteration
        return merged

    def converged(self, state):
        return False


class TestFoldFit:
    def test_single_pass_fold_sums_columns(self):
        data = np.arange(12, dtype=float).reshape(6, 2)
        state = fold_fit(LocalArray(data, npartitions=3), _ColumnSumFold())
        assert np.array_equal(state, data.sum(axis=0))

    def test_runs_until_max_iterations_without_convergence(self):
        fold = _CountingFold()
        fold_fit(LocalArray(np.ones((4, 1))), fold, max_iterations=5)
        assert fold.iterations == 5

    def test_zero_iterations_rejected(self):
        with pytest.raises(ModelError):
            fold_fit(LocalArray(np.ones((4, 1))), _ColumnSumFold(),
                     max_iterations=0)

    def test_protocols_are_runtime_checkable(self):
        assert isinstance(_ColumnSumFold(), PartitionFold)
        assert not isinstance(_ColumnSumFold(), SgdFold)


class TestCarrierIndependence:
    """The ported solvers give the same answer on LocalArray and DArray —
    the fold kernel abstracts the data carrier away."""

    def test_glm_matches_across_carriers(self, session):
        data = make_regression(600, 3, noise_scale=0.3, seed=21)
        y, x = fill_pair(session, data.features, data.responses)
        distributed = hpdglm(y, x, family="gaussian")
        local = hpdglm(
            LocalArray(data.responses, npartitions=3),
            LocalArray(data.features, npartitions=3),
            family="gaussian",
        )
        assert np.allclose(distributed.coefficients, local.coefficients,
                           atol=1e-12)
        assert distributed.deviance == pytest.approx(local.deviance)
        assert np.allclose(distributed.standard_errors, local.standard_errors,
                           atol=1e-12)

    def test_kmeans_matches_across_carriers(self, session):
        dataset = make_blobs(450, 2, 3, seed=22)
        darr = session.darray(npartitions=3)
        darr.fill_from(dataset.points)
        distributed = hpdkmeans(darr, k=3, seed=5)
        local = hpdkmeans(LocalArray(dataset.points, npartitions=3), k=3,
                          seed=5)
        assert np.allclose(distributed.centers, local.centers, atol=1e-12)
        assert distributed.inertia == pytest.approx(local.inertia)

    def test_naive_bayes_matches_across_carriers(self, session):
        data = make_classification(900, 3, seed=23)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        distributed = hpdnaivebayes(y, x)
        local = hpdnaivebayes(
            LocalArray(data.responses.astype(float), npartitions=3),
            LocalArray(data.features, npartitions=3),
        )
        assert np.allclose(distributed.means, local.means, atol=1e-12)
        assert np.allclose(distributed.class_log_priors,
                           local.class_log_priors, atol=1e-12)

    def test_svm_matches_across_carriers(self, session):
        data = make_classification(600, 2, seed=24,
                                   coefficients=np.array([2.0, -2.0]))
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        distributed = hpdsvm(y, x, epochs=10, seed=3)
        local = hpdsvm(
            LocalArray(data.responses.astype(float), npartitions=3),
            LocalArray(data.features, npartitions=3),
            epochs=10, seed=3,
        )
        assert np.allclose(distributed.weights, local.weights, atol=1e-12)
        assert distributed.bias == pytest.approx(local.bias)


class _RecordingSgdFold:
    """Logs the (epoch, partition) visit sequence; never converges."""

    solver = "test.record"

    def __init__(self):
        self.visits = []

    def init_state(self):
        return 0.0

    def gradient(self, state, index, partition):
        self.visits.append(index)
        return float(partition.sum())

    def apply(self, state, gradient, step_index):
        return state + gradient

    def epoch_end(self, state, epoch):
        return state

    def converged(self, state):
        return False


class TestSgdFit:
    def test_shuffle_once_order_repeats_across_epochs(self):
        data = LocalArray(np.ones((12, 1)), npartitions=6)
        fold = _RecordingSgdFold()
        sgd_fit(data, fold, epochs=3, seed=9)
        expected = np.random.default_rng(9).permutation(6).tolist()
        assert fold.visits == expected * 3

    def test_same_seed_same_updates(self):
        data = LocalArray(np.arange(12, dtype=float), npartitions=6)
        one = sgd_fit(data, _RecordingSgdFold(), epochs=2, seed=4)
        two = sgd_fit(data, _RecordingSgdFold(), epochs=2, seed=4)
        assert one == two

    def test_different_seeds_visit_differently(self):
        data = LocalArray(np.ones((12, 1)), npartitions=6)
        first, second = _RecordingSgdFold(), _RecordingSgdFold()
        sgd_fit(data, first, epochs=1, seed=0)
        sgd_fit(data, second, epochs=1, seed=1)
        assert first.visits != second.visits

    def test_zero_epochs_rejected(self):
        with pytest.raises(ModelError):
            sgd_fit(LocalArray(np.ones((4, 1))), _RecordingSgdFold(),
                    epochs=0)

    def test_mismatched_companions_rejected(self):
        x = LocalArray(np.ones((6, 1)), npartitions=3)
        y = LocalArray(np.ones((6, 1)), npartitions=2)
        with pytest.raises(ModelError):
            sgd_fit(x, _RecordingSgdFold(), y)


class TestSvm:
    def separable(self, seed=31):
        return make_classification(800, 2, seed=seed,
                                   coefficients=np.array([3.0, -3.0]))

    def test_separates_linearly_separable_data(self):
        data = self.separable()
        model = hpdsvm(LocalArray(data.responses.astype(float), npartitions=4),
                       LocalArray(data.features, npartitions=4))
        from repro.algorithms import accuracy
        # make_classification draws labels through a logistic, so the Bayes
        # rate itself is below 1; 0.85 is comfortably above chance.
        assert accuracy(data.responses, model.predict(data.features)) > 0.85
        # The learned hyperplane points the same way as the truth.
        assert model.weights[0] > 0 and model.weights[1] < 0

    def test_deterministic_under_seed(self):
        data = self.separable(seed=32)
        y = LocalArray(data.responses.astype(float), npartitions=4)
        x = LocalArray(data.features, npartitions=4)
        one = hpdsvm(y, x, epochs=8, seed=7)
        two = hpdsvm(y, x, epochs=8, seed=7)
        assert np.array_equal(one.weights, two.weights)
        assert one.bias == two.bias

    def test_signed_labels_accepted(self):
        data = self.separable(seed=33)
        signed = 2.0 * data.responses.astype(float) - 1.0
        model = hpdsvm(LocalArray(signed, npartitions=2),
                       LocalArray(data.features, npartitions=2), epochs=5)
        assert model.n_observations == 800

    def test_bad_labels_rejected(self):
        with pytest.raises(ModelError):
            hpdsvm(LocalArray(np.array([0.0, 1.0, 2.0])),
                   LocalArray(np.zeros((3, 2))))

    def test_mismatched_partitioning_rejected(self):
        with pytest.raises(ModelError):
            hpdsvm(LocalArray(np.zeros(6), npartitions=2),
                   LocalArray(np.zeros((6, 2)), npartitions=3))

    def test_zero_rows_rejected(self):
        with pytest.raises(ModelError):
            hpdsvm(LocalArray(np.empty((0, 1))), LocalArray(np.empty((0, 2))))

    def test_decision_function_checks_width(self):
        data = self.separable(seed=34)
        model = hpdsvm(LocalArray(data.responses.astype(float)),
                       LocalArray(data.features), epochs=3)
        with pytest.raises(ModelError):
            model.decision_function(np.zeros((5, 3)))


class TestMf:
    def ratings(self, seed=41, n_users=20, n_items=15, rank=2):
        rng = np.random.default_rng(seed)
        u = rng.normal(size=(n_users, rank))
        v = rng.normal(size=(n_items, rank))
        users, items = np.meshgrid(np.arange(n_users), np.arange(n_items))
        triples = np.column_stack([
            users.ravel().astype(float),
            items.ravel().astype(float),
            np.einsum("ij,ij->i", u[users.ravel()], v[items.ravel()]),
        ])
        return triples

    def test_recovers_low_rank_structure(self):
        triples = self.ratings()
        model = hpdmf(LocalArray(triples, npartitions=5), rank=4, seed=1)
        assert model.train_rmse < 0.2
        predicted = model.predict(triples[:, :2])
        assert np.sqrt(np.mean((predicted - triples[:, 2]) ** 2)) < 0.2

    def test_deterministic_under_seed(self):
        triples = self.ratings(seed=42)
        data = LocalArray(triples, npartitions=5)
        one = hpdmf(data, rank=3, epochs=10, seed=6)
        two = hpdmf(data, rank=3, epochs=10, seed=6)
        assert np.array_equal(one.user_factors, two.user_factors)
        assert np.array_equal(one.item_factors, two.item_factors)

    def test_predict_validates_pair_shape(self):
        model = hpdmf(LocalArray(self.ratings(seed=43)), rank=2, epochs=2)
        with pytest.raises(ModelError):
            model.predict(np.zeros((4, 3)))

    def test_predict_validates_id_ranges(self):
        model = hpdmf(LocalArray(self.ratings(seed=44)), rank=2, epochs=2)
        with pytest.raises(ModelError):
            model.predict(np.array([[999.0, 0.0]]))
        with pytest.raises(ModelError):
            model.predict(np.array([[0.0, -1.0]]))


def local_fold_ids(n, npartitions, nfolds, seed):
    """Reconstruct cv._fold_assignment's per-partition deterministic ids."""
    boundaries = np.linspace(0, n, npartitions + 1).astype(int)
    ids = np.empty(n, dtype=np.int64)
    for i in range(npartitions):
        rng = np.random.default_rng(seed + i * 7919)
        ids[boundaries[i]:boundaries[i + 1]] = rng.integers(
            0, nfolds, size=boundaries[i + 1] - boundaries[i])
    return ids


class TestCrossValidationUnifiedFold:
    """cv_hpdglm satellites: determinism, edge cases, and score parity over
    the fold_fit-backed GLM."""

    def test_same_seed_reproduces_scores_exactly(self, session):
        data = make_regression(600, 3, noise_scale=0.4, seed=51)
        y, x = fill_pair(session, data.features, data.responses)
        one = cv_hpdglm(y, x, nfolds=4, seed=3)
        two = cv_hpdglm(y, x, nfolds=4, seed=3)
        assert one.fold_deviances == two.fold_deviances
        assert one.fold_metrics == two.fold_metrics

    def test_different_seeds_shuffle_differently(self, session):
        data = make_regression(600, 3, noise_scale=0.4, seed=52)
        y, x = fill_pair(session, data.features, data.responses)
        one = cv_hpdglm(y, x, nfolds=4, seed=0)
        two = cv_hpdglm(y, x, nfolds=4, seed=1)
        assert one.fold_deviances != two.fold_deviances

    def test_more_folds_than_rows_rejected(self, session):
        data = make_regression(4, 1, seed=53)
        y, x = fill_pair(session, data.features, data.responses,
                         npartitions=2)
        with pytest.raises(ModelError):
            cv_hpdglm(y, x, nfolds=5)

    def test_not_co_partitioned_rejected(self, session):
        data = make_regression(60, 2, seed=54)
        _, x = fill_pair(session, data.features, data.responses,
                         npartitions=3)
        y = session.darray(npartitions=2)
        y.fill_from(data.responses.reshape(-1, 1))
        with pytest.raises(ModelError):
            cv_hpdglm(y, x, nfolds=3)

    def test_empty_fold_reported(self, session):
        # With 12 rows over 3 partitions and seed 0, fold 4 of 6 draws no
        # rows (pinned by local_fold_ids below) — the driver must say so
        # rather than fit on everything and score on nothing.
        assert (local_fold_ids(12, 3, 6, 0) == 4).sum() == 0
        data = make_regression(12, 1, seed=55)
        y, x = fill_pair(session, data.features, data.responses,
                         npartitions=3)
        with pytest.raises(ModelError, match="empty"):
            cv_hpdglm(y, x, nfolds=6, seed=0)

    def test_gaussian_fold_models_match_closed_form(self, session):
        """Each per-fold GLM equals the normal-equations solution on its
        training rows, and each reported deviance is the held-out SSE."""
        data = make_regression(600, 3, noise_scale=0.5, seed=56)
        y, x = fill_pair(session, data.features, data.responses)
        nfolds, seed = 4, 0
        result = cv_hpdglm(y, x, family="gaussian", nfolds=nfolds, seed=seed)

        fold_ids = local_fold_ids(600, 3, nfolds, seed)
        design = np.column_stack([np.ones(600), data.features])
        for fold in range(nfolds):
            train = fold_ids != fold
            expected = np.linalg.lstsq(design[train],
                                       data.responses[train], rcond=None)[0]
            assert np.allclose(result.models[fold].coefficients, expected,
                               atol=1e-8)
            held = ~train
            mu = result.models[fold].predict(data.features[held])
            sse = float(np.sum((data.responses[held] - mu) ** 2))
            assert result.fold_deviances[fold] == pytest.approx(sse)
        assert result.mean_deviance == pytest.approx(
            float(np.mean(result.fold_deviances)))
