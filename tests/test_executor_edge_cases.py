"""Edge-case tests for the SQL executor and result sets."""

import numpy as np
import pytest

from repro.errors import ExecutionError, SqlAnalysisError
from repro.vertica import VerticaCluster


@pytest.fixture
def typed_cluster():
    cluster = VerticaCluster(node_count=2)
    cluster.sql("CREATE TABLE t (n INT, f FLOAT, s VARCHAR, b BOOLEAN)")
    cluster.sql(
        "INSERT INTO t VALUES "
        "(3, 1.5, 'cherry', TRUE), (1, -0.5, 'apple', FALSE), "
        "(2, 2.5, 'banana', TRUE), (-1, 0.0, 'date', FALSE)"
    )
    return cluster


class TestOrderingEdgeCases:
    def test_order_by_string_column(self, typed_cluster):
        rows = typed_cluster.sql("SELECT s FROM t ORDER BY s").rows()
        assert [r[0] for r in rows] == ["apple", "banana", "cherry", "date"]

    def test_order_by_string_desc(self, typed_cluster):
        rows = typed_cluster.sql("SELECT s FROM t ORDER BY s DESC").rows()
        assert [r[0] for r in rows] == ["date", "cherry", "banana", "apple"]

    def test_order_by_expression_not_in_select(self, typed_cluster):
        rows = typed_cluster.sql("SELECT s FROM t ORDER BY n * -1").rows()
        assert [r[0] for r in rows] == ["cherry", "banana", "apple", "date"]

    def test_order_by_boolean(self, typed_cluster):
        rows = typed_cluster.sql("SELECT b FROM t ORDER BY b, n").rows()
        values = [bool(r[0]) for r in rows]
        assert values == [False, False, True, True]

    def test_stable_multi_key_sort(self, typed_cluster):
        rows = typed_cluster.sql("SELECT b, n FROM t ORDER BY b DESC, n ASC").rows()
        assert [int(r[1]) for r in rows] == [2, 3, -1, 1]


class TestLimitEdgeCases:
    def test_limit_zero(self, typed_cluster):
        assert len(typed_cluster.sql("SELECT n FROM t LIMIT 0")) == 0

    def test_limit_larger_than_table(self, typed_cluster):
        assert len(typed_cluster.sql("SELECT n FROM t LIMIT 999")) == 4

    def test_limit_applies_after_order(self, typed_cluster):
        rows = typed_cluster.sql("SELECT n FROM t ORDER BY n DESC LIMIT 2").rows()
        assert [int(r[0]) for r in rows] == [3, 2]


class TestWhereEdgeCases:
    def test_where_matches_nothing(self, typed_cluster):
        result = typed_cluster.sql("SELECT n FROM t WHERE n > 1000")
        assert len(result) == 0

    def test_where_on_boolean_column(self, typed_cluster):
        assert typed_cluster.sql("SELECT COUNT(*) FROM t WHERE b").scalar() == 2
        assert typed_cluster.sql("SELECT COUNT(*) FROM t WHERE NOT b").scalar() == 2

    def test_where_constant_true(self, typed_cluster):
        assert typed_cluster.sql("SELECT COUNT(*) FROM t WHERE 1 = 1").scalar() == 4

    def test_where_constant_false(self, typed_cluster):
        assert typed_cluster.sql("SELECT COUNT(*) FROM t WHERE 1 = 2").scalar() == 0

    def test_aggregate_in_where_rejected(self, typed_cluster):
        with pytest.raises(SqlAnalysisError):
            typed_cluster.sql("SELECT n FROM t WHERE COUNT(*) > 1")


class TestAggregateEdgeCases:
    def test_min_max_on_strings(self, typed_cluster):
        row = typed_cluster.sql("SELECT MIN(s), MAX(s) FROM t").rows()[0]
        assert row == ("apple", "date")

    def test_sum_on_empty_filter_is_null(self, typed_cluster):
        value = typed_cluster.sql("SELECT SUM(n) FROM t WHERE n > 99").scalar()
        assert value is None or (isinstance(value, float) and np.isnan(value))

    def test_count_on_empty_filter_is_zero(self, typed_cluster):
        assert typed_cluster.sql("SELECT COUNT(*) FROM t WHERE n > 99").scalar() == 0

    def test_group_by_string(self, typed_cluster):
        rows = typed_cluster.sql(
            "SELECT b, COUNT(*) AS c FROM t GROUP BY b ORDER BY c, b"
        ).rows()
        assert len(rows) == 2

    def test_avg_of_mixed_sign(self, typed_cluster):
        value = typed_cluster.sql("SELECT AVG(n) FROM t").scalar()
        assert value == pytest.approx((3 + 1 + 2 - 1) / 4)


class TestResultSetEdgeCases:
    def test_rows_preserve_column_order(self, typed_cluster):
        result = typed_cluster.sql("SELECT f, n, s FROM t LIMIT 1")
        assert result.column_names == ["f", "n", "s"]

    def test_unknown_column_access(self, typed_cluster):
        result = typed_cluster.sql("SELECT n FROM t")
        with pytest.raises(ExecutionError, match="columns"):
            result.column("zzz")

    def test_projection_of_constant(self, typed_cluster):
        result = typed_cluster.sql("SELECT 42 AS answer FROM t")
        assert list(result.column("answer")) == [42] * 4

    def test_string_concat_projection(self, typed_cluster):
        result = typed_cluster.sql("SELECT s || '!' AS shout FROM t ORDER BY s LIMIT 1")
        assert result.rows() == [("apple!",)]
