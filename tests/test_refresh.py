"""Tests for epoch-incremental model refresh (``REFRESH MODEL``).

The acceptance-critical property: after trickle inserts, an incremental
refresh (delta fold over sufficient statistics) matches a full refit on the
same snapshot within 1e-9.  Also covers the guards that force the full
refit (deletes in the window, unseen classes, non-additive families), the
noop/restamp paths, privilege checks, the staleness gauge, and the SQL
surface end to end.
"""

import numpy as np
import pytest

from repro.algorithms import LocalArray, hpdglm, hpdkmeans, hpdnaivebayes
from repro.deploy import deploy_model, load_model, refresh_model
from repro.errors import (
    CatalogError,
    PermissionDeniedError,
    SqlSyntaxError,
)
from repro.storage import ColumnSchema, SqlType

GLM_TRAINING = {
    "table": "obs",
    "features": ["x1", "x2"],
    "response": "y",
    "algorithm": "glm",
    "params": {"family": "gaussian"},
}


def make_obs(cluster, n=240, seed=1):
    """A 3-column regression table ``obs`` with n bulk-loaded rows."""
    rng = np.random.default_rng(seed)
    x1 = rng.normal(size=n)
    x2 = rng.normal(size=n)
    y = 0.5 + 1.5 * x1 - 2.0 * x2 + rng.normal(scale=0.1, size=n)
    cluster.create_table("obs", [
        ColumnSchema("x1", SqlType.FLOAT),
        ColumnSchema("x2", SqlType.FLOAT),
        ColumnSchema("y", SqlType.FLOAT),
    ])
    cluster.bulk_load("obs", {"x1": x1, "x2": x2, "y": y})
    return cluster.catalog.get_table("obs")


def fit_glm(cluster):
    """The reference full fit: hpdglm over everything visible right now,
    partitioned exactly as refresh's internal refit partitions."""
    table = cluster.catalog.get_table("obs")
    cols = table.scan_all(["x1", "x2", "y"])
    nparts = max(1, cluster.node_count)
    features = LocalArray(np.column_stack([cols["x1"], cols["x2"]]), nparts)
    responses = LocalArray(np.asarray(cols["y"]).reshape(-1, 1), nparts)
    return hpdglm(responses, features, family="gaussian")


def deploy_glm(cluster, name="sales_model"):
    record = deploy_model(cluster, fit_glm(cluster), name,
                          training=dict(GLM_TRAINING))
    return record


def trickle(table, rows):
    """One INSERT (one commit epoch) of [x1, x2, y] rows."""
    table.insert_rows([[float(v) for v in row] for row in rows])


class TestIncrementalGlmParity:
    def test_refresh_after_trickle_matches_full_refit(self, cluster):
        """The tentpole acceptance test: trickle inserts, then REFRESH MODEL
        == full refit at the same snapshot, within 1e-9."""
        table = make_obs(cluster)
        deploy_glm(cluster)
        rng = np.random.default_rng(9)
        for _ in range(3):  # three separate commit epochs of new rows
            batch = [
                [a, b, 0.5 + 1.5 * a - 2.0 * b + 0.1 * e]
                for a, b, e in rng.normal(size=(5, 3))
            ]
            trickle(table, batch)

        result = refresh_model(cluster, "sales_model")
        assert result.strategy == "incremental"
        assert result.rows_folded == 15
        assert result.staleness_epochs == 3

        refreshed = load_model(cluster, "sales_model")
        full = fit_glm(cluster)  # nothing committed since: same snapshot
        assert np.allclose(refreshed.coefficients, full.coefficients,
                           atol=1e-9)
        assert refreshed.deviance == pytest.approx(full.deviance, abs=1e-9)
        assert refreshed.null_deviance == pytest.approx(full.null_deviance,
                                                        abs=1e-9)
        assert np.allclose(refreshed.standard_errors, full.standard_errors,
                           atol=1e-9)
        assert refreshed.n_observations == 255

    def test_refresh_stamps_snapshot_and_second_refresh_noops(self, cluster):
        table = make_obs(cluster)
        deploy_glm(cluster)
        trickle(table, [[0.1, 0.2, 0.3]])
        snapshot_epoch = cluster.catalog.epochs.snapshot().epoch

        first = refresh_model(cluster, "sales_model")
        assert first.strategy == "incremental"
        assert first.record.commit_epoch == snapshot_epoch

        second = refresh_model(cluster, "sales_model")
        assert second.strategy == "noop"
        assert second.rows_folded == 0

    def test_staleness_gauge_tracks_epoch_lag(self, cluster):
        table = make_obs(cluster)
        deploy_glm(cluster)
        for _ in range(4):
            trickle(table, [[0.0, 0.0, 0.5]])
        result = refresh_model(cluster, "sales_model")
        assert result.staleness_epochs == 4
        assert cluster.telemetry.get("model_staleness_epochs") == 4.0
        # The redeploy inside the refresh commits one epoch of its own, so
        # the immediate follow-up sees lag 1; the peak remembers the worst.
        refresh_model(cluster, "sales_model")
        assert cluster.telemetry.get("model_staleness_epochs") == 1.0
        assert cluster.telemetry.get("model_staleness_epochs_peak") == 4.0

    def test_epoch_advance_without_table_rows_restamps(self, cluster):
        """Commits to *other* tables advance the global epoch; the refresh
        sees an empty delta, restamps, and reports noop."""
        make_obs(cluster)
        record = deploy_glm(cluster)
        cluster.create_table("unrelated", [ColumnSchema("v", SqlType.FLOAT)])
        cluster.catalog.get_table("unrelated").insert_rows([[1.0]])

        before = record.commit_epoch
        result = refresh_model(cluster, "sales_model")
        assert result.strategy == "noop"
        assert result.rows_folded == 0
        assert result.record.commit_epoch > before


class TestRefitFallbacks:
    def test_delete_in_window_forces_refit(self, cluster):
        """An insert delta cannot express removed prefix rows, so a DELETE
        inside the window falls back to the full refit — which must still
        match a from-scratch fit on the surviving rows."""
        table = make_obs(cluster)
        deploy_glm(cluster)
        trickle(table, [[0.3, -0.1, 1.1]])
        cluster.sql("DELETE FROM obs WHERE y > 1.5")

        result = refresh_model(cluster, "sales_model")
        assert result.strategy == "refit"
        refreshed = load_model(cluster, "sales_model")
        full = fit_glm(cluster)
        assert np.allclose(refreshed.coefficients, full.coefficients,
                           atol=1e-9)
        assert refreshed.n_observations == full.n_observations

    def test_non_gaussian_glm_refits(self, cluster):
        """Binomial GLMs carry no additive normal equations — IRLS weights
        depend on the coefficients — so the refresh refits."""
        rng = np.random.default_rng(3)
        n = 300
        x1 = rng.normal(size=n)
        x2 = rng.normal(size=n)
        labels = (rng.random(n) < 1.0 / (1.0 + np.exp(-(2 * x1 - x2)))
                  ).astype(float)
        cluster.create_table("obs", [
            ColumnSchema("x1", SqlType.FLOAT),
            ColumnSchema("x2", SqlType.FLOAT),
            ColumnSchema("y", SqlType.FLOAT),
        ])
        cluster.bulk_load("obs", {"x1": x1, "x2": x2, "y": labels})
        features = LocalArray(np.column_stack([x1, x2]), 3)
        responses = LocalArray(labels.reshape(-1, 1), 3)
        model = hpdglm(responses, features, family="binomial")
        training = dict(GLM_TRAINING,
                        params={"family": "binomial"})
        deploy_model(cluster, model, "churn", training=training)

        cluster.catalog.get_table("obs").insert_rows([[0.5, 0.5, 1.0]])
        result = refresh_model(cluster, "churn")
        assert result.strategy == "refit"
        assert load_model(cluster, "churn").family == "binomial"

    def test_kmeans_has_no_additive_state_and_refits(self, cluster):
        rng = np.random.default_rng(5)
        pts = np.vstack([rng.normal(loc=c, size=(60, 2)) for c in (-4, 0, 4)])
        cluster.create_table("obs", [
            ColumnSchema("x1", SqlType.FLOAT),
            ColumnSchema("x2", SqlType.FLOAT),
        ])
        cluster.bulk_load("obs", {"x1": pts[:, 0], "x2": pts[:, 1]})
        model = hpdkmeans(LocalArray(pts, 3), k=3, seed=0)
        deploy_model(cluster, model, "clusters", training={
            "table": "obs", "features": ["x1", "x2"], "response": None,
            "algorithm": "kmeans", "params": {"k": 3, "seed": 0},
        })

        cluster.catalog.get_table("obs").insert_rows([[4.2, 4.1]])
        result = refresh_model(cluster, "clusters")
        assert result.strategy == "refit"
        assert result.rows_folded == 181  # refit reports total rows seen
        assert load_model(cluster, "clusters").k == 3


def make_labeled(cluster, n=200, seed=7, n_classes=3):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n).astype(float)
    x1 = rng.normal(loc=labels, size=n)
    x2 = rng.normal(loc=-labels, size=n)
    cluster.create_table("obs", [
        ColumnSchema("x1", SqlType.FLOAT),
        ColumnSchema("x2", SqlType.FLOAT),
        ColumnSchema("y", SqlType.FLOAT),
    ])
    cluster.bulk_load("obs", {"x1": x1, "x2": x2, "y": labels})
    return cluster.catalog.get_table("obs")


def fit_nb(cluster):
    table = cluster.catalog.get_table("obs")
    cols = table.scan_all(["x1", "x2", "y"])
    nparts = max(1, cluster.node_count)
    features = LocalArray(np.column_stack([cols["x1"], cols["x2"]]), nparts)
    responses = LocalArray(np.asarray(cols["y"]).reshape(-1, 1), nparts)
    return hpdnaivebayes(responses, features)


class TestIncrementalNaiveBayes:
    def deploy(self, cluster):
        return deploy_model(cluster, fit_nb(cluster), "classifier", training={
            "table": "obs", "features": ["x1", "x2"], "response": "y",
            "algorithm": "naivebayes", "params": {},
        })

    def test_trickle_refresh_matches_full_refit(self, cluster):
        table = make_labeled(cluster)
        self.deploy(cluster)
        trickle(table, [[0.9, -1.1, 1.0], [2.1, -2.0, 2.0], [0.1, 0.0, 0.0]])

        result = refresh_model(cluster, "classifier")
        assert result.strategy == "incremental"
        assert result.rows_folded == 3

        refreshed = load_model(cluster, "classifier")
        full = fit_nb(cluster)
        assert np.allclose(refreshed.means, full.means, atol=1e-9)
        assert np.allclose(refreshed.variances, full.variances, atol=1e-9)
        assert np.allclose(refreshed.class_log_priors, full.class_log_priors,
                           atol=1e-9)

    def test_unseen_class_in_delta_forces_refit(self, cluster):
        table = make_labeled(cluster, n_classes=3)
        self.deploy(cluster)
        trickle(table, [[5.0, -5.0, 3.0]])  # class 3 never trained

        result = refresh_model(cluster, "classifier")
        assert result.strategy == "refit"
        assert load_model(cluster, "classifier").n_classes == 4


class TestGuards:
    def test_model_without_provenance_is_not_refreshable(self, cluster):
        make_obs(cluster)
        deploy_model(cluster, fit_glm(cluster), "opaque")  # no training=
        with pytest.raises(CatalogError, match="provenance"):
            refresh_model(cluster, "opaque")

    def test_unknown_model_rejected(self, cluster):
        with pytest.raises(CatalogError):
            refresh_model(cluster, "ghost")

    def test_refresh_requires_modify_privilege(self, cluster):
        make_obs(cluster)
        deploy_glm(cluster)
        with pytest.raises(PermissionDeniedError):
            refresh_model(cluster, "sales_model", user="intruder")


class TestSqlSurface:
    def test_refresh_statement_reports_strategy(self, cluster):
        table = make_obs(cluster)
        deploy_glm(cluster)
        trickle(table, [[0.2, 0.1, 0.6]])
        status = cluster.sql("REFRESH MODEL sales_model").scalar()
        assert status.startswith("REFRESH MODEL") and \
            status.endswith("(incremental)")
        again = cluster.sql("REFRESH MODEL sales_model").scalar()
        assert again.endswith("(noop)")

    def test_refresh_unknown_model_fails_analysis(self, cluster):
        with pytest.raises(CatalogError, match="ghost"):
            cluster.sql("REFRESH MODEL ghost")

    def test_refresh_requires_the_model_keyword(self, cluster):
        with pytest.raises(SqlSyntaxError, match="MODEL"):
            cluster.sql("REFRESH TABLE obs")

    def test_refreshed_model_serves_predictions(self, cluster):
        """End to end: the refreshed blob is what the prediction UDTF loads."""
        table = make_obs(cluster)
        deploy_glm(cluster)
        trickle(table, [[1.0, -1.0, 4.0]])
        cluster.sql("REFRESH MODEL sales_model")
        rows = cluster.sql(
            "SELECT glmPredict(x1, x2 USING PARAMETERS model='sales_model') "
            "OVER (PARTITION BEST) FROM obs"
        )
        refreshed = load_model(cluster, "sales_model")
        cols = table.scan_all(["x1", "x2"])
        expected = refreshed.predict(np.column_stack([cols["x1"], cols["x2"]]))
        assert np.allclose(np.sort(rows.column("prediction")),
                           np.sort(expected))
