"""Tests for thinly-covered corners: telemetry, simkit failure paths,
baseline convergence, and the UDTF context."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, SimulationError
from repro.rbase import glm_fit
from repro.simkit import Environment
from repro.vertica.telemetry import Telemetry


class TestTelemetry:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.add("x")
        telemetry.add("x", 2.5)
        assert telemetry.get("x") == 3.5
        assert telemetry.get("never") == 0.0

    def test_snapshot_is_a_copy(self):
        telemetry = Telemetry()
        telemetry.add("a", 1)
        snapshot = telemetry.snapshot()
        telemetry.add("a", 1)
        assert snapshot["a"] == 1.0

    def test_event_log_filters_by_kind(self):
        telemetry = Telemetry()
        telemetry.record_event("load", rows=10)
        telemetry.record_event("scan", rows=5)
        telemetry.record_event("load", rows=20)
        loads = telemetry.events("load")
        assert len(loads) == 2
        assert loads[1][1]["rows"] == 20
        assert len(telemetry.events()) == 3

    def test_event_log_is_bounded(self):
        telemetry = Telemetry(max_events=5)
        for i in range(20):
            telemetry.record_event("tick", i=i)
        events = telemetry.events()
        assert len(events) == 5
        assert events[-1][1]["i"] == 19  # newest kept, oldest dropped

    def test_reset_clears_everything(self):
        telemetry = Telemetry()
        telemetry.add("a", 5)
        telemetry.record_event("e")
        telemetry.reset()
        assert telemetry.get("a") == 0.0
        assert telemetry.events() == []


class TestSimkitFailurePaths:
    def test_run_until_event_propagates_failure(self):
        env = Environment()
        event = env.event()

        def failer(env):
            yield env.timeout(1.0)
            event.fail(RuntimeError("sim failed"))

        env.process(failer(env))
        with pytest.raises(RuntimeError, match="sim failed"):
            env.run(event)

    def test_run_until_never_triggered_event(self):
        env = Environment()
        dangling = env.event()
        env.timeout(1.0)
        with pytest.raises(SimulationError, match="never triggered"):
            env.run(dangling)

    def test_any_of_failure_propagates(self):
        env = Environment()
        caught = []

        def worker(env):
            bad = env.event()
            bad.fail(ValueError("broken"))
            try:
                yield env.any_of([bad, env.timeout(10)])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(worker(env))
        env.run()
        assert caught == ["broken"]

    def test_fail_requires_exception_instance(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().fail("not an exception")

    def test_unhandled_process_exception_surfaces_from_run(self):
        env = Environment()

        def crasher(env):
            yield env.timeout(1.0)
            raise KeyError("lost")

        env.process(crasher(env))
        with pytest.raises(KeyError):
            env.run()


class TestRbaseConvergence:
    def test_glm_fit_raises_on_iteration_budget(self):
        rng = np.random.default_rng(90)
        x = rng.normal(size=(500, 2))
        y = (rng.random(500) < 0.5).astype(float)
        with pytest.raises(ConvergenceError):
            glm_fit(x, y, family="binomial", max_iterations=1)

    def test_glm_fit_validates_response_domain(self):
        from repro.errors import ModelError

        x = np.ones((10, 1))
        with pytest.raises(ModelError):
            glm_fit(x, np.full(10, 2.0), family="binomial")


class TestUdtfContext:
    def test_context_reads_local_dfs_replica(self, cluster):
        from repro.vertica.udtf import UdtfContext

        cluster.dfs.write("/blob", b"payload")
        ctx = UdtfContext(cluster=cluster, node_index=0, instance_index=0,
                          instance_count=1)
        assert ctx.read_dfs("/blob") == b"payload"

    def test_function_udtf_requires_name(self):
        from repro.errors import ExecutionError
        from repro.vertica.udtf import FunctionBasedUdtf

        with pytest.raises(ExecutionError):
            FunctionBasedUdtf("", lambda ctx, args, params: None)
