"""Failure-scenario matrix for the fault-injection harness.

Every scenario follows the same contract: inject a fault through an armed
:class:`FaultPlan`, let the engine's recovery layer (frame resend, whole-
transfer retry, buddy failover, DR task re-execution, mover restart, DFS
read-repair) absorb it, and assert **both** that the result is bit-identical
to a failure-free run **and** that the recovery left its audit trail — a
``fault.recovered`` span and the matching counter (``transfer_retries``,
``failovers``, ``tasks_reexecuted``, ``mover_restarts``,
``dfs_read_repairs``).

Everything here is deterministic for a fixed seed (CI runs the module under
``REPROLINT_LOCK_CHECK=1`` with several seeds, plus a rotating one passed in
through ``REPRO_FAULT_SEED``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.deploy import deploy_model
from repro.algorithms import hpdglm
from repro.errors import (
    ExecutionError,
    NodeDownError,
    SessionError,
    TransferError,
)
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    spans_named,
)
from repro.dr import start_session
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, VerticaCluster
from repro.vertica.pipeline import BatchQueue
from repro.workloads import make_regression

# The rotating CI seed: fixed default locally, overridden per CI run so the
# matrix keeps exploring new jitter/timing interleavings.  Failures print it.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "7"))


def make_safe_cluster(k_safety: int = 1, rows: int = 1200, seed: int = 60):
    """A 3-node cluster with a hash-segmented ``t(k, v)``; k_safety=1."""
    cluster = VerticaCluster(node_count=3)
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 10**6, rows),
        "v": rng.normal(size=rows),
    }
    cluster.create_table_like("t", columns, HashSegmentation("k"),
                              k_safety=k_safety)
    cluster.bulk_load("t", columns)
    return cluster, columns


def transfer(cluster, session, retry=None):
    """One small-framed VFT load (many frames per node => mid-stream kills)."""
    return db2darray(cluster, "t", ["v"], session, chunk_rows=64, retry=retry)


def failure_free_baseline(seed: int = 60) -> np.ndarray:
    cluster, _ = make_safe_cluster(seed=seed)
    with start_session(node_count=3, instances_per_node=1) as session:
        return transfer(cluster, session).collect()


def mechanisms(*tracers) -> set:
    """Recovery mechanisms recorded across the given tracers.

    Recovery spans nest under whatever engine span was ambient (a query on
    the cluster tracer, a ``vft.transfer`` on the session tracer), so
    scenario assertions search every tree the scenario touched.
    """
    return {
        span.attributes.get("mechanism")
        for tracer in tracers
        for span in spans_named(tracer, "fault.recovered")
    }


# ---------------------------------------------------------------------------
# VFT: node crash, stall/timeout, torn frame, double failure
# ---------------------------------------------------------------------------

class TestVftFaults:
    def test_node_crash_mid_stream_is_bit_identical(self):
        baseline = failure_free_baseline()
        cluster, _ = make_safe_cluster()
        # Kill node 1 as it puts its 3rd frame on the wire:
        # the in-flight attempt dies, the whole-transfer retry re-reads
        # node 1's segment from its buddy and resends only unacked frames.
        plan = FaultPlan.single(
            "vft.send_chunk", FaultKind.NODE_CRASH,
            match={"node": 1}, after=2, seed=FAULT_SEED,
        )
        cluster.install_fault_plan(plan)
        with start_session(node_count=3, instances_per_node=1) as session:
            array = transfer(cluster, session,
                             retry=RetryPolicy(seed=FAULT_SEED))
            got = array.collect()
            assert np.array_equal(got, baseline), (
                f"retried transfer diverged (REPRO_FAULT_SEED={FAULT_SEED})"
            )
            assert cluster.nodes[1].is_down
            assert plan.fired("vft.send_chunk")
            assert session.telemetry.get("transfer_retries") >= 1
            assert cluster.telemetry.get("failovers") >= 1
            # Attempt 2's senders skip already-acked frames at the source.
            assert cluster.telemetry.get("vft_frames_deduped") >= 1
            assert "transfer_retry" in mechanisms(session.tracer)
            assert "buddy_failover" in mechanisms(cluster.tracer,
                                                   session.tracer)
            assert plan.injected_spans()

    def test_stall_beyond_send_timeout_resends_and_dedups(self):
        baseline = failure_free_baseline()
        cluster, _ = make_safe_cluster()
        plan = FaultPlan.single(
            "vft.send_chunk", FaultKind.STALL,
            match={"node": 1}, stall_seconds=0.05,
            seed=FAULT_SEED,
        )
        cluster.install_fault_plan(plan)
        with start_session(node_count=3, instances_per_node=1) as session:
            got = transfer(
                cluster, session,
                retry=RetryPolicy(send_timeout=0.01, seed=FAULT_SEED),
            ).collect()
            assert np.array_equal(got, baseline)
            # The stalled frame *was* staged, so the in-place resend is
            # recognized as a duplicate by the receiver's ack cursor.
            assert cluster.telemetry.get("transfer_retries") >= 1
            assert session.telemetry.get("vft_frames_deduped") >= 1
            assert "frame_resend" in mechanisms(cluster.tracer,
                                                 session.tracer)

    def test_torn_frame_is_rejected_and_resent(self):
        baseline = failure_free_baseline()
        cluster, _ = make_safe_cluster()
        plan = FaultPlan.single(
            "vft.send_chunk", FaultKind.TORN_FRAME,
            match={"node": 2}, seed=FAULT_SEED,
        )
        cluster.install_fault_plan(plan)
        with start_session(node_count=3, instances_per_node=1) as session:
            got = transfer(cluster, session,
                           retry=RetryPolicy(seed=FAULT_SEED)).collect()
            assert np.array_equal(got, baseline)
            # Torn bytes never reach the staging buffer: the receiver's
            # structural validation rejects them before the ack advances.
            assert cluster.telemetry.get("transfer_retries") >= 1
            assert "frame_resend" in mechanisms(cluster.tracer,
                                                 session.tracer)

    def test_torn_frame_never_pollutes_staging(self):
        cluster, _ = make_safe_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            with pytest.raises(TransferError, match="torn frame"):
                from repro.transfer.streams import validate_frame
                validate_frame(b"\x01\x02\x03")
            session.telemetry.get("vft_frames_received")  # no crash

    def test_node_and_buddy_both_down_fails_fast(self):
        cluster, _ = make_safe_cluster()
        cluster.fail_node(1)
        cluster.fail_node(2)  # node 2 hosts node 1's buddy
        with start_session(node_count=3, instances_per_node=1) as session:
            before = len(session.master.live_objects())
            started = time.perf_counter()
            with pytest.raises(ExecutionError, match="both down"):
                transfer(cluster, session, retry=RetryPolicy(seed=FAULT_SEED))
            elapsed = time.perf_counter() - started
            # Fail fast: NodeDownError is not retryable, so no backoff
            # rounds, no hang, and no partial darray was ever registered.
            assert elapsed < 10.0
            assert len(session.master.live_objects()) == before
            assert session.telemetry.get("transfer_retries") == 0

    def test_node_down_error_is_execution_error(self):
        assert issubclass(NodeDownError, ExecutionError)
        assert issubclass(InjectedFault, Exception)


# ---------------------------------------------------------------------------
# DR: worker death mid-foreach
# ---------------------------------------------------------------------------

class TestDrWorkerFaults:
    def test_worker_death_mid_foreach_reexecutes_on_survivor(self, session):
        d = session.darray(npartitions=3)
        plan = FaultPlan.single("dr.task", FaultKind.WORKER_DEATH,
                                match={"worker": 1}, seed=FAULT_SEED)
        session.install_fault_plan(plan)

        def fill(i: int) -> int:
            d.fill_partition(i, np.full((5, 2), float(i)))
            return i

        results = session.foreach(range(3), fill)
        assert results == [0, 1, 2]
        expected = np.concatenate([np.full((5, 2), float(i))
                                   for i in range(3)])
        assert np.array_equal(d.collect(), expected), (
            f"foreach output diverged (REPRO_FAULT_SEED={FAULT_SEED})"
        )
        # The dead worker's partition was reassigned and refilled elsewhere.
        assert session.workers[1].is_down
        assert d.worker_of(1) != 1
        assert session.telemetry.get("tasks_reexecuted") >= 1
        assert session.telemetry.get("dr_worker_failures") == 1
        assert "task_reexecution" in mechanisms(session.tracer)

    def test_all_workers_down_raises_cleanly(self, session):
        for worker in session.workers:
            worker.fail()
        d = session.darray(npartitions=3)
        with pytest.raises(SessionError, match="down"):
            session.foreach(range(3), lambda i: d.fill_partition(
                i, np.zeros((1, 1))))

    def test_worker_recover_comes_back_empty(self, session):
        session.workers[0].fail()
        assert session.workers[0].is_down
        session.workers[0].recover()
        assert not session.workers[0].is_down
        assert session.workers[0].stored_bytes == 0


# ---------------------------------------------------------------------------
# Tuple Mover: killed mid-moveout
# ---------------------------------------------------------------------------

class TestMoverFaults:
    def _cluster_with_wos(self):
        cluster = VerticaCluster(node_count=3)
        rng = np.random.default_rng(11)
        columns = {"k": rng.integers(0, 10**6, 300),
                   "v": rng.normal(size=300)}
        cluster.create_table_like("t", columns, HashSegmentation("k"))
        cluster.bulk_load("t", columns)
        for i in range(30):
            cluster.sql(f"INSERT INTO t VALUES ({2_000_000 + i}, {float(i)})")
        cluster.tuple_mover.stop()  # direct, deterministic passes only
        return cluster

    def test_killed_moveout_leaves_scans_bit_identical(self):
        cluster = self._cluster_with_wos()
        table = cluster.catalog.get_table("t")
        nonempty = sum(1 for seg in table.segments if seg.wos_rows)
        assert nonempty >= 2  # precondition: the kill lands mid-pass
        query = "SELECT k, v FROM t"
        before = cluster.sql(query).rows()

        plan = FaultPlan.single("txn.moveout", FaultKind.ERROR, after=1,
                                seed=FAULT_SEED)
        cluster.install_fault_plan(plan)
        with pytest.raises(InjectedFault):
            cluster.tuple_mover.run_moveout()
        # The killed pass flushed some segments and not others; every scan
        # still sees exactly the committed rows.
        assert cluster.sql(query).rows() == before
        assert sum(seg.wos_rows for seg in table.segments) > 0

        # A restarted pass completes the job and records the recovery.
        moved = cluster.tuple_mover.run_moveout()
        assert moved > 0
        assert sum(seg.wos_rows for seg in table.segments) == 0
        assert cluster.sql(query).rows() == before
        assert cluster.telemetry.get("mover_restarts") == 1
        assert "mover_restart" in mechanisms(cluster.tracer)
        cluster.tuple_mover.stop()

    def test_background_mover_survives_injected_crash(self):
        cluster = self._cluster_with_wos()
        plan = FaultPlan.single("txn.moveout", FaultKind.ERROR,
                                seed=FAULT_SEED)
        cluster.install_fault_plan(plan)
        with pytest.raises(InjectedFault):
            cluster.tuple_mover.run_moveout()
        # The daemon path swallows the same ReproError and keeps cycling:
        # notify() restarts the thread, and direct passes still work.
        cluster.tuple_mover.notify()
        assert cluster.tuple_mover.run_moveout() > 0
        cluster.tuple_mover.stop()


# ---------------------------------------------------------------------------
# DFS: replica loss healed by read-repair during deploy/predict
# ---------------------------------------------------------------------------

class TestDfsFaults:
    def test_replica_loss_heals_during_predict(self, session):
        rng = np.random.default_rng(21)
        n = 300
        columns = {"k": rng.integers(0, 10_000, n)}
        for j in range(3):
            columns[f"c{j}"] = rng.normal(size=n)
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("scores", columns, HashSegmentation("k"))
        cluster.bulk_load("scores", columns)

        data = make_regression(300, 3, seed=8)
        x = session.darray(npartitions=3)
        x.fill_from(data.features)
        y = session.darray(
            npartitions=3,
            worker_assignment=[x.worker_of(i) for i in range(3)],
        )
        bounds = np.linspace(0, 300, 4).astype(int)
        for i in range(3):
            y.fill_partition(i, data.responses[bounds[i]:bounds[i + 1]]
                             .reshape(-1, 1))
        model = hpdglm(y, x)
        record = deploy_model(cluster, model, "reg")

        # Lose one replica of the model blob on the first (uncached) fetch;
        # the read falls over to the intact copy and repairs the lost one.
        plan = FaultPlan.single("dfs.read", FaultKind.BLOB_LOSS,
                                match={"path": record.dfs_path},
                                seed=FAULT_SEED)
        cluster.install_fault_plan(plan)
        result = cluster.sql(
            "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='reg') "
            "OVER (PARTITION BEST) FROM scores"
        )
        table = cluster.catalog.get_table("scores").scan_all(["c0", "c1", "c2"])
        local = model.predict(np.column_stack(
            [table["c0"], table["c1"], table["c2"]]))
        assert np.allclose(np.sort(result.column("prediction")),
                           np.sort(local))
        assert plan.fired("dfs.read")
        assert cluster.telemetry.get("dfs_read_repairs") >= 1
        assert "read_repair" in mechanisms(cluster.tracer)
        # The blob is fully re-replicated: every copy is physically back.
        info = cluster.dfs.stat(record.dfs_path)
        assert cluster.dfs.total_bytes() == info.size * cluster.dfs.replication

    def test_lose_replica_then_direct_read_repairs(self):
        cluster = VerticaCluster(node_count=3)
        payload = b"model-bytes" * 100
        info = cluster.dfs.write("/models/m1", payload)
        lost = cluster.dfs.lose_replica("/models/m1")
        assert lost in info.replica_nodes
        assert cluster.dfs.read("/models/m1") == payload
        assert cluster.telemetry.get("dfs_read_repairs") == 1
        assert cluster.dfs.total_bytes() == len(payload) * cluster.dfs.replication

    def test_replica_down_recruits_fresh_node(self):
        cluster = VerticaCluster(node_count=3)
        payload = b"x" * 1000
        info = cluster.dfs.write("/models/m2", payload)
        cluster.dfs.fail_node(info.replica_nodes[0])
        assert cluster.dfs.read("/models/m2") == payload
        healed = cluster.dfs.stat("/models/m2")
        live_holders = [n for n in healed.replica_nodes
                        if n != info.replica_nodes[0]]
        assert len(live_holders) >= cluster.dfs.replication


# ---------------------------------------------------------------------------
# pipeline stall detection
# ---------------------------------------------------------------------------

class TestPipelineStalls:
    def test_producer_stall_raises_instead_of_hanging(self):
        queue = BatchQueue(maxdepth=1, stall_timeout=0.05)
        queue.put({"v": np.ones(4)})
        with pytest.raises(ExecutionError, match="pipeline stalled: producer"):
            queue.put({"v": np.ones(4)})

    def test_consumer_stall_raises_instead_of_hanging(self):
        queue = BatchQueue(maxdepth=1, stall_timeout=0.05)
        with pytest.raises(ExecutionError, match="pipeline stalled: consumer"):
            next(iter(queue))


# ---------------------------------------------------------------------------
# harness determinism
# ---------------------------------------------------------------------------

class TestHarnessDeterminism:
    def test_plan_fires_on_exact_visit(self):
        plan = FaultPlan.single("x.op", FaultKind.ERROR, after=2,
                                seed=FAULT_SEED)
        assert plan.perturb("x.op") is None
        assert plan.perturb("x.op") is None
        with pytest.raises(InjectedFault):
            plan.perturb("x.op")
        assert plan.perturb("x.op") is None  # times=1: window closed
        assert [e.visit for e in plan.fired()] == [3]
        assert plan.telemetry.get("faults_injected") == 1

    def test_match_pins_context(self):
        plan = FaultPlan.single("x.op", FaultKind.ERROR,
                                match={"node": 1}, seed=FAULT_SEED)
        assert plan.perturb("x.op", node=0) is None
        with pytest.raises(InjectedFault):
            plan.perturb("x.op", node=1)

    def test_retry_delays_are_seed_deterministic(self):
        a = RetryPolicy(seed=FAULT_SEED)
        b = RetryPolicy(seed=FAULT_SEED)
        assert [a.delay_for(i) for i in (1, 2, 3)] == \
            [b.delay_for(i) for i in (1, 2, 3)]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="s", kind="bogus")
        with pytest.raises(ValueError):
            FaultSpec(site="s", kind=FaultKind.ERROR, times=0)

    def test_rotating_seed_scenario(self):
        """The CI rotating-seed entry point: a full crash/recover round.

        Runs the node-crash transfer under whatever ``REPRO_FAULT_SEED``
        the environment provides; the seed is embedded in every assertion
        message so a red run is reproducible locally.
        """
        baseline = failure_free_baseline(seed=FAULT_SEED % 1000)
        cluster, _ = make_safe_cluster(seed=FAULT_SEED % 1000)
        plan = FaultPlan.single(
            "vft.send_chunk", FaultKind.NODE_CRASH,
            match={"node": 0}, after=1, seed=FAULT_SEED,
        )
        cluster.install_fault_plan(plan)
        with start_session(node_count=3, instances_per_node=1) as session:
            got = transfer(cluster, session,
                           retry=RetryPolicy(seed=FAULT_SEED)).collect()
        assert np.array_equal(got, baseline), (
            f"rotating-seed scenario diverged (REPRO_FAULT_SEED={FAULT_SEED})"
        )
