"""Property-based tests (hypothesis) on the core data paths and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.storage import ColumnBlock, SqlType, compress, decompress
from repro.storage.encoding import decode_values, encode_values
from repro.transfer.streams import decode_frames, encode_frame
from repro.vertica.segmentation import (
    HashSegmentation,
    RoundRobinSegmentation,
    SkewedSegmentation,
    hash64,
)
from repro.vertica.sql import parse_expression
from repro.vertica import expressions

common_settings = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


int_arrays = npst.arrays(np.int64, st.integers(0, 200))
float_arrays = npst.arrays(
    np.float64, st.integers(0, 200),
    elements=st.floats(allow_nan=False, allow_infinity=False, width=64),
)
text_values = st.lists(st.text(max_size=30), max_size=100)


class TestEncodingProperties:
    @common_settings
    @given(int_arrays)
    def test_integer_roundtrip(self, values):
        buffer = encode_values(values, SqlType.INTEGER)
        assert np.array_equal(
            decode_values(buffer, SqlType.INTEGER, len(values)), values
        )

    @common_settings
    @given(float_arrays)
    def test_float_roundtrip(self, values):
        buffer = encode_values(values, SqlType.FLOAT)
        assert np.array_equal(
            decode_values(buffer, SqlType.FLOAT, len(values)), values
        )

    @common_settings
    @given(text_values)
    def test_varchar_roundtrip(self, values):
        arr = np.asarray(values, dtype=object)
        buffer = encode_values(arr, SqlType.VARCHAR)
        assert list(decode_values(buffer, SqlType.VARCHAR, len(values))) == values

    @common_settings
    @given(st.binary(max_size=5000), st.sampled_from(["none", "zlib", "rle"]))
    def test_compression_roundtrip(self, data, codec):
        assert decompress(compress(data, codec), codec) == data

    @common_settings
    @given(float_arrays, st.sampled_from(["none", "zlib"]))
    def test_column_block_wire_roundtrip(self, values, codec):
        block = ColumnBlock.from_values(values, SqlType.FLOAT, codec=codec)
        restored = ColumnBlock.from_bytes(block.to_bytes())
        assert np.array_equal(restored.values(), values)

    @common_settings
    @given(npst.arrays(
        np.float64, st.integers(1, 100),
        elements=st.floats(allow_nan=False, allow_infinity=False, width=32),
    ))
    def test_frame_roundtrip(self, values):
        frame = encode_frame({"col": values}, {"col": SqlType.FLOAT})
        decoded = decode_frames(frame)
        assert len(decoded) == 1
        assert np.allclose(decoded[0]["col"], values)


class TestSegmentationProperties:
    @common_settings
    @given(int_arrays, st.integers(1, 8))
    def test_hash_assignment_in_range_and_total_preserving(self, keys, nodes):
        scheme = HashSegmentation("k")
        assignment = scheme.assign({"k": keys}, len(keys), 0, nodes)
        assert len(assignment) == len(keys)
        if len(keys):
            assert assignment.min() >= 0
            assert assignment.max() < nodes

    @common_settings
    @given(int_arrays, st.integers(1, 8))
    def test_hash_equal_keys_colocated(self, keys, nodes):
        if len(keys) == 0:
            return
        scheme = HashSegmentation("k")
        doubled = np.concatenate([keys, keys])
        assignment = scheme.assign({"k": doubled}, len(doubled), 0, nodes)
        assert np.array_equal(assignment[:len(keys)], assignment[len(keys):])

    @common_settings
    @given(st.integers(0, 500), st.integers(0, 100), st.integers(1, 6))
    def test_round_robin_balanced(self, rows, offset, nodes):
        scheme = RoundRobinSegmentation()
        assignment = scheme.assign({}, rows, offset, nodes)
        counts = np.bincount(assignment, minlength=nodes)
        assert counts.max() - counts.min() <= 1

    @common_settings
    @given(st.integers(1, 1000))
    def test_hash64_is_deterministic_pure_function(self, n):
        values = np.arange(n)
        assert np.array_equal(hash64(values), hash64(values))

    @common_settings
    @given(st.lists(st.floats(0.1, 10.0), min_size=2, max_size=6),
           st.integers(100, 2000))
    def test_skewed_assignment_in_range(self, weights, rows):
        scheme = SkewedSegmentation(tuple(weights))
        assignment = scheme.assign({}, rows, 0, len(weights))
        assert assignment.min() >= 0
        assert assignment.max() < len(weights)


class TestSqlProperties:
    @common_settings
    @given(st.integers(-10**12, 10**12))
    def test_integer_literal_roundtrip(self, value):
        expr = parse_expression(str(value))
        assert int(expressions.evaluate(expr, {})) == value

    @common_settings
    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float_literal_roundtrip(self, value):
        expr = parse_expression(repr(float(value)))
        result = expressions.evaluate(expr, {})
        assert float(result) == pytest.approx(float(value), rel=1e-6, abs=1e-30)

    @common_settings
    @given(st.text(alphabet=st.characters(blacklist_characters="'",
                                          blacklist_categories=("Cs",)),
                   max_size=40))
    def test_string_literal_roundtrip(self, text):
        expr = parse_expression(f"'{text}'")
        assert expr.value == text

    @common_settings
    @given(npst.arrays(np.float64, st.integers(1, 50),
                       elements=st.floats(-1e6, 1e6)),
           npst.arrays(np.float64, st.integers(1, 50),
                       elements=st.floats(-1e6, 1e6)))
    def test_arithmetic_matches_numpy(self, a, b):
        size = min(len(a), len(b))
        batch = {"a": a[:size], "b": b[:size]}
        result = expressions.evaluate(parse_expression("a + b * 2"), batch)
        assert np.allclose(result, batch["a"] + batch["b"] * 2)


class TestDistributedInvariants:
    @common_settings
    @given(st.integers(1, 6), st.integers(0, 60), st.integers(1, 4))
    def test_darray_collect_preserves_all_rows(self, npartitions, rows, cols):
        from repro.dr import start_session

        with start_session(node_count=2, instances_per_node=1) as session:
            array = session.darray(npartitions=npartitions)
            data = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols) \
                if rows and cols else np.zeros((rows, max(cols, 1)))
            array.fill_from(data)
            collected = array.collect()
            assert collected.shape[0] == rows

    @common_settings
    @given(st.integers(2, 5), st.integers(20, 80))
    def test_glm_matches_lstsq_for_any_partitioning(self, npartitions, rows):
        from repro.algorithms import hpdglm
        from repro.dr import start_session

        rng = np.random.default_rng(rows * 13 + npartitions)
        x_data = rng.normal(size=(rows, 2))
        y_data = 1.0 + x_data @ np.array([0.5, -0.25]) + rng.normal(
            scale=0.1, size=rows)
        with start_session(node_count=2, instances_per_node=1) as session:
            x = session.darray(npartitions=npartitions)
            x.fill_from(x_data)
            y = session.darray(
                npartitions=npartitions,
                worker_assignment=[x.worker_of(i) for i in range(npartitions)],
            )
            boundaries = np.linspace(0, rows, npartitions + 1).astype(int)
            for i in range(npartitions):
                y.fill_partition(
                    i, y_data[boundaries[i]:boundaries[i + 1]].reshape(-1, 1)
                )
            model = hpdglm(y, x)
        design = np.column_stack([np.ones(rows), x_data])
        expected = np.linalg.lstsq(design, y_data, rcond=None)[0]
        assert np.allclose(model.coefficients, expected, atol=1e-6)

    @common_settings
    @given(st.binary(min_size=1, max_size=2000), st.integers(1, 4))
    def test_dfs_read_returns_what_was_written(self, payload, replication):
        from repro.vertica.dfs import DistributedFileSystem

        dfs = DistributedFileSystem(4, replication=replication)
        dfs.write("/blob", payload)
        assert dfs.read("/blob") == payload

    @common_settings
    @given(st.binary(max_size=3000), st.integers(1, 64))
    def test_hdfs_blocks_reassemble(self, payload, block_size):
        from repro.spark import HdfsCluster

        hdfs = HdfsCluster(datanode_count=3, block_size=block_size)
        hdfs.write_file("/f", payload)
        assert hdfs.read_file("/f") == payload


class TestModelSerializationProperties:
    @common_settings
    @given(npst.arrays(np.float64, st.integers(1, 20),
                       elements=st.floats(-1e6, 1e6)))
    def test_glm_blob_roundtrip(self, coefficients):
        from repro.algorithms.glm import GlmModel
        from repro.deploy import deserialize_model, serialize_model

        model = GlmModel(
            coefficients=coefficients, family="gaussian", link="identity",
            intercept=True, iterations=2, deviance=1.0, null_deviance=2.0,
            converged=True, n_observations=100,
        )
        restored = deserialize_model(serialize_model(model))
        assert np.array_equal(restored.coefficients, coefficients)

    @common_settings
    @given(npst.arrays(np.float64, st.tuples(st.integers(1, 10), st.integers(1, 5)),
                       elements=st.floats(-100, 100)))
    def test_kmeans_blob_roundtrip(self, centers):
        from repro.algorithms.kmeans import KMeansModel
        from repro.deploy import deserialize_model, serialize_model

        model = KMeansModel(
            centers=centers, inertia=1.0, iterations=3, converged=True,
            n_observations=50,
            cluster_sizes=np.ones(len(centers), dtype=np.int64),
        )
        restored = deserialize_model(serialize_model(model))
        assert np.array_equal(restored.centers, centers)


class TestFaultToleranceProperties:
    """Single-fault SELECTs under k_safety=1 match failure-free results.

    The failure point (which node, which site, how deep into the scan) is
    drawn by hypothesis; the invariant is absolute: one injected node crash
    anywhere in a protected scan never changes a query result, and losing a
    segment's node *and* its buddy raises a clean error instead of hanging
    or returning partial rows.
    """

    @staticmethod
    def _make_cluster(data_seed: int, k_safety: int = 1):
        from repro.vertica import VerticaCluster

        cluster = VerticaCluster(node_count=3)
        rng = np.random.default_rng(data_seed)
        columns = {"k": rng.integers(0, 10**6, 240),
                   "v": rng.normal(size=240)}
        cluster.create_table_like("t", columns, HashSegmentation("k"),
                                  k_safety=k_safety)
        cluster.bulk_load("t", columns)
        return cluster

    @common_settings
    @given(
        data_seed=st.integers(0, 50),
        node=st.integers(0, 2),
        site=st.sampled_from(["scan.node", "scan.stream"]),
        after=st.integers(0, 3),
    )
    def test_select_survives_any_single_node_crash(self, data_seed, node,
                                                   site, after):
        from repro.faults import FaultKind, FaultPlan

        query = "SELECT k, v FROM t"
        expected = self._make_cluster(data_seed).sql(query).rows()
        cluster = self._make_cluster(data_seed)
        plan = FaultPlan.single(site, FaultKind.NODE_CRASH,
                                match={"node": node}, after=after,
                                seed=data_seed)
        cluster.install_fault_plan(plan)
        result = cluster.sql(query).rows()
        assert result == expected
        if plan.fired(site):
            # The crash actually happened: the rows above came through a
            # buddy replica, and the recovery was accounted for.
            assert cluster.nodes[node].is_down
            assert cluster.telemetry.get("failovers") >= 1

    @common_settings
    @given(data_seed=st.integers(0, 50), node=st.integers(0, 2))
    def test_segment_and_buddy_both_down_fail_clean(self, data_seed, node):
        from repro.errors import ExecutionError

        cluster = self._make_cluster(data_seed)
        buddy = (node + 1) % 3
        cluster.fail_node(node)
        cluster.fail_node(buddy)
        with pytest.raises(ExecutionError, match="both down"):
            cluster.sql("SELECT count(*) FROM t")

    @common_settings
    @given(data_seed=st.integers(0, 50), node=st.integers(0, 2))
    def test_unprotected_crash_is_loud_not_partial(self, data_seed, node):
        from repro.errors import ExecutionError
        from repro.faults import FaultKind, FaultPlan

        cluster = self._make_cluster(data_seed, k_safety=0)
        plan = FaultPlan.single("scan.stream", FaultKind.NODE_CRASH,
                                match={"node": node}, seed=data_seed)
        cluster.install_fault_plan(plan)
        with pytest.raises(ExecutionError):
            cluster.sql("SELECT k, v FROM t")
