"""Tests for model serialization, deployment, and in-database prediction."""

import numpy as np
import pytest

from repro.algorithms import hpdglm, hpdkmeans, hpdrandomforest
from repro.deploy import (
    deploy_model,
    deserialize_model,
    drop_model,
    grant_model,
    load_model,
    make_prediction_function,
    register_model_codec,
    registered_model_types,
    revoke_model,
    serialize_model,
)
from repro.errors import (
    CatalogError,
    ModelError,
    PermissionDeniedError,
    SerializationError,
)
from repro.transfer import db2darray_with_response
from repro.vertica import HashSegmentation, VerticaCluster
from repro.workloads import make_blobs, make_classification, make_regression


def fill_pair(session, features, responses, npartitions=3):
    x = session.darray(npartitions=npartitions)
    x.fill_from(features)
    y = session.darray(
        npartitions=npartitions,
        worker_assignment=[x.worker_of(i) for i in range(npartitions)],
    )
    boundaries = np.linspace(0, len(features), npartitions + 1).astype(int)
    for i in range(npartitions):
        y.fill_partition(i, responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
    return y, x


@pytest.fixture
def glm_model(session):
    data = make_regression(600, 3, noise_scale=0.05, seed=1)
    y, x = fill_pair(session, data.features, data.responses)
    return hpdglm(y, x, feature_names=["a", "b", "c"])


@pytest.fixture
def kmeans_model(session):
    dataset = make_blobs(600, 3, 4, seed=2)
    data = session.darray(npartitions=3)
    data.fill_from(dataset.points)
    return hpdkmeans(data, k=4, seed=0)


@pytest.fixture
def forest_model(session):
    data = make_classification(800, 2, seed=3)
    y, x = fill_pair(session, data.features, data.responses.astype(float))
    return hpdrandomforest(y, x, n_trees=5, task="classification", seed=4)


class TestSerialization:
    def test_registered_types(self):
        assert {"glm", "kmeans", "randomforest"} <= set(registered_model_types())

    def test_glm_roundtrip(self, glm_model):
        restored = deserialize_model(serialize_model(glm_model))
        assert np.allclose(restored.coefficients, glm_model.coefficients)
        assert restored.family == glm_model.family
        assert restored.feature_names == ["a", "b", "c"]
        assert np.allclose(restored.standard_errors, glm_model.standard_errors)

    def test_kmeans_roundtrip(self, kmeans_model):
        restored = deserialize_model(serialize_model(kmeans_model))
        assert np.allclose(restored.centers, kmeans_model.centers)
        assert restored.inertia == pytest.approx(kmeans_model.inertia)
        assert np.array_equal(restored.cluster_sizes, kmeans_model.cluster_sizes)

    def test_forest_roundtrip_predicts_identically(self, forest_model):
        restored = deserialize_model(serialize_model(forest_model))
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 2))
        assert np.array_equal(restored.predict(points), forest_model.predict(points))

    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError):
            deserialize_model(b"NOTAMODEL" + b"\x00" * 100)

    def test_truncated_blob_rejected(self, glm_model):
        blob = serialize_model(glm_model)
        with pytest.raises((SerializationError, ValueError, Exception)):
            deserialize_model(blob[: len(blob) // 2])

    def test_unregistered_model_rejected(self):
        class Strange:
            model_type = "strange"

        with pytest.raises(SerializationError):
            serialize_model(Strange())

    def test_object_without_model_type_rejected(self):
        with pytest.raises(SerializationError):
            serialize_model(object())

    def test_custom_codec_roundtrip(self):
        class Threshold:
            model_type = "threshold"

            def __init__(self, cut, weights):
                self.cut = cut
                self.weights = weights

        register_model_codec(
            "threshold", Threshold,
            lambda m: ({"cut": m.cut}, {"weights": m.weights}),
            lambda meta, arrays: Threshold(meta["cut"], arrays["weights"]),
        )
        model = Threshold(0.5, np.array([1.0, 2.0]))
        restored = deserialize_model(serialize_model(model))
        assert restored.cut == 0.5
        assert np.array_equal(restored.weights, [1.0, 2.0])


class TestDeployment:
    def test_deploy_creates_dfs_blob_and_catalog_row(self, cluster, glm_model):
        record = deploy_model(cluster, glm_model, "regModel",
                              description="forecasting")
        assert cluster.dfs.exists(record.dfs_path)
        rows = cluster.sql("SELECT model, type, description FROM R_Models").rows()
        assert rows == [("regModel", "glm", "forecasting")]
        assert record.size == cluster.dfs.stat(record.dfs_path).size

    def test_load_roundtrip(self, cluster, glm_model):
        deploy_model(cluster, glm_model, "m1")
        restored = load_model(cluster, "m1")
        assert np.allclose(restored.coefficients, glm_model.coefficients)

    def test_duplicate_requires_replace(self, cluster, glm_model):
        deploy_model(cluster, glm_model, "m1")
        with pytest.raises(CatalogError):
            deploy_model(cluster, glm_model, "m1")
        deploy_model(cluster, glm_model, "m1", replace=True)

    def test_replace_invalidates_cache(self, cluster, session):
        data = make_regression(300, 2, seed=5)
        y, x = fill_pair(session, data.features, data.responses)
        first = hpdglm(y, x)
        deploy_model(cluster, first, "m1")
        load_model(cluster, "m1")  # warm cache
        data2 = make_regression(300, 2, seed=99,
                                coefficients=np.array([5.0, -5.0]))
        y2, x2 = fill_pair(session, data2.features, data2.responses)
        second = hpdglm(y2, x2)
        deploy_model(cluster, second, "m1", replace=True)
        reloaded = load_model(cluster, "m1")
        assert np.allclose(reloaded.coefficients, second.coefficients)

    def test_drop_removes_blob(self, cluster, glm_model):
        record = deploy_model(cluster, glm_model, "m1")
        drop_model(cluster, "m1")
        assert not cluster.dfs.exists(record.dfs_path)
        with pytest.raises(CatalogError):
            load_model(cluster, "m1")

    def test_bad_name_rejected(self, cluster, glm_model):
        with pytest.raises(CatalogError):
            deploy_model(cluster, glm_model, "bad name!")

    def test_permissions_enforced_through_load(self, cluster, glm_model):
        deploy_model(cluster, glm_model, "m1", owner="alice")
        with pytest.raises(PermissionDeniedError):
            load_model(cluster, "m1", user="bob")
        grant_model(cluster, "m1", "bob", granting_user="alice")
        load_model(cluster, "m1", user="bob")
        revoke_model(cluster, "m1", "bob", revoking_user="alice")
        with pytest.raises(PermissionDeniedError):
            load_model(cluster, "m1", user="bob")

    def test_model_survives_node_failure(self, cluster, glm_model):
        record = deploy_model(cluster, glm_model, "m1")
        cluster.dfs.fail_node(record.replica_nodes[0]
                              if hasattr(record, "replica_nodes")
                              else cluster.dfs.stat(record.dfs_path).replica_nodes[0])
        restored = load_model(cluster, "m1")
        assert np.allclose(restored.coefficients, glm_model.coefficients)


def make_scoring_cluster(n=900, features=3, seed=7):
    rng = np.random.default_rng(seed)
    columns = {"k": rng.integers(0, 10_000, n)}
    for j in range(features):
        columns[f"c{j}"] = rng.normal(size=n)
    cluster = VerticaCluster(node_count=3)
    cluster.create_table_like("scores", columns, HashSegmentation("k"))
    cluster.bulk_load("scores", columns)
    return cluster, columns


class TestInDbPrediction:
    def test_glm_predict_matches_local(self, session):
        cluster, columns = make_scoring_cluster()
        data = make_regression(500, 3, seed=8)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x)
        deploy_model(cluster, model, "reg")
        result = cluster.sql(
            "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='reg') "
            "OVER (PARTITION BEST) FROM scores"
        )
        assert len(result) == 900
        table = cluster.catalog.get_table("scores").scan_all(["c0", "c1", "c2"])
        local = model.predict(np.column_stack([table["c0"], table["c1"], table["c2"]]))
        assert np.allclose(np.sort(result.column("prediction")), np.sort(local))

    def test_glm_predict_link_type(self, session):
        cluster, _ = make_scoring_cluster()
        data = make_classification(500, 3, seed=9)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        model = hpdglm(y, x, family="binomial")
        deploy_model(cluster, model, "logit")
        response = cluster.sql(
            "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='logit') "
            "OVER (PARTITION BEST) FROM scores"
        ).column("prediction")
        link = cluster.sql(
            "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='logit', "
            "type='link') OVER (PARTITION BEST) FROM scores"
        ).column("prediction")
        assert ((response >= 0) & (response <= 1)).all()
        assert link.max() > 1 or link.min() < 0

    def test_kmeans_predict(self, session):
        cluster, _ = make_scoring_cluster()
        dataset = make_blobs(600, 3, 4, seed=10)
        data = session.darray(npartitions=3)
        data.fill_from(dataset.points)
        model = hpdkmeans(data, k=4, seed=0)
        deploy_model(cluster, model, "km")
        result = cluster.sql(
            "SELECT kmeansPredict(c0, c1, c2 USING PARAMETERS model='km') "
            "OVER (PARTITION BEST) FROM scores"
        )
        clusters = result.column("cluster")
        assert clusters.dtype.kind in "iu"
        assert set(np.unique(clusters)) <= set(range(4))

    def test_rf_predict(self, session):
        cluster, _ = make_scoring_cluster(features=2)
        data = make_classification(800, 2, seed=11)
        y, x = fill_pair(session, data.features, data.responses.astype(float))
        forest = hpdrandomforest(y, x, n_trees=5, task="classification", seed=12)
        deploy_model(cluster, forest, "rf")
        result = cluster.sql(
            "SELECT rfPredict(c0, c1 USING PARAMETERS model='rf') "
            "OVER (PARTITION BEST) FROM scores"
        )
        assert len(result) == 900
        assert set(np.unique(result.column("prediction"))) <= {0.0, 1.0}

    def test_missing_model_parameter(self, session):
        cluster, _ = make_scoring_cluster()
        cluster.install_standard_functions()
        from repro.errors import ExecutionError
        with pytest.raises(ExecutionError, match="model"):
            cluster.sql(
                "SELECT glmPredict(c0) OVER (PARTITION BEST) FROM scores"
            )

    def test_wrong_model_type_rejected(self, session):
        cluster, _ = make_scoring_cluster()
        dataset = make_blobs(300, 3, 2, seed=13)
        data = session.darray(npartitions=3)
        data.fill_from(dataset.points)
        km = hpdkmeans(data, k=2, seed=0)
        deploy_model(cluster, km, "km")
        with pytest.raises(ModelError, match="expects"):
            cluster.sql(
                "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='km') "
                "OVER (PARTITION BEST) FROM scores"
            )

    def test_prediction_respects_permissions(self, session):
        cluster, _ = make_scoring_cluster()
        data = make_regression(400, 3, seed=14)
        y, x = fill_pair(session, data.features, data.responses)
        model = hpdglm(y, x)
        deploy_model(cluster, model, "priv", owner="alice")
        with pytest.raises(PermissionDeniedError):
            cluster.sql(
                "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='priv') "
                "OVER (PARTITION BEST) FROM scores",
                user="bob",
            )
        grant_model(cluster, "priv", "bob", granting_user="alice")
        result = cluster.sql(
            "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='priv') "
            "OVER (PARTITION BEST) FROM scores",
            user="bob",
        )
        assert len(result) == 900

    def test_custom_prediction_function(self, session):
        cluster, _ = make_scoring_cluster(features=2)

        class Doubler:
            model_type = "doubler"

            def __init__(self, factor):
                self.factor = factor

        register_model_codec(
            "doubler", Doubler,
            lambda m: ({"factor": m.factor}, {}),
            lambda meta, arrays: Doubler(meta["factor"]),
        )
        udtf = make_prediction_function(
            "doublePredict", "doubler",
            lambda model, features, params: features[:, 0] * model.factor,
        )
        cluster.register_udtf(udtf)
        deploy_model(cluster, Doubler(2.0), "dbl")
        result = cluster.sql(
            "SELECT doublePredict(c0, c1 USING PARAMETERS model='dbl') "
            "OVER (PARTITION BEST) FROM scores"
        )
        table = cluster.catalog.get_table("scores").scan_all(["c0"])
        assert np.allclose(np.sort(result.column("prediction")),
                           np.sort(table["c0"] * 2.0))

    def test_full_figure3_workflow(self, session):
        """Figure 3 end-to-end: ETL -> db2darray -> hpdglm -> deploy -> SQL."""
        rng = np.random.default_rng(15)
        n = 1500
        true = np.array([2.0, -1.0])
        features = rng.normal(size=(n, 2))
        response = 0.5 + features @ true + rng.normal(scale=0.05, size=n)
        columns = {"k": rng.integers(0, 9999, n), "y": response,
                   "a": features[:, 0], "b": features[:, 1]}
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("mytable", columns, HashSegmentation("k"))
        cluster.bulk_load("mytable", columns)
        y, x = db2darray_with_response(cluster, "mytable", "y", ["a", "b"], session)
        model = hpdglm(y, x)
        assert np.allclose(model.coefficients, [0.5, 2.0, -1.0], atol=0.02)
        deploy_model(cluster, model, "rModel")
        predictions = cluster.sql(
            "SELECT glmPredict(a, b USING PARAMETERS model='rModel') "
            "OVER (PARTITION BEST) FROM mytable"
        ).column("prediction")
        assert np.allclose(np.sort(predictions), np.sort(model.predict(features)),
                           atol=1e-9)
