"""Tests for the DES model of prediction fan-out (the Figs 15/16 mechanism)."""

import pytest

from repro.errors import SimulationError
from repro.perfmodel import model_in_db_prediction, simulate_prediction_fanout


class TestPredictionFanoutDes:
    def test_converges_to_analytic_model_at_full_parallelism(self):
        """With one instance per physical core, the DES reproduces the
        analytic (calibrated) model."""
        analytic = model_in_db_prediction(1e9, "kmeans", 5).total_seconds
        des = simulate_prediction_fanout(
            1e9, "kmeans", 5, instances_per_node=12).total_seconds
        assert des == pytest.approx(analytic, rel=0.05)

    def test_under_fanout_wastes_cores(self):
        one = simulate_prediction_fanout(1e9, "glm", 5, instances_per_node=1)
        twelve = simulate_prediction_fanout(1e9, "glm", 5, instances_per_node=12)
        assert one.total_seconds > 8 * twelve.total_seconds

    def test_over_fanout_only_adds_model_load_overhead(self):
        """Past the core count instances queue: no speedup, slight cost —
        the planner's reason for bounding PARTITION BEST parallelism."""
        at_cores = simulate_prediction_fanout(
            1e9, "kmeans", 5, instances_per_node=12).total_seconds
        over = simulate_prediction_fanout(
            1e9, "kmeans", 5, instances_per_node=48).total_seconds
        assert over >= at_cores
        assert over < at_cores * 1.1

    def test_skewed_tables_break_linear_speedup(self):
        """'When the table is well partitioned ... a near linear speedup can
        be achieved' — and conversely skew breaks it."""
        balanced = simulate_prediction_fanout(
            1e9, "kmeans", 5, instances_per_node=12).total_seconds
        skewed = simulate_prediction_fanout(
            1e9, "kmeans", 5, instances_per_node=12,
            skew=[3, 1, 1, 1, 1]).total_seconds
        assert skewed > 1.5 * balanced

    def test_model_load_cost_scales_with_fanout(self):
        cheap = simulate_prediction_fanout(
            1e6, "glm", 5, instances_per_node=12, model_load_s=0.0)
        heavy = simulate_prediction_fanout(
            1e6, "glm", 5, instances_per_node=12, model_load_s=10.0)
        assert heavy.total_seconds - cheap.total_seconds == pytest.approx(
            10.0, abs=0.5)

    def test_more_nodes_still_speed_up(self):
        five = simulate_prediction_fanout(1e9, "glm", 5).total_seconds
        ten = simulate_prediction_fanout(1e9, "glm", 10).total_seconds
        assert ten < five

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            simulate_prediction_fanout(1e6, "svm", 5)
        with pytest.raises(SimulationError):
            simulate_prediction_fanout(1e6, "glm", 5, instances_per_node=0)
        with pytest.raises(SimulationError):
            simulate_prediction_fanout(1e6, "glm", 2, skew=[1.0])
