"""Tests for the workload generators and the figure-regeneration harness."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.harness import all_figures, format_figure, write_experiments_md
from repro.harness.figures import fig12, fig14, fig17, fig20, fig21
from repro.vertica import VerticaCluster
from repro.workloads import (
    make_blobs,
    make_classification,
    make_prediction_table,
    make_regression,
    load_cluster_table,
    load_regression_table,
)


class TestRegressionWorkload:
    def test_shapes_and_truth(self):
        data = make_regression(500, 4, seed=0)
        assert data.features.shape == (500, 4)
        assert data.responses.shape == (500,)
        assert data.true_coefficients.shape == (4,)

    def test_noiseless_is_exact(self):
        data = make_regression(200, 3, noise_scale=0.0, seed=1)
        reconstructed = data.true_intercept + data.features @ data.true_coefficients
        assert np.allclose(reconstructed, data.responses)

    def test_deterministic_by_seed(self):
        a = make_regression(100, 2, seed=5)
        b = make_regression(100, 2, seed=5)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.responses, b.responses)

    def test_explicit_coefficients(self):
        coeffs = np.array([1.0, -1.0])
        data = make_regression(50, 2, coefficients=coeffs, seed=2)
        assert np.array_equal(data.true_coefficients, coeffs)

    def test_wrong_coefficient_shape_rejected(self):
        with pytest.raises(ModelError):
            make_regression(50, 2, coefficients=np.ones(3))

    def test_table_columns_layout(self):
        data = make_regression(50, 3, seed=3)
        columns = data.as_table_columns()
        assert set(columns) == {"y", "x0", "x1", "x2"}
        assert data.feature_names() == ["x0", "x1", "x2"]

    def test_classification_labels_binary(self):
        data = make_classification(300, 2, seed=4)
        assert set(np.unique(data.responses)) <= {0, 1}


class TestClusterWorkload:
    def test_blob_labels_match_nearest_center_mostly(self):
        dataset = make_blobs(1000, 4, 5, spread=0.1, seed=0)
        from repro.algorithms import assign_to_centers

        labels, _ = assign_to_centers(dataset.points, dataset.centers)
        assert (labels == dataset.labels).mean() > 0.99

    def test_k_greater_than_rows_rejected(self):
        with pytest.raises(ModelError):
            make_blobs(3, 2, 10)

    def test_feature_names(self):
        dataset = make_blobs(10, 3, 2, seed=1)
        assert dataset.feature_names() == ["f0", "f1", "f2"]


class TestTableLoaders:
    def test_load_regression_table(self):
        cluster = VerticaCluster(node_count=2)
        data = make_regression(400, 3, seed=0)
        features = load_regression_table(cluster, "reg", data)
        assert features == ["x0", "x1", "x2"]
        assert cluster.sql("SELECT COUNT(*) FROM reg").scalar() == 400

    def test_load_cluster_table(self):
        cluster = VerticaCluster(node_count=2)
        dataset = make_blobs(300, 2, 3, seed=1)
        features = load_cluster_table(cluster, "blobs", dataset)
        assert features == ["f0", "f1"]
        assert cluster.sql("SELECT COUNT(*) FROM blobs").scalar() == 300

    def test_make_prediction_table(self):
        cluster = VerticaCluster(node_count=2)
        features = make_prediction_table(cluster, "scores", 500, n_features=6)
        assert len(features) == 6
        assert cluster.sql("SELECT COUNT(*) FROM scores").scalar() == 500


class TestHarness:
    def test_all_figures_cover_the_evaluation(self):
        figures = all_figures(include_functional=False)
        ids = {figure.figure_id for figure in figures}
        assert ids == {"Fig 1", "Fig 12", "Fig 13", "Fig 14", "Fig 15",
                       "Fig 16", "Fig 17", "Fig 18", "Fig 19", "Fig 20",
                       "Fig 21"}

    def test_every_stated_paper_number_within_50_percent(self):
        for figure in all_figures(include_functional=False):
            for row in figure.rows:
                error = row.relative_error
                if error is not None:
                    assert error < 0.5, (
                        f"{figure.figure_id} {row.series} @ {row.x}: {error:.0%}"
                    )

    def test_fig12_vft_wins_at_every_size(self):
        figure = fig12()
        by_x: dict = {}
        for row in figure.rows:
            by_x.setdefault(row.x, {})[row.series] = row.modelled_seconds
        for x, series in by_x.items():
            assert series["VFT (locality)"] < series["ODBC (120 conns)"] / 3

    def test_fig14_breakdown_components_sum(self):
        figure = fig14()
        by_x: dict = {}
        for row in figure.rows:
            by_x.setdefault(row.x, {})[row.series] = row.modelled_seconds
        for x, series in by_x.items():
            assert series["total"] == pytest.approx(
                series["DB part"] + series["R part"], abs=6.0
            )

    def test_fig17_r_flat_dr_decreasing(self):
        figure = fig17()
        r_values = [row.modelled_seconds for row in figure.rows if row.series == "R"]
        dr_values = [row.modelled_seconds for row in figure.rows
                     if row.series == "Distributed R"]
        assert max(r_values) == pytest.approx(min(r_values))
        assert dr_values[0] > dr_values[4]  # 1 core vs 12 cores

    def test_fig20_dr_beats_spark_everywhere(self):
        figure = fig20()
        by_x: dict = {}
        for row in figure.rows:
            by_x.setdefault(row.x, {})[row.series] = row.modelled_seconds
        for x, series in by_x.items():
            assert series["Distributed R"] < series["Spark"]

    def test_fig21_is_near_tie(self):
        figure = fig21()
        totals = {
            row.x: row.modelled_seconds
            for row in figure.rows if row.series == "load + 1 iteration"
        }
        ratio = totals["vertica+dr"] / totals["spark+hdfs"]
        assert 0.7 <= ratio <= 1.3

    def test_format_figure_renders(self):
        text = format_figure(fig12())
        assert "Fig 12" in text
        assert "VFT" in text

    def test_write_experiments_md(self, tmp_path):
        path = write_experiments_md(all_figures(include_functional=False),
                                    tmp_path / "EXPERIMENTS.md")
        content = path.read_text()
        assert "# EXPERIMENTS" in content
        assert "Fig 21" in content
        assert "Calibration provenance" in content
