"""Tests for SQL join support (hash equi-joins, inner and left)."""

import numpy as np
import pytest

from repro.errors import SqlAnalysisError
from repro.vertica import VerticaCluster
from repro.vertica.sql import ast, parse


@pytest.fixture
def join_cluster():
    cluster = VerticaCluster(node_count=3)
    cluster.sql("CREATE TABLE users (uid INT, name VARCHAR, region INT) "
                "SEGMENTED BY HASH(uid) ALL NODES")
    cluster.sql("INSERT INTO users VALUES (1,'ann',10),(2,'bob',20),"
                "(3,'cat',10),(4,'dan',30)")
    cluster.sql("CREATE TABLE orders (oid INT, uid INT, amount FLOAT) "
                "SEGMENTED BY HASH(oid) ALL NODES")
    cluster.sql("INSERT INTO orders VALUES (100,1,5.0),(101,1,7.5),"
                "(102,2,3.0),(103,9,99.0)")
    return cluster


class TestJoinParsing:
    def test_inner_join_with_aliases(self):
        stmt = parse("SELECT u.name FROM users u JOIN orders o ON u.uid = o.uid")
        assert stmt.table == "users"
        assert stmt.table_alias == "u"
        assert stmt.join.table == "orders"
        assert stmt.join.alias == "o"
        assert stmt.join.kind == "inner"

    def test_explicit_inner_keyword(self):
        stmt = parse("SELECT a.x FROM t1 a INNER JOIN t2 b ON a.x = b.x")
        assert stmt.join.kind == "inner"

    def test_left_outer_join(self):
        stmt = parse("SELECT a.x FROM t1 a LEFT OUTER JOIN t2 b ON a.x = b.x")
        assert stmt.join.kind == "left"
        stmt = parse("SELECT a.x FROM t1 a LEFT JOIN t2 b ON a.x = b.x")
        assert stmt.join.kind == "left"

    def test_qualified_column_ref(self):
        stmt = parse("SELECT u.name FROM users u")
        ref = stmt.items[0].expr
        assert isinstance(ref, ast.ColumnRef)
        assert ref.qualifier == "u"
        assert ref.key == "u.name"

    def test_no_alias_uses_table_name(self):
        stmt = parse("SELECT users.name FROM users JOIN orders "
                     "ON users.uid = orders.uid")
        assert stmt.table_alias is None
        assert stmt.join.alias is None


class TestInnerJoin:
    def test_matches_manual_join(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT u.name, o.amount FROM users u JOIN orders o "
            "ON u.uid = o.uid ORDER BY o.amount"
        ).rows()
        assert rows == [("bob", 3.0), ("ann", 5.0), ("ann", 7.5)]

    def test_unmatched_rows_dropped_both_sides(self, join_cluster):
        result = join_cluster.sql(
            "SELECT u.uid FROM users u JOIN orders o ON u.uid = o.uid"
        )
        assert set(result.column("uid").tolist()) == {1, 2}  # no cat/dan/9

    def test_unqualified_unambiguous_columns(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT name, amount FROM users u JOIN orders o ON u.uid = o.uid "
            "ORDER BY amount DESC LIMIT 1"
        ).rows()
        assert rows == [("ann", 7.5)]

    def test_ambiguous_column_rejected(self, join_cluster):
        with pytest.raises(SqlAnalysisError, match="ambiguous"):
            join_cluster.sql(
                "SELECT uid FROM users u JOIN orders o ON u.uid = o.uid"
            )

    def test_aggregation_over_join(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT u.name, SUM(o.amount) AS total, COUNT(*) AS n "
            "FROM users u JOIN orders o ON u.uid = o.uid "
            "GROUP BY u.name ORDER BY total DESC"
        ).rows()
        assert rows == [("ann", 12.5, 2), ("bob", 3.0, 1)]

    def test_where_after_join(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT o.oid FROM users u JOIN orders o ON u.uid = o.uid "
            "WHERE u.region = 10 ORDER BY o.oid"
        ).rows()
        assert [r[0] for r in rows] == [100, 101]

    def test_residual_join_condition(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT o.oid FROM users u JOIN orders o "
            "ON u.uid = o.uid AND o.amount > 4 ORDER BY o.oid"
        ).rows()
        assert [r[0] for r in rows] == [100, 101]

    def test_select_star_uses_qualified_names(self, join_cluster):
        result = join_cluster.sql(
            "SELECT * FROM users u JOIN orders o ON u.uid = o.uid LIMIT 1"
        )
        assert result.column_names == [
            "u.uid", "u.name", "u.region", "o.oid", "o.uid", "o.amount"
        ]

    def test_multi_key_equality(self):
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE a (x INT, y INT, v FLOAT)")
        cluster.sql("INSERT INTO a VALUES (1,1,10.0),(1,2,20.0),(2,1,30.0)")
        cluster.sql("CREATE TABLE b (x INT, y INT, w FLOAT)")
        cluster.sql("INSERT INTO b VALUES (1,1,0.1),(1,2,0.2),(2,2,0.9)")
        rows = cluster.sql(
            "SELECT a.v, b.w FROM a JOIN b ON a.x = b.x AND a.y = b.y "
            "ORDER BY a.v"
        ).rows()
        assert rows == [(10.0, 0.1), (20.0, 0.2)]

    def test_duplicate_keys_produce_cross_product(self):
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE a (k INT, v INT)")
        cluster.sql("INSERT INTO a VALUES (1, 10), (1, 11)")
        cluster.sql("CREATE TABLE b (k INT, w INT)")
        cluster.sql("INSERT INTO b VALUES (1, 20), (1, 21)")
        result = cluster.sql("SELECT a.v, b.w FROM a JOIN b ON a.k = b.k")
        assert len(result) == 4

    def test_empty_result_join(self, join_cluster):
        result = join_cluster.sql(
            "SELECT u.name FROM users u JOIN orders o ON u.region = o.oid"
        )
        assert len(result) == 0


class TestLeftJoin:
    def test_unmatched_left_rows_survive_with_nulls(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT u.name, o.amount FROM users u LEFT JOIN orders o "
            "ON u.uid = o.uid ORDER BY u.name"
        ).rows()
        names = [r[0] for r in rows]
        assert names == ["ann", "ann", "bob", "cat", "dan"]
        unmatched = [r[1] for r in rows if r[0] in ("cat", "dan")]
        assert all(np.isnan(v) for v in unmatched)

    def test_varchar_nulls_are_none(self, join_cluster):
        rows = join_cluster.sql(
            "SELECT o.oid, u.name FROM orders o LEFT JOIN users u "
            "ON o.uid = u.uid ORDER BY o.oid"
        ).rows()
        assert rows[-1][0] == 103  # the order with no user
        assert rows[-1][1] is None

    def test_count_over_left_join(self, join_cluster):
        total = join_cluster.sql(
            "SELECT COUNT(*) FROM users u LEFT JOIN orders o ON u.uid = o.uid"
        ).scalar()
        assert total == 5  # 3 matches + 2 unmatched users


class TestJoinErrors:
    def test_non_equi_only_condition_rejected(self, join_cluster):
        with pytest.raises(SqlAnalysisError, match="equality"):
            join_cluster.sql(
                "SELECT u.name FROM users u JOIN orders o ON u.uid > o.uid"
            )

    def test_unknown_qualifier(self, join_cluster):
        with pytest.raises(SqlAnalysisError, match="qualifier"):
            join_cluster.sql(
                "SELECT z.name FROM users u JOIN orders o ON u.uid = o.uid"
            )

    def test_unknown_column_on_side(self, join_cluster):
        with pytest.raises(SqlAnalysisError):
            join_cluster.sql(
                "SELECT u.salary FROM users u JOIN orders o ON u.uid = o.uid"
            )

    def test_same_alias_rejected(self, join_cluster):
        with pytest.raises(SqlAnalysisError, match="distinct"):
            join_cluster.sql(
                "SELECT t.name FROM users t JOIN orders t ON t.uid = t.uid"
            )

    def test_r_models_not_joinable(self, join_cluster):
        with pytest.raises(SqlAnalysisError, match="R_Models"):
            join_cluster.sql(
                "SELECT u.name FROM users u JOIN R_Models m ON u.name = m.model"
            )

    def test_udtf_over_join_rejected(self, join_cluster):
        with pytest.raises(SqlAnalysisError, match="UDTF"):
            join_cluster.sql(
                "SELECT glmPredict(u.region USING PARAMETERS model='m') "
                "OVER (PARTITION BEST) FROM users u JOIN orders o "
                "ON u.uid = o.uid"
            )


class TestJoinScale:
    def test_large_join_matches_numpy(self):
        rng = np.random.default_rng(44)
        n = 5000
        cluster = VerticaCluster(node_count=3)
        left_keys = rng.integers(0, 500, n)
        left_values = rng.normal(size=n)
        cluster.create_table_like("facts", {"k": left_keys, "v": left_values})
        cluster.bulk_load("facts", {"k": left_keys, "v": left_values})
        dim_keys = np.arange(400)
        dim_weights = rng.normal(size=400)
        cluster.create_table_like("dim", {"k": dim_keys, "w": dim_weights})
        cluster.bulk_load("dim", {"k": dim_keys, "w": dim_weights})

        total = cluster.sql(
            "SELECT SUM(f.v * d.w) FROM facts f JOIN dim d ON f.k = d.k"
        ).scalar()
        mask = left_keys < 400
        expected = float(np.sum(left_values[mask] * dim_weights[left_keys[mask]]))
        assert total == pytest.approx(expected, rel=1e-9)

    def test_join_row_count_matches_numpy(self):
        rng = np.random.default_rng(45)
        cluster = VerticaCluster(node_count=2)
        a = rng.integers(0, 50, 1000)
        b = rng.integers(0, 50, 800)
        cluster.create_table_like("ta", {"k": a})
        cluster.bulk_load("ta", {"k": a})
        cluster.create_table_like("tb", {"k": b})
        cluster.bulk_load("tb", {"k": b})
        count = cluster.sql(
            "SELECT COUNT(*) FROM ta x JOIN tb y ON x.k = y.k"
        ).scalar()
        counts_a = np.bincount(a, minlength=50)
        counts_b = np.bincount(b, minlength=50)
        assert count == int(np.sum(counts_a * counts_b))
