"""Tests for model export/import, the VFT timing breakdown, and
concurrency of the shared substrates."""

import threading

import numpy as np
import pytest

from repro.algorithms import hpdglm
from repro.deploy import deploy_model, export_model, import_model, load_model
from repro.dr import start_session
from repro.errors import CatalogError, PermissionDeniedError, SerializationError
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, VerticaCluster
from repro.workloads import make_regression


def trained_model(session):
    data = make_regression(600, 2, noise_scale=0.05, seed=50)
    x = session.darray(npartitions=2)
    x.fill_from(data.features)
    y = session.darray(npartitions=2,
                       worker_assignment=[x.worker_of(i) for i in range(2)])
    y.fill_partition(0, data.responses[:300].reshape(-1, 1))
    y.fill_partition(1, data.responses[300:].reshape(-1, 1))
    return hpdglm(y, x)


class TestModelExportImport:
    def test_export_then_import_into_other_cluster(self, session, tmp_path):
        model = trained_model(session)
        source = VerticaCluster(node_count=2)
        deploy_model(source, model, "origin")
        path = tmp_path / "model.rmdl"
        written = export_model(source, "origin", path)
        assert written == path.stat().st_size > 0

        destination = VerticaCluster(node_count=3)
        record = import_model(destination, path, "copied",
                              description="migrated")
        assert record.type == "glm"
        restored = load_model(destination, "copied")
        assert np.allclose(restored.coefficients, model.coefficients)

    def test_export_respects_permissions(self, session, tmp_path):
        model = trained_model(session)
        cluster = VerticaCluster(node_count=2)
        deploy_model(cluster, model, "locked", owner="alice")
        with pytest.raises(PermissionDeniedError):
            export_model(cluster, "locked", tmp_path / "m.bin", user="bob")

    def test_import_validates_blob(self, tmp_path):
        cluster = VerticaCluster(node_count=2)
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a model")
        with pytest.raises(SerializationError):
            import_model(cluster, path, "junk")

    def test_import_duplicate_requires_replace(self, session, tmp_path):
        model = trained_model(session)
        cluster = VerticaCluster(node_count=2)
        deploy_model(cluster, model, "m")
        path = tmp_path / "m.bin"
        export_model(cluster, "m", path)
        with pytest.raises(CatalogError):
            import_model(cluster, path, "m")
        import_model(cluster, path, "m", replace=True)


class TestVftTimingBreakdown:
    def test_breakdown_recorded(self, session):
        rng = np.random.default_rng(51)
        columns = {"k": rng.integers(0, 10**6, 2000),
                   "v": rng.normal(size=2000)}
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("t", columns, HashSegmentation("k"))
        cluster.bulk_load("t", columns)
        db2darray(cluster, "t", ["v"], session)
        assert session.telemetry.get("vft_db_seconds") > 0
        assert session.telemetry.get("vft_r_seconds") > 0
        events = session.telemetry.events("vft_transfer")
        assert len(events) == 1
        _, fields = events[0]
        assert fields["rows"] == 2000
        assert fields["policy"] == "locality"


class TestConcurrency:
    def test_concurrent_bulk_loads_preserve_every_row(self):
        cluster = VerticaCluster(node_count=3)
        cluster.sql("CREATE TABLE t (v INT) SEGMENTED BY HASH(v) ALL NODES")
        table = cluster.catalog.get_table("t")
        errors = []

        def load(offset: int):
            try:
                table.insert({"v": np.arange(offset, offset + 500)})
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=load, args=(i * 500,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cluster.sql("SELECT COUNT(*) FROM t").scalar() == 4000
        assert cluster.sql("SELECT COUNT(DISTINCT v) FROM t").scalar() == 4000

    def test_concurrent_queries(self, loaded_cluster):
        results = []
        errors = []

        def query():
            try:
                results.append(
                    loaded_cluster.sql("SELECT COUNT(*) FROM pts").scalar())
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=query) for _ in range(10)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [900] * 10

    def test_concurrent_dfs_writes(self, cluster):
        errors = []

        def write(index: int):
            try:
                cluster.dfs.write(f"/c/{index}", bytes([index]) * 100)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cluster.dfs.list_files("/c/")) == 16
        for i in range(16):
            assert cluster.dfs.read(f"/c/{i}") == bytes([i]) * 100

    def test_concurrent_transfers_to_one_session(self, session):
        rng = np.random.default_rng(52)
        columns = {"k": rng.integers(0, 10**6, 1500),
                   "v": rng.normal(size=1500)}
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("t", columns, HashSegmentation("k"))
        cluster.bulk_load("t", columns)
        loaded = []
        errors = []

        def transfer():
            try:
                loaded.append(db2darray(cluster, "t", ["v"], session))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=transfer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(array.nrow == 1500 for array in loaded)
