"""Tests for the paper-scale performance models: calibration and shape.

The important assertions here are the paper's *qualitative* claims — who
wins, by what factor, and where behaviour changes — evaluated on the
calibrated models.  These are the claims the reproduction must preserve
even where absolute numbers cannot be matched.
"""

import pytest

from repro.errors import SimulationError
from repro.perfmodel import (
    SL390,
    model_end_to_end_kmeans,
    model_in_db_prediction,
    model_kmeans_iteration_blas,
    model_kmeans_iteration_dr,
    model_kmeans_iteration_r,
    model_regression_dr,
    model_regression_r,
    model_spark_kmeans_iteration,
    model_vft_transfer,
    scaled_profile,
    simulate_odbc_transfer,
    validate_calibration,
)


class TestCalibration:
    def test_every_observation_within_tolerance(self):
        report = validate_calibration()
        misses = [r for r in report if not r["within_tolerance"]]
        assert not misses, f"calibration misses: {misses}"

    def test_held_out_points_exist(self):
        held_out = validate_calibration(held_out_only=True)
        assert len(held_out) >= 5, "need genuine held-out validation points"

    def test_held_out_points_all_pass(self):
        held_out = validate_calibration(held_out_only=True)
        assert all(r["within_tolerance"] for r in held_out)


class TestOdbcModel:
    def test_single_connection_50gb_takes_about_an_hour(self):
        result = simulate_odbc_transfer(50, 5, 1)
        assert 45 <= result.minutes <= 70

    def test_parallel_connections_help_sublinearly(self):
        """120 connections are nowhere near 120x faster — the overwhelm."""
        single = simulate_odbc_transfer(50, 5, 1).total_seconds
        parallel = simulate_odbc_transfer(50, 5, 120).total_seconds
        speedup = single / parallel
        assert 2 <= speedup <= 20

    def test_more_connections_eventually_hurt(self):
        """The probe cost makes huge connection counts slower again."""
        at_40 = simulate_odbc_transfer(150, 5, 40).total_seconds
        at_480 = simulate_odbc_transfer(150, 5, 480).total_seconds
        assert at_480 > at_40

    def test_time_scales_linearly_with_size(self):
        t50 = simulate_odbc_transfer(50, 5, 120).total_seconds
        t150 = simulate_odbc_transfer(150, 5, 120).total_seconds
        assert t150 / t50 == pytest.approx(3.0, rel=0.15)

    def test_queueing_visible_at_high_concurrency(self):
        result = simulate_odbc_transfer(100, 5, 120)
        assert result.peak_queue_depth > 50
        assert result.mean_slot_utilization > 0.5

    def test_skewed_segments_extend_makespan(self):
        uniform = simulate_odbc_transfer(100, 4, 32).total_seconds
        skewed = simulate_odbc_transfer(
            100, 4, 32, segment_skew=[5.0, 1.0, 1.0, 1.0]
        ).total_seconds
        assert skewed > uniform

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            simulate_odbc_transfer(0, 5, 1)
        with pytest.raises(SimulationError):
            simulate_odbc_transfer(50, 5, 1, segment_skew=[1.0])


class TestVftModel:
    def test_headline_6x_over_odbc(self):
        """The abstract's claim: transfers ~6x faster than ODBC."""
        odbc = simulate_odbc_transfer(150, 5, 120).total_seconds
        vft = model_vft_transfer(150, 5, 24).total_seconds
        assert 4 <= odbc / vft <= 10

    def test_400gb_under_10_minutes(self):
        assert model_vft_transfer(400, 12, 24).minutes < 10

    def test_db_component_constant_in_instances(self):
        times = [model_vft_transfer(400, 12, i).db_seconds for i in (2, 8, 24)]
        assert max(times) - min(times) < 1e-9

    def test_r_component_shrinks_with_instances(self):
        r2 = model_vft_transfer(400, 12, 2).r_seconds
        r12 = model_vft_transfer(400, 12, 12).r_seconds
        assert r12 < r2 / 4

    def test_r_component_plateaus_past_physical_cores(self):
        r12 = model_vft_transfer(400, 12, 12).r_seconds
        r24 = model_vft_transfer(400, 12, 24).r_seconds
        assert r24 == pytest.approx(r12)

    def test_half_time_in_r_at_two_instances(self):
        """Fig 14: 'almost half of the transfer time is spent in buffering
        data and converting into R objects' at low parallelism."""
        result = model_vft_transfer(400, 12, 2)
        assert 0.35 <= result.r_seconds / result.total_seconds <= 0.55

    def test_skew_dominates_locality_transfer(self):
        uniform = model_vft_transfer(100, 4, 24).total_seconds
        skewed = model_vft_transfer(100, 4, 24,
                                    segment_skew=[5, 1, 1, 1]).total_seconds
        assert skewed > 1.5 * uniform


class TestPredictionModel:
    def test_near_linear_scaling_in_rows(self):
        t_small = model_in_db_prediction(1e7, "kmeans", 5).total_seconds
        t_large = model_in_db_prediction(1e9, "kmeans", 5).total_seconds
        # Paper: dataset grows 100x, time grows far less due to fixed costs,
        # but the scan component is exactly linear.
        scan_small = model_in_db_prediction(1e7, "kmeans", 5).scan_seconds
        scan_large = model_in_db_prediction(1e9, "kmeans", 5).scan_seconds
        assert scan_large / scan_small == pytest.approx(100.0)
        assert t_large < 100 * t_small

    def test_more_nodes_speed_up_prediction(self):
        t5 = model_in_db_prediction(1e9, "glm", 5).total_seconds
        t10 = model_in_db_prediction(1e9, "glm", 10).total_seconds
        assert t10 < t5

    def test_kmeans_costs_more_than_glm(self):
        km = model_in_db_prediction(1e8, "kmeans", 5).total_seconds
        glm = model_in_db_prediction(1e8, "glm", 5).total_seconds
        assert km > glm

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            model_in_db_prediction(1e6, "svm", 5)


class TestAlgorithmModels:
    def test_r_flat_in_cores_dr_scales(self):
        r_1 = model_kmeans_iteration_r(1e6, 100, 1000).per_iteration_seconds
        dr_1 = model_kmeans_iteration_dr(1e6, 100, 1000, cores=1)
        dr_12 = model_kmeans_iteration_dr(1e6, 100, 1000, cores=12)
        assert dr_12.per_iteration_seconds < dr_1.per_iteration_seconds / 8
        assert r_1 == pytest.approx(
            model_kmeans_iteration_r(1e6, 100, 1000).per_iteration_seconds
        )

    def test_9x_speedup_at_12_cores(self):
        r_time = model_kmeans_iteration_r(1e6, 100, 1000).per_iteration_seconds
        dr_time = model_kmeans_iteration_dr(
            1e6, 100, 1000, cores=12).per_iteration_seconds
        assert 7 <= r_time / dr_time <= 12

    def test_plateau_past_physical_cores(self):
        dr_12 = model_kmeans_iteration_dr(1e6, 100, 1000, cores=12)
        dr_24 = model_kmeans_iteration_dr(1e6, 100, 1000, cores=24)
        assert dr_24.per_iteration_seconds == pytest.approx(
            dr_12.per_iteration_seconds
        )

    def test_dr_regression_beats_r_even_single_core(self):
        """Fig 18's algorithmic point: Newton-Raphson beats QR at 1 core."""
        r_time = model_regression_r(1e8, 7).total_seconds
        dr_time = model_regression_dr(1e8, 7, cores=1, iterations=2).total_seconds
        assert dr_time < r_time / 2

    def test_regression_weak_scaling_flat(self):
        """Fig 19: proportional data growth keeps iteration time flat."""
        times = [
            model_regression_dr(rows, 100, cores=24, nodes=nodes,
                                iterations=1).per_iteration_seconds
            for nodes, rows in ((1, 3e7), (4, 1.2e8), (8, 2.4e8))
        ]
        assert max(times) / min(times) < 1.05

    def test_straggler_skew_slows_iteration(self):
        balanced = model_kmeans_iteration_dr(
            1e6, 100, 1000, cores=12, nodes=4).per_iteration_seconds
        skewed = model_kmeans_iteration_dr(
            1e6, 100, 1000, cores=12, nodes=4,
            skew=[3, 1, 1, 1]).per_iteration_seconds
        assert skewed > balanced


class TestSparkModels:
    def test_dr_about_20_percent_faster(self):
        dr = model_kmeans_iteration_blas(4.8e8, 100, 1000, 8)
        spark = model_spark_kmeans_iteration(4.8e8, 100, 1000, 8)
        assert 1.1 <= spark / dr <= 1.5

    def test_weak_scaling_flat_for_both(self):
        for model in (model_kmeans_iteration_blas, model_spark_kmeans_iteration):
            times = [
                model(rows, 100, 1000, nodes)
                for nodes, rows in ((1, 6e7), (4, 2.4e8), (8, 4.8e8))
            ]
            assert max(times) / min(times) < 1.01

    def test_end_to_end_near_tie(self):
        """Fig 21: Spark loads faster, DR iterates faster — roughly a tie."""
        systems = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180, iterations=1)
        vertica = systems["vertica+dr"]
        spark = systems["spark+hdfs"]
        assert vertica.load_seconds > spark.load_seconds
        assert vertica.per_iteration_seconds < spark.per_iteration_seconds
        ratio = vertica.total_seconds / spark.total_seconds
        assert 0.75 <= ratio <= 1.25

    def test_ext4_load_fastest(self):
        systems = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180)
        assert systems["dr+ext4"].load_seconds < systems["spark+hdfs"].load_seconds
        assert systems["dr+ext4"].load_seconds < systems["vertica+dr"].load_seconds

    def test_more_iterations_favor_dr(self):
        one = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180, iterations=1)
        ten = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180, iterations=10)
        ratio_one = one["vertica+dr"].total_seconds / one["spark+hdfs"].total_seconds
        ratio_ten = ten["vertica+dr"].total_seconds / ten["spark+hdfs"].total_seconds
        assert ratio_ten < ratio_one


class TestProfiles:
    def test_scaled_profile_speeds_everything(self):
        fast = scaled_profile(SL390, speed=2.0)
        slow_time = model_vft_transfer(100, 4, 24, SL390).total_seconds
        fast_time = model_vft_transfer(100, 4, 24, fast).total_seconds
        assert fast_time < slow_time

    def test_scaled_profile_overrides(self):
        custom = scaled_profile(SL390, speed=1.0, db_scan_slots_per_node=8)
        assert custom.db_scan_slots_per_node == 8

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            scaled_profile(SL390, speed=0)
