"""The observability layer: typed metrics, span tracing, PROFILE, exporters.

Covers the contracts the rest of the system leans on:

* instruments enforce their declared kinds and clamp/accumulate correctly
  (including the ``gauge_add``-after-``reset`` regression);
* the legacy ``Telemetry`` facade stays drop-in compatible;
* span trees nest across threads and engines, and ``PROFILE`` subtree
  row/byte totals reconcile with the scan counters;
* exporters produce loadable chrome-trace payloads.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SqlSyntaxError
from repro.obs.export import (
    chrome_trace_events,
    span_to_dict,
    write_trace_artifact,
)
from repro.obs.metrics import CATALOG, MetricsRegistry
from repro.obs.trace import Tracer, add_to_current, max_to_current
from repro.vertica import HashSegmentation, VerticaCluster
from repro.vertica.telemetry import Telemetry


def make_cluster(rows=600, nodes=3, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 1000, rows),
        "a": rng.normal(size=rows),
        "b": rng.normal(size=rows),
    }
    cluster = VerticaCluster(node_count=nodes, **kwargs)
    cluster.create_table_like("pts", columns, HashSegmentation("k"))
    cluster.bulk_load("pts", columns)
    return cluster


# -- instruments ---------------------------------------------------------------


class TestInstruments:
    def test_counter_accumulates_and_snapshots_bare_name(self):
        registry = MetricsRegistry()
        registry.counter("rows_scanned").add(5)
        registry.counter("rows_scanned").add(7)
        assert registry.snapshot()["rows_scanned"] == 12

    def test_declared_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="monotonic"):
            registry.counter("rows_scanned").add(-1)

    def test_dynamic_counter_allows_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("ad_hoc_test_counter")
        assert counter.dynamic
        counter.add(-2)  # legacy callers use counters as accumulators
        assert counter.value == -2

    def test_gauge_level_clamps_at_zero_and_tracks_peak(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pipeline_inflight_bytes")
        assert gauge.add(100) == 100
        assert gauge.add(50) == 150
        assert gauge.add(-500) == 0  # clamped, not -350
        snap = registry.snapshot()
        assert snap["pipeline_inflight_bytes_now"] == 0
        assert snap["pipeline_inflight_bytes_peak"] == 150

    def test_gauge_clamp_after_reset_regression(self):
        """In-flight decrements arriving after reset() must not leave the
        level stuck below zero (the pre-registry Telemetry bug)."""
        registry = MetricsRegistry()
        gauge = registry.gauge("pipeline_inflight_bytes")
        gauge.add(4096)  # producer charges
        registry.reset()  # snapshot boundary mid-stream
        assert gauge.add(-4096) == 0  # consumer releases post-reset
        assert gauge.add(1000) == 1000  # next stream sees a sane level

    def test_watermark_gauge_snapshots_bare_name(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("peak_batch_bytes")
        gauge.observe_max(10)
        gauge.observe_max(5)
        assert registry.snapshot() == {"peak_batch_bytes": 10}

    def test_histogram_stats_and_snapshot_keys(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("query_seconds")
        assert histogram.stats() == {"count": 0, "sum": 0.0, "min": 0.0,
                                     "max": 0.0}
        for value in (0.5, 0.1, 0.9):
            histogram.observe(value)
        snap = registry.snapshot()
        assert snap["query_seconds_count"] == 3
        assert snap["query_seconds_sum"] == pytest.approx(1.5)
        assert snap["query_seconds_min"] == 0.1
        assert snap["query_seconds_max"] == 0.9

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("rows_scanned")
        with pytest.raises(TypeError, match="counter"):
            registry.gauge("rows_scanned")
        # Declared-kind mismatch fails even before first use.
        with pytest.raises(TypeError, match="declared"):
            registry.counter("pipeline_inflight_bytes")

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("rows_scanned").add(3)
        registry.histogram("query_seconds").observe(1.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap["rows_scanned"] == 0
        assert snap["query_seconds_count"] == 0

    def test_catalog_specs_are_well_formed(self):
        for name, spec in CATALOG.items():
            assert spec.name == name
            assert spec.description.endswith(".")
            assert spec.module.startswith("repro.")
            assert not (spec.watermark and spec.kind != "gauge")


# -- the Telemetry facade ------------------------------------------------------


class TestTelemetryShim:
    def test_add_and_get_round_trip(self):
        telemetry = Telemetry()
        telemetry.add("rows_scanned", 10)
        telemetry.add("rows_scanned")
        assert telemetry.get("rows_scanned") == 11
        assert telemetry.get("never_touched") == 0

    def test_add_routes_by_declared_kind(self):
        telemetry = Telemetry()
        telemetry.add("query_seconds", 0.25)  # histogram in the catalog
        assert telemetry.registry.histogram("query_seconds").stats()["count"] == 1
        telemetry.add("pipeline_inflight_bytes", 64)  # gauge in the catalog
        assert telemetry.registry.gauge("pipeline_inflight_bytes").now == 64

    def test_gauge_add_returns_clamped_level(self):
        telemetry = Telemetry()
        assert telemetry.gauge_add("pipeline_inflight_bytes", 10) == 10
        assert telemetry.gauge_add("pipeline_inflight_bytes", -25) == 0

    def test_gauge_add_after_reset_regression(self):
        telemetry = Telemetry()
        telemetry.gauge_add("pipeline_inflight_bytes", 2048)
        telemetry.reset()
        telemetry.gauge_add("pipeline_inflight_bytes", -2048)
        snap = telemetry.snapshot()
        assert snap["pipeline_inflight_bytes_now"] == 0
        assert telemetry.gauge_add("pipeline_inflight_bytes", 7) == 7

    def test_observe_max_compat_for_peak_suffix(self):
        telemetry = Telemetry()
        telemetry.gauge_add("pipeline_inflight_bytes", 5)
        telemetry.observe_max("pipeline_inflight_bytes_peak", 999)
        assert telemetry.get("pipeline_inflight_bytes_peak") == 999

    def test_observe_max_dynamic_name_readable_by_get(self):
        telemetry = Telemetry()
        telemetry.observe_max("my_custom_peak_thing", 42)
        telemetry.observe_max("my_custom_peak_thing", 17)
        assert telemetry.get("my_custom_peak_thing") == 42

    def test_events_cleared_by_reset(self):
        telemetry = Telemetry()
        telemetry.record_event("vft_transfer", rows=5)
        kind, fields = telemetry.events("vft_transfer")[0]
        assert kind == "vft_transfer" and fields["rows"] == 5
        telemetry.reset()
        assert telemetry.events() == []


# -- tracing -------------------------------------------------------------------


class TestTracer:
    def test_ambient_nesting_same_thread(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent is outer
        assert outer.children == [inner]
        assert [span.name for span in outer.walk()] == ["outer", "inner"]
        assert tracer.roots() == [outer]

    def test_explicit_parent_crosses_threads(self):
        from concurrent.futures import ThreadPoolExecutor

        tracer = Tracer()
        with tracer.span("query") as query:
            parent = tracer.current()

            def work(i):
                with tracer.span("scan.node", parent=parent, node=i) as span:
                    span.add(rows=10)

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(work, range(4)))
        assert len(query.children) == 4
        assert query.total("rows") == 40
        assert tracer.roots() == [query]  # children are not roots

    def test_root_flag_detaches(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("standalone", root=True) as standalone:
                pass
        assert standalone.parent is None
        assert [root.name for root in tracer.roots()] == ["outer", "standalone"]

    def test_error_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        root = tracer.last_root()
        assert root.error == "ValueError: nope"
        assert root.end is not None

    def test_ambient_helpers_noop_without_span(self):
        add_to_current(rows=5)  # must not raise
        max_to_current(peak=5)

    def test_ambient_helpers_land_on_active_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            add_to_current(rows=2)
            add_to_current(rows=3)
            max_to_current(peak=7)
            max_to_current(peak=4)
        assert span.attributes["rows"] == 5
        assert span.attributes["peak"] == 7

    def test_roots_bounded(self):
        tracer = Tracer(max_roots=4)
        for i in range(10):
            with tracer.span(f"r{i}"):
                pass
        assert [root.name for root in tracer.roots()] == [
            "r6", "r7", "r8", "r9"]

    def test_cross_engine_tree(self):
        """Children attach to the parent span object even when a different
        tracer opened it (cluster query under a DR session's transfer)."""
        a, b = Tracer(), Tracer()
        with a.span("vft.transfer") as transfer:
            with b.span("query") as query:
                pass
        assert query.parent is transfer
        assert b.roots() == []  # nested: not a root of either tracer


# -- PROFILE -------------------------------------------------------------------


class TestProfile:
    def test_profile_scan_reconciles_with_counters(self):
        cluster = make_cluster()
        before = cluster.telemetry.snapshot()
        result = cluster.sql("PROFILE SELECT k, a FROM pts WHERE a > 0")
        after = cluster.telemetry.snapshot()
        columns = result.as_arrays()
        assert list(columns) == ["operator", "wall_ms", "rows", "bytes",
                                 "detail"]
        operators = list(columns["operator"])
        assert operators[0] == "query"
        assert operators[1].strip() == "scan"
        assert sum(op.strip() == "scan.node" for op in operators) == 3
        # Subtree totals on the root row == counter deltas for the query.
        scanned = after["rows_scanned"] - before.get("rows_scanned", 0)
        byted = after["bytes_scanned"] - before.get("bytes_scanned", 0)
        assert columns["rows"][0] == scanned == 600
        assert columns["bytes"][0] == byted > 0
        assert (columns["wall_ms"] >= 0).all()

    def test_profile_runs_the_query(self):
        cluster = make_cluster()
        result = cluster.sql("PROFILE SELECT COUNT(*) AS n FROM pts")
        detail = result.as_arrays()["detail"][0]
        assert "result_rows=1" in detail

    def test_profile_prediction_instance_attributes(self):
        cluster = make_cluster(rows=900)
        from repro.deploy import deploy_model
        from repro.algorithms.glm import GlmModel

        model = GlmModel(coefficients=np.array([0.0, 1.0, -1.0]),
                         family="gaussian", link="identity", intercept=True,
                         iterations=1, deviance=0.0, null_deviance=0.0,
                         converged=True, n_observations=900)
        deploy_model(cluster, model, "m")
        result = cluster.sql(
            "PROFILE SELECT glmPredict(a, b USING PARAMETERS model='m') "
            "OVER (PARTITION NODES) FROM pts")
        columns = result.as_arrays()
        operators = [op.strip() for op in columns["operator"]]
        assert operators.count("udtf.instance") == 3
        instance_rows = [
            detail for op, detail in zip(operators, columns["detail"])
            if op == "udtf.instance"
        ]
        total_in = sum(
            int(dict(kv.split("=") for kv in d.split(", "))["rows_in"])
            for d in instance_rows
        )
        assert total_in == 900
        assert columns["rows"][0] == 900  # producer-side subtree total

    def test_profile_rejects_non_select(self):
        cluster = make_cluster()
        with pytest.raises(SqlSyntaxError, match="SELECT"):
            cluster.sql("PROFILE DROP TABLE pts")

    def test_profile_eager_mode_too(self):
        from repro.vertica.pipeline import PipelineConfig

        cluster = make_cluster(pipeline=PipelineConfig(mode="eager"))
        result = cluster.sql("PROFILE SELECT a FROM pts")
        columns = result.as_arrays()
        assert columns["operator"][0] == "query"
        assert columns["rows"][0] == 600


# -- query spans and histograms ------------------------------------------------


class TestQueryInstrumentation:
    def test_sql_records_query_span_and_histogram(self):
        cluster = make_cluster()
        cluster.sql("SELECT COUNT(*) AS n FROM pts")
        root = cluster.tracer.last_root()
        assert root.name == "query"
        assert root.attributes["statement"].startswith("SELECT COUNT(*)")
        assert root.attributes["result_rows"] == 1
        stats = cluster.telemetry.registry.histogram("query_seconds").stats()
        assert stats["count"] >= 1
        assert stats["sum"] > 0

    def test_backpressure_counter_counts_blocking(self):
        from repro.vertica.pipeline import BatchQueue

        telemetry = Telemetry()
        queue = BatchQueue(maxdepth=1, telemetry=telemetry)
        queue.put({"a": np.zeros(4)})
        import threading

        consumer = iter(queue)
        timer = threading.Timer(0.05, lambda: next(consumer))
        timer.start()
        queue.put({"a": np.zeros(4)})  # blocks until the timer drains one
        timer.join()
        assert queue.blocked_seconds > 0
        assert telemetry.get("pipeline_backpressure_seconds") > 0


# -- exporters -----------------------------------------------------------------


class TestExport:
    def make_tree(self):
        tracer = Tracer()
        with tracer.span("query", statement="SELECT 1") as root:
            with tracer.span("scan") as scan:
                scan.add(rows=10, bytes=80)
        return root

    def test_chrome_trace_events_shape(self):
        root = self.make_tree()
        events = chrome_trace_events([root])
        assert [event["name"] for event in events] == ["query", "scan"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        assert events[1]["args"]["rows"] == 10

    def test_span_to_dict_nests(self):
        tree = span_to_dict(self.make_tree())
        assert tree["name"] == "query"
        assert tree["children"][0]["attributes"]["bytes"] == 80

    def test_write_trace_artifact_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("rows_scanned").add(10)
        path = write_trace_artifact(
            tmp_path / "nested" / "t.trace.json", [self.make_tree()],
            registries=[registry], meta={"test": "x"},
        )
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 2
        assert payload["spans"][0]["name"] == "query"
        assert payload["metrics"][0]["rows_scanned"] == 10
        assert payload["meta"] == {"test": "x"}

    def test_chrome_trace_empty(self):
        assert chrome_trace_events([]) == []


# -- cross-engine trees --------------------------------------------------------


class TestTransferTrace:
    def test_vft_transfer_tree_connects_engines(self):
        from repro.dr.session import start_session
        from repro.transfer.db2darray import db2darray

        cluster = make_cluster(rows=400)
        with start_session(node_count=3, instances_per_node=1) as session:
            darray = db2darray(cluster, "pts", ["a", "b"], session)
            transfer = [root for root in session.tracer.roots()
                        if root.name == "vft.transfer"][-1]
            names = [child.name for child in transfer.children]
            assert "query" in names and "vft.finalize" in names
            assert transfer.attributes["rows_transferred"] == 400
            # The cluster-side query span nests under the session-side
            # transfer span, and its UDTF instances carry VFT attributes.
            query = transfer.children[names.index("query")]
            instance_spans = [span for span in query.walk()
                              if span.name == "udtf.instance"]
            assert sum(span.attributes.get("vft_rows", 0)
                       for span in instance_spans) == 400
            darray.free()

    def test_dr_task_spans_attach_to_dispatcher(self):
        from repro.dr.session import start_session

        with start_session(node_count=2, instances_per_node=1) as session:
            with session.tracer.span("algorithm.iteration") as iteration:
                session.foreach(range(4), lambda i: i * i)
            tasks = [span for span in iteration.walk()
                     if span.name == "dr.task"]
            assert len(tasks) == 4
            assert {span.attributes["partition"] for span in tasks} == set(range(4))

    def test_yarn_spans_on_session_lifecycle(self):
        from repro.dr.session import start_session
        from repro.yarn.resource_manager import NodeCapacity, ResourceManager

        manager = ResourceManager(
            [NodeCapacity(cores=4, memory_bytes=8 << 30) for _ in range(2)])
        session = start_session(node_count=2, instances_per_node=1,
                                yarn=manager)
        allocate = [root for root in session.tracer.roots()
                    if root.name == "yarn.allocate"]
        assert allocate and allocate[0].attributes["granted"] == 2
        assert manager.telemetry.get("yarn_containers_granted") == 2
        session.shutdown()
        release = [root for root in session.tracer.roots()
                   if root.name == "yarn.release"]
        assert release
        assert manager.telemetry.get("yarn_containers_released") == 2
