"""The AQP subsystem: stored samples, the WITHIN rewriter, and maintenance.

Covers the ISSUE-9 acceptance matrix end to end: ``CREATE SAMPLE`` →
``WITHIN n% ERROR`` answered from the sample with a valid CLT interval,
transparent fallback to exact when the bound can't be met, and
correctness across trickle INSERTs (epoch-incremental fold), DELETEs
(frozen-rate rebuild), and mergeout history purges — with the fold/rebuild
parity pinned to the deterministic hash draw (identical row sets, value
error ≤ 1e-9).  Statistical validity is checked two ways: hypothesis
property tests over the estimator core, and a deterministic ≥50-seed
loop asserting realized CI coverage at (or above) the nominal confidence.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.aqp.build import BASE_ROWID_COLUMN, build_sample, drop_sample
from repro.aqp.catalog import sample_dfs_path
from repro.aqp.estimator import (
    ht_estimate,
    inverse_normal_cdf,
    keep_mask,
    keep_mask_stratified,
    stratum_rates,
    z_value,
)
from repro.aqp.refresh import refresh_sample
from repro.errors import (
    CatalogError,
    PermissionDeniedError,
    SemanticError,
)
from repro.faults.plan import FaultKind, FaultPlan, InjectedFault
from repro.vertica.cluster import VerticaCluster
from repro.vertica.models import Privilege
from repro.vertica.segmentation import HashSegmentation
from repro.vertica.table import ROWID_COLUMN

aqp_settings = settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_cluster(rows=4000, nodes=3, seed=0):
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 1000, rows),
        "x": rng.normal(100.0, 10.0, rows),
        "grp": rng.choice(np.asarray(["a", "b", "c"], dtype=object),
                          rows, p=[0.70, 0.25, 0.05]),
    }
    cluster = VerticaCluster(node_count=nodes)
    cluster.create_table_like("t", columns, HashSegmentation("k"))
    cluster.bulk_load("t", columns)
    return cluster


def span_names(cluster):
    """Every span name in the cluster's trace, roots and descendants."""
    out = []

    def walk(span):
        out.append(span.name)
        for child in span.children:
            walk(child)

    for root in cluster.tracer.roots():
        walk(root)
    return out


def sample_contents(cluster, name):
    """A sample table's rows keyed and ordered by originating base rowid."""
    table = cluster.catalog.get_table(name)
    cols = [s.name for s in table.user_schema]
    data = table.scan_all(cols)
    order = np.argsort(data[BASE_ROWID_COLUMN], kind="stable")
    return {c: data[c][order] for c in cols}


def assert_samples_identical(got, want):
    assert set(got) == set(want)
    for name in want:
        a, b = got[name], want[name]
        assert len(a) == len(b), f"column {name!r}: {len(a)} vs {len(b)} rows"
        if a.dtype.kind == "f":
            assert np.allclose(a, b, rtol=0.0, atol=1e-9), name
        else:
            assert np.array_equal(a, b), name


# -- estimator core -------------------------------------------------------


class TestEstimator:
    def test_keep_mask_rate_and_determinism(self):
        rowids = np.arange(50_000, dtype=np.int64)
        mask = keep_mask(rowids, seed=7, rate=0.1)
        assert np.array_equal(mask, keep_mask(rowids, seed=7, rate=0.1))
        assert abs(mask.mean() - 0.1) < 0.01
        # A different seed draws a genuinely different subset.
        assert not np.array_equal(mask, keep_mask(rowids, seed=8, rate=0.1))

    def test_full_rate_sample_is_exact(self):
        # rate 1.0 → every weight is 1 → the HT scale-up degenerates to the
        # exact aggregate with zero variance.
        y = np.asarray([3.0, 5.0, 7.0, 9.0])
        w = np.ones(4)
        for func, exact in (("COUNT", 4.0), ("SUM", 24.0), ("AVG", 6.0)):
            est = ht_estimate(func, y, w, 0.95)
            assert est.estimate == pytest.approx(exact)
            assert est.se == 0.0
            assert est.ci_low == est.ci_high == est.estimate

    def test_ht_count_matches_closed_form(self):
        w = np.full(10, 4.0)  # rate 25%, ten sampled rows
        est = ht_estimate("COUNT", None, w, 0.95)
        assert est.estimate == pytest.approx(40.0)
        assert est.se == pytest.approx(np.sqrt(10 * 4.0 * 3.0))

    def test_z_value_matches_known_quantiles(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-5)
        assert inverse_normal_cdf(0.5) == pytest.approx(0.0, abs=1e-9)
        with pytest.raises(ValueError):
            z_value(1.5)
        with pytest.raises(ValueError):
            inverse_normal_cdf(0.0)
        with pytest.raises(ValueError):
            ht_estimate("MEDIAN", None, np.ones(3), 0.95)

    def test_stratum_rates_boost_rare_strata(self):
        rates = stratum_rates({"big": 100_000, "rare": 50}, rate=0.01,
                              min_rows=100)
        assert rates["big"] == pytest.approx(0.01)
        assert rates["rare"] == 1.0  # boosted past the cap

    def test_stratified_mask_uses_per_stratum_rates(self):
        rowids = np.arange(20_000, dtype=np.int64)
        strata = np.asarray(["a", "b"] * 10_000, dtype=object)
        mask = keep_mask_stratified(rowids, strata, seed=3,
                                    rates={"a": 0.02, "b": 0.5},
                                    default_rate=0.02)
        a, b = mask[strata == "a"], mask[strata == "b"]
        assert abs(a.mean() - 0.02) < 0.01
        assert abs(b.mean() - 0.5) < 0.02


# -- property tests (hypothesis) ------------------------------------------


class TestProperties:
    @aqp_settings
    @given(st.integers(0, 2**62), st.floats(0.01, 1.0))
    def test_membership_is_a_pure_function_of_rowid(self, seed, rate):
        # The identity the whole refresh design rests on: drawing a prefix
        # and a suffix separately (incremental fold) selects exactly the
        # rows one full draw (rebuild) would.
        rowids = np.arange(2_000, dtype=np.int64)
        full = keep_mask(rowids, seed, rate)
        split = np.concatenate([keep_mask(rowids[:1_200], seed, rate),
                                keep_mask(rowids[1_200:], seed, rate)])
        assert np.array_equal(full, split)
        assert np.array_equal(full, keep_mask(rowids, seed, rate))

    @aqp_settings
    @given(st.integers(0, 2**32 - 1),
           st.sampled_from(["COUNT", "SUM", "AVG"]),
           st.floats(0.5, 0.999))
    def test_ci_brackets_the_estimate(self, seed, func, confidence):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(1.0, 20.0, 200)
        values = rng.normal(10.0, 3.0, 200)
        est = ht_estimate(func, values, weights, confidence)
        assert est.ci_low <= est.estimate <= est.ci_high
        assert est.half_width >= 0.0
        assert np.isfinite(est.estimate)

    def test_ci_coverage_meets_nominal_rate(self):
        # Deterministic many-seed coverage check: over 60 independent draws
        # the 95% interval must contain the true total at ≥ the nominal
        # rate (CLT intervals at ~500 sampled rows are effectively exact).
        rng = np.random.default_rng(123)
        y = rng.normal(50.0, 5.0, 5_000)
        truth = float(y.sum())
        rowids = np.arange(5_000, dtype=np.int64)
        rate, seeds = 0.1, 60
        covered = 0
        for seed in range(seeds):
            mask = keep_mask(rowids, seed, rate)
            weights = np.full(int(mask.sum()), 1.0 / rate)
            est = ht_estimate("SUM", y[mask], weights, 0.95)
            covered += est.ci_low <= truth <= est.ci_high
        assert covered / seeds >= 0.95


# -- SQL flow -------------------------------------------------------------


class TestSqlFlow:
    def test_create_sample_then_within_is_served(self):
        cluster = make_cluster()
        status = cluster.sql(
            "CREATE SAMPLE s1 ON t UNIFORM RATE 20% SEED 42").scalar()
        assert status.startswith("CREATE SAMPLE")
        record = cluster.aqp.get("s1")
        assert record.kind == "uniform" and record.rate == pytest.approx(0.2)
        assert cluster.dfs.exists(sample_dfs_path("s1"))

        exact = cluster.sql("SELECT AVG(x) FROM t").scalar()
        result = cluster.sql("SELECT AVG(x) FROM t WITHIN 2% ERROR")
        assert list(result.column_names) == [
            "estimate", "ci_low", "ci_high", "sample_fraction"]
        est = result.column("estimate")[0]
        assert result.column("ci_low")[0] <= est <= result.column("ci_high")[0]
        assert result.column("ci_low")[0] <= exact <= result.column("ci_high")[0]
        assert 0.0 < result.column("sample_fraction")[0] < 1.0
        # The realized half-width honors the requested relative bound.
        assert (result.column("ci_high")[0] - est) <= 0.02 * abs(est)
        assert cluster.telemetry.get("aqp_rewrites") == 1
        assert cluster.telemetry.get("samples_built") == 1
        assert "aqp.build" in span_names(cluster)
        assert "aqp.rewrite" in span_names(cluster)

    def test_count_and_sum_and_where_predicates(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 25% SEED 1")
        count = cluster.sql("SELECT COUNT(*) FROM t WITHIN 5% ERROR")
        assert count.column("estimate")[0] == pytest.approx(4000, rel=0.05)
        total = cluster.sql("SELECT SUM(x) FROM t WITHIN 5% ERROR")
        exact = cluster.sql("SELECT SUM(x) FROM t").scalar()
        assert total.column("ci_low")[0] <= exact <= total.column("ci_high")[0]
        filtered = cluster.sql(
            "SELECT SUM(x) FROM t WHERE k < 500 WITHIN 10% ERROR")
        exact_f = cluster.sql("SELECT SUM(x) FROM t WHERE k < 500").scalar()
        assert (filtered.column("ci_low")[0] <= exact_f
                <= filtered.column("ci_high")[0])

    def test_fallback_without_a_sample_and_under_tight_bounds(self):
        cluster = make_cluster()
        # No sample at all: exact answer in degenerate-CI clothing.
        r = cluster.sql("SELECT AVG(x) FROM t WITHIN 5% ERROR")
        exact = cluster.sql("SELECT AVG(x) FROM t").scalar()
        assert r.column("estimate")[0] == pytest.approx(exact)
        assert r.column("ci_low")[0] == r.column("ci_high")[0]
        assert r.column("sample_fraction")[0] == 1.0
        assert cluster.telemetry.get("aqp_fallbacks") == 1
        # A bound no 2% sample can meet: transparent exact fallback again.
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 2%")
        tight = cluster.sql(
            "SELECT AVG(x) FROM t WITHIN 0.01% ERROR CONFIDENCE 99")
        assert tight.column("estimate")[0] == pytest.approx(exact)
        assert tight.column("sample_fraction")[0] == 1.0
        assert cluster.telemetry.get("aqp_fallbacks") == 2

    def test_confidence_widens_the_interval(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 20% SEED 9")
        narrow = cluster.sql(
            "SELECT AVG(x) FROM t WITHIN 5% ERROR CONFIDENCE 80")
        wide = cluster.sql(
            "SELECT AVG(x) FROM t WITHIN 5% ERROR CONFIDENCE 99")
        hw = lambda r: r.column("ci_high")[0] - r.column("estimate")[0]  # noqa: E731
        assert hw(narrow) < hw(wide)
        assert narrow.column("estimate")[0] == wide.column("estimate")[0]

    def test_stratified_sample_oversamples_rare_strata(self):
        cluster = make_cluster(rows=20_000)
        cluster.sql("CREATE SAMPLE sg ON t STRATIFIED BY grp RATE 2% SEED 7")
        record = cluster.aqp.get("sg")
        assert record.kind == "stratified"
        # The rare stratum's rate is boosted above the nominal 2%.
        assert record.strata_rates["c"] > record.strata_rates["a"]
        exact = cluster.sql("SELECT AVG(x) FROM t WHERE grp = 'c'").scalar()
        r = cluster.sql(
            "SELECT AVG(x) FROM t WHERE grp = 'c' WITHIN 5% ERROR")
        assert r.column("sample_fraction")[0] < 1.0
        assert r.column("ci_low")[0] <= exact <= r.column("ci_high")[0]

    def test_show_and_drop_samples(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 10%")
        rows = cluster.sql("SHOW SAMPLES")
        assert rows.column("sample")[0] == "s1"
        assert rows.column("base_table")[0] == "t"
        assert rows.column("kind")[0] == "uniform"
        assert rows.column("base_rows")[0] == 4000
        assert rows.column("owner")[0] == "dbadmin"
        cluster.sql("DROP SAMPLE s1")
        assert not cluster.aqp.exists("s1")
        assert not cluster.catalog.has_table("s1")
        assert not cluster.dfs.exists(sample_dfs_path("s1"))
        assert len(cluster.sql("SHOW SAMPLES")) == 0
        # IF EXISTS swallows the absence; the bare form does not.
        cluster.sql("DROP SAMPLE IF EXISTS s1")
        with pytest.raises(CatalogError):
            drop_sample(cluster, "s1")

    def test_name_collisions_and_bad_rates_are_rejected(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 10%")
        with pytest.raises(CatalogError):
            build_sample(cluster, "s1", "t", 0.1)
        with pytest.raises(CatalogError):
            build_sample(cluster, "t", "t", 0.1)  # shadows a table name
        with pytest.raises(ValueError):
            build_sample(cluster, "s2", "t", 1.5)

    def test_analyzer_rejects_malformed_within(self):
        cluster = make_cluster()
        with pytest.raises(SemanticError):  # SA213: forgot the percent sign
            cluster.sql("SELECT AVG(x) FROM t WITHIN 2 ERROR")
        with pytest.raises(SemanticError):  # SA312: not a plain aggregate
            cluster.sql("SELECT MIN(x) FROM t WITHIN 5% ERROR")
        with pytest.raises(SemanticError):  # SA212: rate out of range
            cluster.sql("CREATE SAMPLE sx ON t UNIFORM RATE 150%")
        with pytest.raises(SemanticError):  # SA110: unknown sample
            cluster.sql("DROP SAMPLE ghost")

    def test_sample_privileges(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 20% SEED 11")
        # No USAGE: alice's WITHIN query silently falls back to exact.
        r = cluster.sql("SELECT AVG(x) FROM t WITHIN 2% ERROR", user="alice")
        assert r.column("sample_fraction")[0] == 1.0
        cluster.aqp.grant("s1", "alice", Privilege.USAGE,
                          granting_user="dbadmin")
        r = cluster.sql("SELECT AVG(x) FROM t WITHIN 2% ERROR", user="alice")
        assert r.column("sample_fraction")[0] < 1.0
        # USAGE does not confer MODIFY: dropping still fails...
        with pytest.raises(PermissionDeniedError):
            cluster.sql("DROP SAMPLE s1", user="alice")
        with pytest.raises(PermissionDeniedError):
            refresh_sample(cluster, "s1", user="alice")
        # ...until the owner grants it.
        cluster.aqp.grant("s1", "alice", Privilege.MODIFY,
                          granting_user="dbadmin")
        cluster.sql("DROP SAMPLE s1", user="alice")
        assert not cluster.aqp.exists("s1")


# -- epoch-incremental maintenance ----------------------------------------


def wos_trickle(cluster, n, start_k=3000, grp="c"):
    """Trickle ``n`` rows into t's WOS without waking the Tuple Mover
    (each batch row set commits one epoch, like a SQL INSERT would), so
    tests that need a deterministic staleness gap can stop the mover
    first and keep it stopped."""
    table = cluster.catalog.get_table("t")
    for i in range(n):
        table.insert({
            "k": np.asarray([start_k + i]),
            "x": np.asarray([80.0 + i]),
            "grp": np.asarray([grp], dtype=object),
        }, direct=False)


class TestMaintenance:
    def trickle(self, cluster, n, start_k=2000):
        for i in range(n):
            cluster.sql(
                f"INSERT INTO t VALUES ({start_k + i}, {90.0 + i}, 'b')")

    def test_incremental_fold_matches_from_scratch_rebuild(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        self.trickle(cluster, 40)
        result = refresh_sample(cluster, "s1")
        # The background mover may have folded part of the trickle already
        # (its cycle calls run_sample_refresh); the explicit refresh closes
        # whatever gap remains and the end state must still match a rebuild.
        assert result.strategy in ("incremental", "noop")
        # A from-scratch build at the same snapshot/seed/rate must select
        # the exact same rows with the exact same values.
        cluster.sql("CREATE SAMPLE s2 ON t UNIFORM RATE 30% SEED 42")
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 sample_contents(cluster, "s2"))
        r1, r2 = cluster.aqp.get("s1"), cluster.aqp.get("s2")
        assert r1.sample_rows == r2.sample_rows
        assert r1.base_rows == r2.base_rows == 4040
        assert cluster.telemetry.get("sample_rows_folded") >= 1

    def test_refresh_without_mutations_is_a_noop(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        # The build's own sample-table insert advances the global epoch
        # clock, so the first refresh legitimately folds a zero-row delta;
        # once absorbed, further refreshes are true noops.
        first = refresh_sample(cluster, "s1")
        assert first.rows_folded == 0
        result = refresh_sample(cluster, "s1")
        assert result.strategy == "noop"
        assert result.rows_folded == 0

    def test_delete_forces_rebuild_with_parity(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        cluster.sql("DELETE FROM t WHERE k < 100")
        result = refresh_sample(cluster, "s1")
        assert result.strategy == "rebuild"
        assert cluster.telemetry.get("sample_rebuilds") == 1
        cluster.sql("CREATE SAMPLE s2 ON t UNIFORM RATE 30% SEED 42")
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 sample_contents(cluster, "s2"))
        # The rebuilt sample answers for the post-delete table.
        exact = cluster.sql("SELECT AVG(x) FROM t").scalar()
        r = cluster.sql("SELECT AVG(x) FROM t WITHIN 2% ERROR")
        assert r.column("ci_low")[0] <= exact <= r.column("ci_high")[0]

    def test_stratified_rebuild_keeps_frozen_rates(self):
        cluster = make_cluster(rows=20_000)
        cluster.sql("CREATE SAMPLE sg ON t STRATIFIED BY grp RATE 2% SEED 5")
        frozen = dict(cluster.aqp.get("sg").strata_rates)
        cluster.sql("DELETE FROM t WHERE k < 100")
        result = refresh_sample(cluster, "sg")
        assert result.strategy == "rebuild"
        record = cluster.aqp.get("sg")
        assert record.strata_rates == frozen  # never recomputed
        # Independent check: the rebuilt contents are exactly the surviving
        # base rows that pass the frozen-rate deterministic draw.
        base = cluster.catalog.get_table("t")
        data = base.scan_all(["k", "x", "grp", ROWID_COLUMN])
        mask = keep_mask_stratified(data[ROWID_COLUMN], data["grp"],
                                    record.seed, frozen, record.rate)
        order = np.argsort(data[ROWID_COLUMN][mask], kind="stable")
        expected = {
            "k": data["k"][mask][order],
            "x": data["x"][mask][order],
            "grp": data["grp"][mask][order],
            BASE_ROWID_COLUMN: data[ROWID_COLUMN][mask][order].astype(np.int64),
        }
        assert_samples_identical(sample_contents(cluster, "sg"), expected)

    def test_purged_history_forces_rebuild(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        self.trickle(cluster, 10)
        # Advancing the AHM past the sample's epoch invalidates the delta
        # window even though the mutations were pure inserts.
        cluster.advance_ahm()
        cluster.tuple_mover.run_mergeout()
        result = refresh_sample(cluster, "s1")
        assert result.strategy == "rebuild"
        cluster.sql("CREATE SAMPLE s2 ON t UNIFORM RATE 30% SEED 42")
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 sample_contents(cluster, "s2"))

    def test_mover_folds_but_never_rebuilds(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 50% SEED 3")
        epoch_before = cluster.aqp.get("s1").commit_epoch
        self.trickle(cluster, 30)
        cluster.tuple_mover.run_sample_refresh()
        # Folded by this call or by a background cycle it raced with —
        # either way the sample is current and rows were folded.
        assert cluster.aqp.get("s1").commit_epoch > epoch_before
        assert cluster.telemetry.get("sample_rows_folded") >= 1
        # Deletes in the window: the background pass skips (a rebuild would
        # drop the backing table under concurrent readers).
        cluster.sql("DELETE FROM t WHERE k < 100")
        epoch_mid = cluster.aqp.get("s1").commit_epoch
        assert cluster.tuple_mover.run_sample_refresh() == 0
        assert cluster.aqp.get("s1").commit_epoch == epoch_mid
        # An explicit refresh performs the rebuild the mover declined.
        assert refresh_sample(cluster, "s1").strategy == "rebuild"

    def test_staleness_gauge_tracks_refresh_lag(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        cluster.tuple_mover.stop()
        wos_trickle(cluster, 5)
        result = refresh_sample(cluster, "s1")
        assert result.staleness_epochs >= 5
        assert (cluster.telemetry.get("sample_staleness_epochs")
                == result.staleness_epochs)
        refresh_sample(cluster, "s1")  # absorbs the fold's own commit epoch
        assert refresh_sample(cluster, "s1").strategy == "noop"
        assert cluster.telemetry.get("sample_staleness_epochs") == 0

    def test_refresh_spans_and_fold_after_moveout(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        self.trickle(cluster, 10)
        cluster.tuple_mover.run_moveout()  # deltas now live in ROS
        result = refresh_sample(cluster, "s1")
        assert result.strategy == "incremental"
        assert "aqp.refresh" in span_names(cluster)
        cluster.sql("CREATE SAMPLE s2 ON t UNIFORM RATE 30% SEED 42")
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 sample_contents(cluster, "s2"))


# -- fault injection ------------------------------------------------------


class TestFaults:
    def test_crash_in_refresh_leaves_sample_stale_but_consistent(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 30% SEED 42")
        before = cluster.aqp.get("s1")
        contents_before = sample_contents(cluster, "s1")
        cluster.tuple_mover.stop()
        wos_trickle(cluster, 20)
        plan = FaultPlan.single("aqp.refresh", FaultKind.ERROR)
        cluster.install_fault_plan(plan)
        with pytest.raises(InjectedFault):
            refresh_sample(cluster, "s1")
        assert plan.fired("aqp.refresh")
        # The site sits before any mutation: record and rows are untouched.
        after = cluster.aqp.get("s1")
        assert after.commit_epoch == before.commit_epoch
        assert after.sample_rows == before.sample_rows
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 contents_before)
        # The retried pass re-folds the same window to the same answer.
        cluster.clear_fault_plan()
        assert refresh_sample(cluster, "s1").strategy == "incremental"
        cluster.sql("CREATE SAMPLE s2 ON t UNIFORM RATE 30% SEED 42")
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 sample_contents(cluster, "s2"))

    def test_mover_cycle_survives_injected_refresh_crash(self):
        cluster = make_cluster()
        cluster.sql("CREATE SAMPLE s1 ON t UNIFORM RATE 50% SEED 3")
        cluster.tuple_mover.stop()
        wos_trickle(cluster, 1, start_k=5000, grp="a")
        cluster.install_fault_plan(
            FaultPlan.single("aqp.refresh", FaultKind.ERROR))
        with pytest.raises(InjectedFault):
            cluster.tuple_mover.run_sample_refresh()
        cluster.clear_fault_plan()
        # The next pass completes the fold the crashed one never started.
        cluster.tuple_mover.run_sample_refresh()
        cluster.sql("CREATE SAMPLE s2 ON t UNIFORM RATE 50% SEED 3")
        assert_samples_identical(sample_contents(cluster, "s1"),
                                 sample_contents(cluster, "s2"))
