"""Golden corpus for the SQL semantic analyzer.

Every entry in :data:`CORPUS` is one statically invalid statement with the
diagnostic code and source offset the analyzer must report.  An
exhaustiveness check asserts the corpus exercises *every* code in
``SA_CODES`` so a new diagnostic cannot land without a golden case.  The
rest of the module covers the lenient (schema-less lint) mode, the typed
exception mapping, the :class:`ResolvedQuery` payload the planner consumes,
and the executor integration (EXPLAIN relaxing execution-only checks).
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    SemanticError,
    SemanticParameterError,
    SemanticResolutionError,
    SqlAnalysisError,
)
from repro.storage.encoding import SqlType
from repro.vertica import VerticaCluster
from repro.vertica.sql import parse
from repro.vertica.sql.analyzer import (
    SA_CODES,
    ClusterProvider,
    Diagnostic,
    LenientProvider,
    analyze,
    check,
    sa_codes_markdown_table,
)


@pytest.fixture(scope="module")
def analyzer_cluster():
    """A cluster with two plain tables and the standard UDTFs registered.

    ``t`` mixes all four SQL types; ``u`` shares column ``k`` with it so
    join-scope diagnostics (ambiguity, qualifiers) have something to bind.
    Module-scoped: the analyzer only reads the catalog.
    """
    cluster = VerticaCluster(node_count=2)
    cluster.sql("CREATE TABLE t (k INTEGER, a FLOAT, b FLOAT, name VARCHAR)")
    cluster.sql("CREATE TABLE u (k INTEGER, c FLOAT)")
    cluster.install_standard_functions()
    return cluster


@pytest.fixture(scope="module")
def provider(analyzer_cluster):
    return ClusterProvider(analyzer_cluster)


# ---------------------------------------------------------------------------
# Golden corpus: (sql, expected code, marker whose offset is the position)
# ---------------------------------------------------------------------------

#: ``marker=None`` means the diagnostic is statement-level (no offset).
CORPUS: list[tuple[str, str, str | None]] = [
    # -- SA1xx: name resolution -----------------------------------------
    ("SELECT a FROM missing", "SA101", "missing"),
    ("DROP TABLE missing", "SA101", "missing"),
    ("SELECT zz FROM t", "SA102", "zz"),
    ("SELECT frobnicate(a) FROM t", "SA103", "frobnicate"),
    ("SELECT badUdtf(a) OVER (PARTITION BY k) FROM t", "SA104", "badUdtf"),
    ("SELECT glmPredict(a, b USING PARAMETERS model='ghost') "
     "OVER (PARTITION BEST) FROM t", "SA105", "glmPredict"),
    ("SELECT x.a FROM t JOIN u ON t.k = u.k", "SA106", "x.a"),
    ("DELETE FROM R_Models", "SA107", "R_Models"),
    ("UPDATE R_Models SET model = 'x'", "SA107", "R_Models"),
    ("INSERT INTO R_Models VALUES ('x')", "SA107", "R_Models"),
    ("SELECT * FROM t JOIN R_Models ON t.k = 1", "SA108", "R_Models"),
    ("REFRESH MODEL ghost", "SA109", "ghost"),
    ("DROP SAMPLE ghost", "SA110", "ghost"),
    # -- SA2xx: type checking -------------------------------------------
    ("SELECT a FROM t WHERE name = 3", "SA201", "= 3"),
    ("SELECT a FROM t WHERE k IN (1, 'x')", "SA201", "IN"),
    ("SELECT a FROM t WHERE a LIKE 'x%'", "SA201", "LIKE"),
    ("SELECT name + 1 FROM t", "SA202", "+ 1"),
    ("SELECT -name FROM t", "SA202", "-name"),
    ("SELECT SUM(name) FROM t", "SA203", "SUM"),
    ("SELECT MIN(DISTINCT a) FROM t", "SA203", "MIN"),
    ("SELECT sqrt(a, b) FROM t", "SA204", "sqrt"),
    ("SELECT glmPredict() OVER (PARTITION BEST) FROM t", "SA204",
     "glmPredict"),
    ("SELECT glmPredict(name USING PARAMETERS model='ghost') "
     "OVER (PARTITION BEST) FROM t", "SA204", "name"),
    ("SELECT glmPredict(a, b) OVER (PARTITION BEST) FROM t", "SA205",
     "glmPredict"),
    ("SELECT glmPredict(a USING PARAMETERS model='ghost') "
     "OVER (PARTITION BY SUM(k)) FROM t", "SA206", "SUM(k)"),
    ("SELECT a FROM t WHERE name", "SA207", "name"),
    ("INSERT INTO t VALUES (1, 2.0)", "SA208", "(1,"),
    ("INSERT INTO t VALUES (1, 2.0, 3.0, 4)", "SA209", "(1,"),
    ("CREATE TABLE bad (x FLOATY)", "SA210", "FLOATY"),
    ("UPDATE t SET name = 1 WHERE k = 0", "SA211", "1 WHERE"),
    ("CREATE SAMPLE s ON t UNIFORM RATE 150%", "SA212", "RATE 150"),
    ("SELECT AVG(a) FROM t WITHIN 200% ERROR", "SA213", "WITHIN"),
    # -- SA3xx: scope checking ------------------------------------------
    ("SELECT k FROM t JOIN u ON t.k = u.k", "SA301", "k FROM"),
    ("SELECT a, SUM(b) FROM t", "SA302", "a,"),
    ("SELECT 1 FROM t JOIN t ON k = k", "SA303", "t ON"),
    ("CREATE TABLE dup (x INTEGER, x FLOAT)", "SA303", "x FLOAT"),
    ("UPDATE t SET a = 1, a = 2", "SA303", "a = 2"),
    ("SELECT a FROM t HAVING a > 1", "SA304", None),
    ("SELECT SUM(AVG(a)) FROM t", "SA305", "SUM"),
    ("SELECT a FROM t WHERE SUM(a) > 1", "SA306", "SUM"),
    ("SELECT glmPredict(a USING PARAMETERS model='ghost') "
     "OVER (PARTITION BEST) FROM t ORDER BY a", "SA307", "glmPredict"),
    ("SELECT DISTINCT k FROM t GROUP BY k", "SA308", None),
    ("SELECT * FROM t GROUP BY k", "SA309", None),
    ("SELECT 1", "SA310", None),
    ("AT EPOCH 1 SELECT * FROM R_Models", "SA311", None),
    ("SELECT MIN(a) FROM t WITHIN 5% ERROR", "SA312", "MIN"),
    # -- SA4xx: warnings ------------------------------------------------
    ("SELECT t.a FROM t JOIN u ON t.k = 1", "SA401", "= 1"),
    ("SELECT a FROM t WHERE k = 1.5", "SA402", "= 1.5"),
    # -- cross-cutting extras -------------------------------------------
    ("CREATE TABLE seg (x INTEGER) SEGMENTED BY HASH(y) ALL NODES",
     "SA102", "y)"),
]


@pytest.mark.parametrize(
    "sql,code,marker", CORPUS, ids=[f"{c}-{i}" for i, (_, c, _) in enumerate(CORPUS)]
)
def test_golden_corpus(provider, sql, code, marker):
    resolved = analyze(parse(sql), provider)
    hits = [d for d in resolved.diagnostics if d.code == code]
    assert hits, (
        f"expected {code} for {sql!r}, got "
        f"{[(d.code, d.message) for d in resolved.diagnostics]}"
    )
    expected = None if marker is None else sql.index(marker)
    assert hits[0].position == expected, (
        f"{code} for {sql!r}: position {hits[0].position}, expected {expected}"
    )
    severity = "warning" if code in ("SA401", "SA402") else "error"
    assert hits[0].severity == severity


def test_corpus_is_exhaustive():
    """Every registered diagnostic code has at least one golden case."""
    covered = {code for _, code, _ in CORPUS}
    assert covered == set(SA_CODES), (
        f"codes without a golden case: {sorted(set(SA_CODES) - covered)}; "
        f"unregistered codes in corpus: {sorted(covered - set(SA_CODES))}"
    )


def test_corpus_is_large_enough():
    errors = [sql for sql, code, _ in CORPUS if code not in ("SA401", "SA402")]
    assert len(errors) >= 25


# ---------------------------------------------------------------------------
# Valid statements produce no diagnostics at all
# ---------------------------------------------------------------------------

VALID = [
    "SELECT a, b FROM t WHERE k > 0 ORDER BY a LIMIT 5",
    "SELECT k, COUNT(*) AS n, AVG(a) FROM t GROUP BY k HAVING COUNT(*) > 1",
    "SELECT t.a, u.c FROM t JOIN u ON t.k = u.k WHERE u.c > 0",
    "SELECT DISTINCT name FROM t",
    "SELECT upper(name), abs(a) + sqrt(b) FROM t",
    "SELECT * FROM R_Models",
    "INSERT INTO u VALUES (1, 2.0), (2, 3.5)",
    "UPDATE u SET c = c + 1 WHERE k = 2",
    "DELETE FROM u WHERE c > 100",
    "DROP TABLE IF EXISTS never_made",
    "AT EPOCH 1 SELECT a FROM t",
]


@pytest.mark.parametrize("sql", VALID)
def test_valid_statements_are_clean(provider, sql):
    resolved = analyze(parse(sql), provider)
    assert resolved.diagnostics == [], [d.render() for d in resolved.diagnostics]
    assert resolved.ok


# ---------------------------------------------------------------------------
# Lenient (schema-less lint) mode
# ---------------------------------------------------------------------------

def test_lenient_mode_accepts_unknown_schemas():
    resolved = analyze(
        parse("SELECT anything, more FROM wherever WHERE flag > 0"),
        LenientProvider(),
    )
    assert resolved.ok
    assert resolved.tables[0].open


def test_lenient_mode_still_catches_structural_errors():
    for sql, code in [
        ("SELECT a FROM t HAVING a > 1", "SA304"),
        ("SELECT DISTINCT k FROM t GROUP BY k", "SA308"),
        ("SELECT SUM(AVG(a)) FROM t", "SA305"),
        ("SELECT a FROM t WHERE SUM(a) > 1", "SA306"),
        ("UPDATE R_Models SET model = 'x'", "SA107"),
        ("SELECT 1", "SA310"),
    ]:
        resolved = analyze(parse(sql), LenientProvider())
        assert [d.code for d in resolved.errors] == [code], sql


def test_lenient_mode_skips_refresh_model_catalog_check():
    """SA109 is a catalog check: without a cluster it must not fire."""
    resolved = analyze(parse("REFRESH MODEL anything"), LenientProvider())
    assert resolved.ok


def test_lenient_mode_types_r_models():
    """R_Models keeps its real schema even without a cluster."""
    resolved = analyze(
        parse("SELECT ghost FROM R_Models"), LenientProvider()
    )
    assert [d.code for d in resolved.errors] == ["SA102"]


# ---------------------------------------------------------------------------
# Typed exception mapping
# ---------------------------------------------------------------------------

def test_missing_table_raises_catalog_flavored_error(provider):
    with pytest.raises(SemanticResolutionError) as err:
        check(parse("SELECT a FROM missing"), provider)
    assert isinstance(err.value, CatalogError)
    assert isinstance(err.value, SqlAnalysisError)
    assert str(err.value).startswith("SA101:")
    assert err.value.position == "SELECT a FROM missing".index("missing")


def test_udtf_parameter_error_is_an_execution_error(provider):
    with pytest.raises(SemanticParameterError) as err:
        check(parse("SELECT glmPredict(a, b) OVER (PARTITION BEST) FROM t"),
              provider)
    assert isinstance(err.value, ExecutionError)
    assert "model" in str(err.value)


def test_scope_error_raises_plain_semantic_error(provider):
    with pytest.raises(SemanticError) as err:
        check(parse("SELECT a, SUM(b) FROM t"), provider)
    assert str(err.value).startswith("SA302:")
    assert err.value.diagnostics
    assert err.value.diagnostics[0].code == "SA302"


def test_warnings_do_not_raise(provider):
    resolved = check(parse("SELECT a FROM t WHERE k = 1.5"), provider)
    assert resolved.ok
    assert [d.code for d in resolved.warnings] == ["SA402"]


def test_explain_relaxes_model_existence(provider):
    sql = ("EXPLAIN SELECT glmPredict(a USING PARAMETERS model='ghost') "
           "OVER (PARTITION BEST) FROM t")
    assert check(parse(sql), provider).ok
    with pytest.raises(SemanticResolutionError):
        check(parse(sql[len("EXPLAIN "):]), provider)


# ---------------------------------------------------------------------------
# ResolvedQuery payload (what the planner/executor consume)
# ---------------------------------------------------------------------------

def test_resolved_query_carries_projection_and_types(provider):
    resolved = check(
        parse("SELECT a, k FROM t WHERE b > 0 ORDER BY a"), provider
    )
    assert resolved.columns_needed == {"a", "k", "b"}
    assert resolved.output_types == {"a": SqlType.FLOAT, "k": SqlType.INTEGER}
    assert resolved.column_types["name"] is SqlType.VARCHAR


def test_resolved_query_carries_create_types(provider):
    resolved = check(
        parse("CREATE TABLE fresh (i INTEGER, f FLOAT, s VARCHAR, "
              "flag BOOLEAN)"),
        provider,
    )
    assert resolved.create_types == [
        SqlType.INTEGER, SqlType.FLOAT, SqlType.VARCHAR, SqlType.BOOLEAN,
    ]


def test_resolved_query_carries_udtf_signature(provider):
    resolved = check(
        parse("EXPLAIN SELECT glmPredict(a, b USING PARAMETERS "
              "model='ghost') OVER (PARTITION BEST) FROM t"),
        provider,
    )
    assert resolved.udtf_signature is not None
    assert resolved.udtf_signature.model_parameter == "model"
    assert resolved.columns_needed == {"a", "b"}


def test_diagnostic_render_includes_code_and_offset():
    assert Diagnostic("SA102", "unknown column 'zz'", 7).render() == (
        "SA102 error: unknown column 'zz' (at offset 7)"
    )
    assert Diagnostic("SA310", "no FROM", None).render() == (
        "SA310 error: no FROM"
    )


def test_sa_codes_table_lists_every_code():
    table = sa_codes_markdown_table()
    for code in SA_CODES:
        assert f"`{code}`" in table


# ---------------------------------------------------------------------------
# Executor integration: cluster.sql is gated by the analyzer
# ---------------------------------------------------------------------------

def test_cluster_sql_rejects_before_execution(analyzer_cluster):
    with pytest.raises(SemanticError) as err:
        analyzer_cluster.sql("SELECT zz FROM t")
    assert str(err.value).startswith("SA102:")


def test_cluster_sql_explains_undeployed_model(analyzer_cluster):
    """EXPLAIN must work for a model that is not deployed yet (SA105 is
    execution-only), while running the same query fails statically."""
    sql = ("SELECT glmPredict(a USING PARAMETERS model='ghost') "
           "OVER (PARTITION BEST) FROM t")
    plan = analyzer_cluster.sql("EXPLAIN " + sql)
    assert len(plan) > 0
    with pytest.raises(SemanticResolutionError):
        analyzer_cluster.sql(sql)
