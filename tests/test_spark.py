"""Tests for the HDFS simulator, the RDD engine, and MLlib-style algorithms."""

import numpy as np
import pytest

from repro.algorithms import hpdkmeans
from repro.dr import start_session
from repro.errors import DfsError, ExecutionError
from repro.spark import HdfsCluster, SparkContext, spark_kmeans, spark_linear_regression
from repro.workloads import make_blobs, make_regression


class TestHdfs:
    def test_write_read_roundtrip(self):
        hdfs = HdfsCluster(datanode_count=3, block_size=16)
        data = bytes(range(100))
        hdfs.write_file("/f", data)
        assert hdfs.read_file("/f") == data

    def test_blocks_split_by_block_size(self):
        hdfs = HdfsCluster(datanode_count=3, block_size=10)
        info = hdfs.write_file("/f", b"x" * 35)
        assert len(info.blocks) == 4
        assert [b.size for b in info.blocks] == [10, 10, 10, 5]

    def test_three_way_replication(self):
        hdfs = HdfsCluster(datanode_count=4, replication=3)
        info = hdfs.write_file("/f", b"data")
        assert len(info.blocks[0].replicas) == 3

    def test_replication_capped_by_nodes(self):
        hdfs = HdfsCluster(datanode_count=2, replication=3)
        info = hdfs.write_file("/f", b"data")
        assert len(info.blocks[0].replicas) == 2

    def test_read_survives_datanode_failure(self):
        hdfs = HdfsCluster(datanode_count=4, replication=3, block_size=8)
        hdfs.write_file("/f", b"important bytes here")
        hdfs.fail_datanode(0)
        hdfs.fail_datanode(1)
        assert hdfs.read_file("/f") == b"important bytes here"

    def test_all_replicas_down_raises(self):
        hdfs = HdfsCluster(datanode_count=3, replication=2)
        hdfs.write_file("/f", b"x")
        for node in range(3):
            hdfs.fail_datanode(node)
        with pytest.raises(DfsError):
            hdfs.read_file("/f")

    def test_overwrite_requires_flag(self):
        hdfs = HdfsCluster()
        hdfs.write_file("/f", b"v1")
        with pytest.raises(DfsError):
            hdfs.write_file("/f", b"v2")
        hdfs.write_file("/f", b"v2", overwrite=True)
        assert hdfs.read_file("/f") == b"v2"

    def test_delete(self):
        hdfs = HdfsCluster()
        hdfs.write_file("/f", b"x")
        hdfs.delete("/f")
        assert not hdfs.exists("/f")
        with pytest.raises(DfsError):
            hdfs.read_file("/f")

    def test_block_locations(self):
        hdfs = HdfsCluster(datanode_count=4, replication=2, block_size=4)
        hdfs.write_file("/f", b"12345678")
        locations = hdfs.block_locations("/f")
        assert len(locations) == 2
        assert all(len(replicas) == 2 for replicas in locations)

    def test_list_files(self):
        hdfs = HdfsCluster()
        hdfs.write_file("/data/a", b"1")
        hdfs.write_file("/data/b", b"2")
        hdfs.write_file("/tmp/c", b"3")
        assert hdfs.list_files("/data/") == ["/data/a", "/data/b"]


class TestRdd:
    @pytest.fixture
    def sc(self):
        with SparkContext(HdfsCluster(datanode_count=3), executors_per_node=2) as sc:
            yield sc

    def test_parallelize_collect(self, sc):
        rdd = sc.parallelize(range(10), npartitions=3)
        assert rdd.collect() == list(range(10))
        assert rdd.npartitions == 3

    def test_map_filter(self, sc):
        rdd = sc.parallelize(range(10)).map(lambda x: x * 2).filter(lambda x: x > 10)
        assert rdd.collect() == [12, 14, 16, 18]

    def test_count_reduce(self, sc):
        rdd = sc.parallelize(range(100), npartitions=4)
        assert rdd.count() == 100
        assert rdd.reduce(lambda a, b: a + b) == 4950

    def test_reduce_empty_rejected(self, sc):
        rdd = sc.parallelize([], npartitions=1)
        with pytest.raises(ExecutionError):
            rdd.reduce(lambda a, b: a + b)

    def test_laziness(self, sc):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(5)).map(trace)
        assert calls == []  # nothing computed yet
        rdd.collect()
        assert sorted(calls) == list(range(5))

    def test_cache_avoids_recompute(self, sc):
        calls = []

        def trace(items):
            calls.append(len(items))
            return items

        rdd = sc.parallelize(range(12), npartitions=3).map_partitions(trace).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first  # second action served from cache
        assert sc.telemetry.get("rdd_cache_hits") >= 3

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize(range(4), npartitions=2).map_partitions(
            lambda items: (calls.append(1), items)[1]
        ).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 4

    def test_matrix_from_hdfs_prefers_local(self, sc):
        matrix = np.arange(60.0).reshape(20, 3)
        sc.save_matrix("/m/test", matrix, npartitions=3)
        rdd = sc.matrix_from_hdfs("/m/test")
        assert rdd.npartitions == 3
        loaded = np.vstack(rdd.collect())
        assert np.array_equal(loaded, matrix)
        assert all(rdd.preferred_node(i) is not None for i in range(3))

    def test_matrix_from_missing_prefix(self, sc):
        with pytest.raises(ExecutionError):
            sc.matrix_from_hdfs("/absent")

    def test_stopped_context_rejects_work(self):
        sc = SparkContext(HdfsCluster())
        rdd = sc.parallelize(range(3))
        sc.stop()
        with pytest.raises(ExecutionError):
            rdd.collect()


class TestSparkMl:
    def test_spark_kmeans_matches_distributed_r(self):
        """The Fig 20 apples-to-apples property: same kernel, same answer."""
        dataset = make_blobs(900, 4, 5, seed=1)
        init = dataset.points[:5].copy()

        hdfs = HdfsCluster(datanode_count=3)
        with SparkContext(hdfs) as sc:
            sc.save_matrix("/km/data", dataset.points, npartitions=3)
            rdd = sc.matrix_from_hdfs("/km/data")
            spark_model = spark_kmeans(rdd, 5, initial_centers=init,
                                       max_iterations=8, tolerance=0.0)

        with start_session(node_count=3, instances_per_node=2) as session:
            data = session.darray(npartitions=3)
            data.fill_from(dataset.points)
            dr_model = hpdkmeans(data, k=5, initial_centers=init,
                                 max_iterations=8, tolerance=0.0)

        assert np.allclose(spark_model.centers, dr_model.centers, atol=1e-8)
        assert spark_model.inertia == pytest.approx(dr_model.inertia)

    def test_spark_kmeans_converges(self):
        dataset = make_blobs(600, 3, 4, spread=0.15, seed=2)
        with SparkContext(HdfsCluster(datanode_count=2)) as sc:
            sc.save_matrix("/km/d2", dataset.points, npartitions=2)
            model = spark_kmeans(sc.matrix_from_hdfs("/km/d2"), 4, seed=0,
                                 max_iterations=25)
        assert model.converged
        for center in dataset.centers:
            assert np.linalg.norm(model.centers - center, axis=1).min() < 0.5

    def test_spark_kmeans_k_too_large(self):
        with SparkContext(HdfsCluster(datanode_count=2)) as sc:
            sc.save_matrix("/km/d3", np.ones((3, 2)), npartitions=1)
            with pytest.raises(Exception):
                spark_kmeans(sc.matrix_from_hdfs("/km/d3"), 10)

    def test_spark_linear_regression(self):
        data = make_regression(2000, 3, noise_scale=0.05, seed=3)
        xy = np.column_stack([data.responses, data.features])
        with SparkContext(HdfsCluster(datanode_count=2)) as sc:
            sc.save_matrix("/lr/data", xy, npartitions=4)
            coefficients = spark_linear_regression(sc.matrix_from_hdfs("/lr/data"), 3)
        assert coefficients[0] == pytest.approx(data.true_intercept, abs=0.02)
        assert np.allclose(coefficients[1:], data.true_coefficients, atol=0.02)
