"""Tests for column-partitioned darrays, darray arithmetic, and the ODBC
wire-format string escaping."""

import numpy as np
import pytest

from repro.dr import clone, start_session
from repro.errors import PartitionError
from repro.vertica import VerticaCluster


class TestColumnPartitioning:
    def test_fill_and_collect(self, session):
        array = session.darray(npartitions=3, partition_by="column")
        data = np.arange(24.0).reshape(4, 6)
        array.fill_from(data)
        assert array.shape == (4, 6)
        assert np.array_equal(array.collect(), data)

    def test_unequal_column_partitions(self, session):
        array = session.darray(npartitions=2, partition_by="column")
        array.fill_partition(0, np.ones((3, 1)))
        array.fill_partition(1, np.ones((3, 4)))
        assert array.shape == (3, 5)

    def test_row_count_conformability(self, session):
        array = session.darray(npartitions=2, partition_by="column")
        array.fill_partition(0, np.ones((3, 2)))
        with pytest.raises(PartitionError, match="row"):
            array.fill_partition(1, np.ones((4, 2)))

    def test_invalid_partition_by(self, session):
        with pytest.raises(PartitionError):
            session.darray(npartitions=2, partition_by="diagonal")

    def test_legacy_rejects_partition_by(self, session):
        with pytest.raises(PartitionError):
            session.darray(dim=(4, 4), blocks=(2, 2), partition_by="column")

    def test_clone_preserves_column_partitioning(self, session):
        array = session.darray(npartitions=2, partition_by="column")
        array.fill_from(np.ones((4, 6)))
        cloned = clone(array, fill=3.0)
        assert cloned.partition_by == "column"
        assert cloned.shape == (4, 6)
        assert np.all(cloned.collect() == 3.0)

    def test_map_partitions_over_columns(self, session):
        array = session.darray(npartitions=3, partition_by="column")
        array.fill_from(np.arange(12.0).reshape(2, 6))
        column_sums = array.map_partitions(lambda i, part: part.sum())
        assert sum(column_sums) == pytest.approx(66.0)


class TestDArrayArithmetic:
    @pytest.fixture
    def pair(self, session):
        a = session.darray(npartitions=3)
        a.fill_from(np.arange(12.0).reshape(6, 2))
        b = clone(a, fill=2.0)
        return a, b

    def test_add_arrays(self, pair):
        a, b = pair
        assert np.array_equal((a + b).collect(), a.collect() + 2.0)

    def test_scalar_ops(self, pair):
        a, _ = pair
        assert np.array_equal((a * 3).collect(), a.collect() * 3)
        assert np.array_equal((3 * a).collect(), a.collect() * 3)
        assert np.array_equal((a + 1).collect(), a.collect() + 1)
        assert np.array_equal((a - 1).collect(), a.collect() - 1)
        assert np.allclose((a / 2).collect(), a.collect() / 2)

    def test_negation(self, pair):
        a, _ = pair
        assert np.array_equal((-a).collect(), -a.collect())

    def test_result_is_colocated(self, pair):
        a, b = pair
        result = a + b
        for i in range(a.npartitions):
            assert result.worker_of(i) == a.worker_of(i)

    def test_chained_expression(self, pair):
        a, b = pair
        result = (a + b) * 2 - 1
        assert np.array_equal(result.collect(), (a.collect() + 2) * 2 - 1)

    def test_shape_mismatch_rejected(self, session, pair):
        a, _ = pair
        other = session.darray(npartitions=3)
        other.fill_partition(0, np.ones((1, 2)))
        other.fill_partition(1, np.ones((1, 2)))
        other.fill_partition(2, np.ones((10, 2)))
        with pytest.raises(PartitionError, match="partition shapes"):
            a + other

    def test_unsupported_operand(self, pair):
        a, _ = pair
        with pytest.raises(PartitionError):
            a + "nope"

    def test_dot_vector(self, pair):
        a, _ = pair
        v = np.array([0.5, -1.0])
        result = a.dot_vector(v)
        assert result.ncol == 1
        assert np.allclose(result.collect().ravel(), a.collect() @ v)

    def test_dot_vector_wrong_length(self, pair):
        a, _ = pair
        with pytest.raises(PartitionError):
            a.dot_vector([1.0, 2.0, 3.0])

    def test_sum_and_mean(self, pair):
        a, _ = pair
        assert a.sum() == pytest.approx(a.collect().sum())
        assert a.mean() == pytest.approx(a.collect().mean())

    def test_arithmetic_on_unfilled_rejected(self, session):
        a = session.darray(npartitions=2)
        with pytest.raises(PartitionError):
            a + 1

    def test_column_partitioned_arithmetic(self, session):
        a = session.darray(npartitions=2, partition_by="column")
        a.fill_from(np.arange(8.0).reshape(2, 4))
        doubled = a * 2
        assert doubled.partition_by == "column"
        assert np.array_equal(doubled.collect(), a.collect() * 2)


class TestOdbcStringEscaping:
    def test_tabs_newlines_backslashes_roundtrip(self):
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE t (id INT, s VARCHAR)")
        tricky = ["tab\there", "line\nbreak", "back\\slash", "plain",
                  "mix\t\n\\all"]
        table = cluster.catalog.get_table("t")
        table.insert({"id": np.arange(5),
                      "s": np.asarray(tricky, dtype=object)})
        rows = cluster.connect().execute(
            "SELECT s FROM t ORDER BY id").fetchall()
        assert [r[0] for r in rows] == tricky

    def test_range_fetch_escaping(self):
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE t (s VARCHAR)")
        cluster.sql("INSERT INTO t VALUES ('a\tb')") if False else None
        table = cluster.catalog.get_table("t")
        table.insert({"s": np.asarray(["x\ty", "p\nq"], dtype=object)})
        out = cluster.connect().fetch_row_range("t", ["s"], 0, 2)
        assert sorted(out["s"]) == ["p\nq", "x\ty"]
