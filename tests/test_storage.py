"""Tests for the columnar storage substrate."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import (
    ColumnBlock,
    ColumnSchema,
    RowGroup,
    SegmentFile,
    SegmentFileWriter,
    SqlType,
    available_codecs,
    compress,
    decompress,
)
from repro.storage.encoding import (
    decode_values,
    encode_values,
    pack_validity,
    unpack_validity,
)


class TestSqlType:
    @pytest.mark.parametrize("name,expected", [
        ("INT", SqlType.INTEGER),
        ("integer", SqlType.INTEGER),
        ("BIGINT", SqlType.INTEGER),
        ("FLOAT", SqlType.FLOAT),
        ("double precision", SqlType.FLOAT),
        ("DOUBLE   PRECISION", SqlType.FLOAT),
        ("VARCHAR", SqlType.VARCHAR),
        ("text", SqlType.VARCHAR),
        ("BOOLEAN", SqlType.BOOLEAN),
    ])
    def test_sql_name_aliases(self, name, expected):
        assert SqlType.from_sql_name(name) is expected

    def test_unknown_sql_name(self):
        with pytest.raises(StorageError):
            SqlType.from_sql_name("BLOB")

    @pytest.mark.parametrize("dtype,expected", [
        (np.int64, SqlType.INTEGER),
        (np.int32, SqlType.INTEGER),
        (np.float64, SqlType.FLOAT),
        (np.float32, SqlType.FLOAT),
        (np.bool_, SqlType.BOOLEAN),
        (object, SqlType.VARCHAR),
    ])
    def test_from_numpy(self, dtype, expected):
        assert SqlType.from_numpy(np.dtype(dtype)) is expected

    def test_fixed_widths(self):
        assert SqlType.INTEGER.fixed_width == 8
        assert SqlType.FLOAT.fixed_width == 8
        assert SqlType.BOOLEAN.fixed_width == 1
        assert SqlType.VARCHAR.fixed_width is None

    def test_column_schema_requires_name(self):
        with pytest.raises(StorageError):
            ColumnSchema("", SqlType.INTEGER)


class TestEncoding:
    def test_integer_roundtrip(self):
        values = np.array([1, -5, 2**40, 0], dtype=np.int64)
        buffer = encode_values(values, SqlType.INTEGER)
        assert np.array_equal(decode_values(buffer, SqlType.INTEGER, 4), values)

    def test_float_roundtrip_with_special_values(self):
        values = np.array([1.5, -0.0, np.inf, np.nan])
        decoded = decode_values(
            encode_values(values, SqlType.FLOAT), SqlType.FLOAT, 4
        )
        assert decoded[0] == 1.5
        assert np.isinf(decoded[2])
        assert np.isnan(decoded[3])

    def test_boolean_roundtrip(self):
        values = np.array([True, False, True])
        decoded = decode_values(
            encode_values(values, SqlType.BOOLEAN), SqlType.BOOLEAN, 3
        )
        assert np.array_equal(decoded, values)

    def test_varchar_roundtrip_unicode(self):
        values = np.array(["hello", "", "naïve 日本語", "tab\tnewline\n"], dtype=object)
        decoded = decode_values(
            encode_values(values, SqlType.VARCHAR), SqlType.VARCHAR, 4
        )
        assert list(decoded) == list(values)

    def test_varchar_none_becomes_empty(self):
        values = np.array(["a", None], dtype=object)
        decoded = decode_values(
            encode_values(values, SqlType.VARCHAR), SqlType.VARCHAR, 2
        )
        assert list(decoded) == ["a", ""]

    def test_wrong_count_rejected(self):
        buffer = encode_values(np.arange(3), SqlType.INTEGER)
        with pytest.raises(StorageError):
            decode_values(buffer, SqlType.INTEGER, 5)

    def test_varchar_count_mismatch_rejected(self):
        buffer = encode_values(np.array(["a", "b"], dtype=object), SqlType.VARCHAR)
        with pytest.raises(StorageError):
            decode_values(buffer, SqlType.VARCHAR, 3)

    def test_2d_values_rejected(self):
        with pytest.raises(StorageError):
            encode_values(np.ones((2, 2)), SqlType.FLOAT)

    def test_validity_all_valid_is_empty(self):
        assert pack_validity(np.array([True, True]), 2) == b""
        assert pack_validity(None, 5) == b""

    def test_validity_roundtrip(self):
        mask = np.array([True, False, True, True, False, False, True, True, False])
        bitmap = pack_validity(mask, 9)
        assert bitmap != b""
        assert np.array_equal(unpack_validity(bitmap, 9), mask)

    def test_validity_shape_mismatch(self):
        with pytest.raises(StorageError):
            pack_validity(np.array([True]), 2)


class TestCompression:
    def test_builtin_codecs_registered(self):
        assert {"none", "zlib", "rle"} <= set(available_codecs())

    @pytest.mark.parametrize("codec", ["none", "zlib", "rle"])
    def test_roundtrip(self, codec):
        data = np.arange(1000, dtype=np.int64).tobytes()
        assert decompress(compress(data, codec), codec) == data

    def test_rle_compresses_runs(self):
        data = np.repeat(np.arange(10, dtype=np.int64), 1000).tobytes()
        compressed = compress(data, "rle")
        assert len(compressed) < len(data) / 100

    def test_rle_handles_unaligned_data(self):
        data = b"hello world"  # not a multiple of 8 bytes
        assert decompress(compress(data, "rle"), "rle") == data

    def test_rle_empty(self):
        assert decompress(compress(b"", "rle"), "rle") == b""

    def test_unknown_codec(self):
        with pytest.raises(StorageError):
            compress(b"x", "lz77")
        with pytest.raises(StorageError):
            decompress(b"x", "lz77")

    def test_zlib_actually_compresses(self):
        data = b"a" * 10_000
        assert len(compress(data, "zlib")) < 200


class TestColumnBlock:
    def test_roundtrip_float(self):
        values = np.linspace(-5, 5, 100)
        block = ColumnBlock.from_values(values, SqlType.FLOAT)
        assert np.allclose(block.values(), values)
        assert block.row_count == 100

    def test_roundtrip_varchar(self):
        values = np.array(["x", "yy", "zzz"], dtype=object)
        block = ColumnBlock.from_values(values, SqlType.VARCHAR)
        assert list(block.values()) == ["x", "yy", "zzz"]

    def test_zone_map(self):
        block = ColumnBlock.from_values(np.array([3.0, 7.0, 5.0]), SqlType.FLOAT)
        assert block.min_value == 3.0
        assert block.max_value == 7.0
        assert block.might_contain(4.0, 6.0)
        assert not block.might_contain(8.0, None)
        assert not block.might_contain(None, 2.0)

    def test_zone_map_absent_for_varchar(self):
        block = ColumnBlock.from_values(np.array(["a"], dtype=object), SqlType.VARCHAR)
        assert block.min_value is None
        assert block.might_contain(0, 1)  # must not prune without a zone map

    def test_checksum_detects_corruption(self):
        block = ColumnBlock.from_values(np.arange(10), SqlType.INTEGER, codec="none")
        block.payload = block.payload[:-8] + b"\x00" * 8
        with pytest.raises(StorageError):
            block.values()

    def test_wire_roundtrip(self):
        values = np.arange(50, dtype=np.int64)
        block = ColumnBlock.from_values(values, SqlType.INTEGER, codec="rle")
        restored = ColumnBlock.from_bytes(block.to_bytes())
        assert restored.codec == "rle"
        assert np.array_equal(restored.values(), values)
        assert restored.min_value == block.min_value

    def test_wire_bad_magic(self):
        with pytest.raises(StorageError):
            ColumnBlock.from_bytes(b"XXXX" + b"\x00" * 64)

    def test_validity_preserved_through_wire(self):
        mask = np.array([True, False, True])
        block = ColumnBlock.from_values(
            np.array([1.0, 0.0, 3.0]), SqlType.FLOAT, validity=mask
        )
        restored = ColumnBlock.from_bytes(block.to_bytes())
        assert np.array_equal(restored.validity_mask(), mask)

    def test_compressed_size_positive(self):
        block = ColumnBlock.from_values(np.arange(10), SqlType.INTEGER)
        assert block.compressed_size > 0


class TestRowGroup:
    def make_schema(self):
        return [
            ColumnSchema("a", SqlType.INTEGER),
            ColumnSchema("b", SqlType.FLOAT),
        ]

    def test_from_arrays_and_read(self):
        schema = self.make_schema()
        group = RowGroup.from_arrays(
            schema, {"a": np.arange(5), "b": np.linspace(0, 1, 5)}
        )
        assert group.row_count == 5
        decoded = group.read(["b"])
        assert np.allclose(decoded["b"], np.linspace(0, 1, 5))

    def test_missing_column_rejected(self):
        with pytest.raises(StorageError):
            RowGroup.from_arrays(self.make_schema(), {"a": np.arange(5)})

    def test_ragged_columns_rejected(self):
        with pytest.raises(StorageError):
            RowGroup.from_arrays(
                self.make_schema(), {"a": np.arange(5), "b": np.arange(4.0)}
            )

    def test_unknown_column_read_rejected(self):
        group = RowGroup.from_arrays(
            self.make_schema(), {"a": np.arange(2), "b": np.arange(2.0)}
        )
        with pytest.raises(StorageError):
            group.read(["missing"])

    def test_empty_schema_rejected(self):
        with pytest.raises(StorageError):
            RowGroup.from_arrays([], {})


class TestSegmentFile:
    def make_schema(self):
        return [
            ColumnSchema("id", SqlType.INTEGER),
            ColumnSchema("value", SqlType.FLOAT),
            ColumnSchema("label", SqlType.VARCHAR),
        ]

    def write_file(self, path, rowgroups=3, rows=100):
        schema = self.make_schema()
        with SegmentFileWriter(path, schema) as writer:
            for g in range(rowgroups):
                writer.append(RowGroup.from_arrays(schema, {
                    "id": np.arange(rows) + g * rows,
                    "value": np.linspace(0, 1, rows) + g,
                    "label": np.asarray([f"row{g}_{i}" for i in range(rows)],
                                        dtype=object),
                }))
        return SegmentFile(path)

    def test_roundtrip(self, tmp_path):
        segment = self.write_file(tmp_path / "seg.bin")
        assert segment.rowgroup_count == 3
        assert segment.row_count == 300
        group = segment.read_rowgroup(1, ["id", "label"])
        assert group.read()["id"][0] == 100
        assert group.read()["label"][0] == "row1_0"

    def test_column_subset_read(self, tmp_path):
        segment = self.write_file(tmp_path / "seg.bin")
        block = segment.read_block(0, "value")
        assert block.row_count == 100

    def test_iter_rowgroups_order(self, tmp_path):
        segment = self.write_file(tmp_path / "seg.bin")
        starts = [g.read(["id"])["id"][0] for g in segment.iter_rowgroups(["id"])]
        assert starts == [0, 100, 200]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            SegmentFile(tmp_path / "absent.bin")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "seg.bin"
        self.write_file(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError):
            SegmentFile(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "seg.bin"
        self.write_file(path)
        data = bytearray(path.read_bytes())
        data[:5] = b"WRONG"
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            SegmentFile(path)

    def test_out_of_range_rowgroup(self, tmp_path):
        segment = self.write_file(tmp_path / "seg.bin")
        with pytest.raises(StorageError):
            segment.read_block(9, "id")

    def test_unknown_column(self, tmp_path):
        segment = self.write_file(tmp_path / "seg.bin")
        with pytest.raises(StorageError):
            segment.read_block(0, "nope")

    def test_double_close_is_safe(self, tmp_path):
        schema = self.make_schema()
        writer = SegmentFileWriter(tmp_path / "seg.bin", schema)
        writer.close()
        writer.close()

    def test_append_after_close_rejected(self, tmp_path):
        schema = self.make_schema()
        writer = SegmentFileWriter(tmp_path / "seg.bin", schema)
        writer.close()
        with pytest.raises(StorageError):
            writer.append(RowGroup.from_arrays(schema, {
                "id": np.arange(1), "value": np.zeros(1),
                "label": np.asarray(["x"], dtype=object),
            }))
