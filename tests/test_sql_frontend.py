"""Tests for the SQL lexer, parser, and expression evaluator."""

import numpy as np
import pytest

from repro.errors import SqlAnalysisError, SqlSyntaxError
from repro.vertica import expressions
from repro.vertica.sql import ast, parse, parse_expression, tokenize
from repro.vertica.sql.lexer import TokenType


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:3]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:3])

    def test_identifiers_preserve_case(self):
        token = tokenize("MyTable")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "MyTable"

    def test_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.type is TokenType.IDENT
        assert token.value == "Weird Name"

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    @pytest.mark.parametrize("text", ["42", "3.14", "1e6", "2.5E-3", ".5"])
    def test_numbers(self, text):
        token = tokenize(text)[0]
        assert token.type is TokenType.NUMBER
        assert token.value == text

    def test_two_char_operators(self):
        values = [t.value for t in tokenize("a <= b >= c <> d != e")]
        assert "<=" in values and ">=" in values and "<>" in values and "!=" in values

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n 1")
        assert [t.value for t in tokens[:2]] == ["SELECT", "1"]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_eof_token_terminates(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestExpressionParsing:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a OR b AND c")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_unary_minus(self):
        expr = parse_expression("-x * 2")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_between_desugars(self):
        expr = parse_expression("x BETWEEN 1 AND 5")
        assert expr.op == "AND"
        assert expr.left.op == ">="
        assert expr.right.op == "<="

    def test_is_null(self):
        expr = parse_expression("x IS NULL")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "is_null"

    def test_is_not_null(self):
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "NOT"

    def test_function_call(self):
        expr = parse_expression("power(x, 2)")
        assert isinstance(expr, ast.FunctionCall)
        assert len(expr.args) == 2

    def test_literals(self):
        assert parse_expression("42").value == 42
        assert parse_expression("4.5").value == 4.5
        assert parse_expression("'hi'").value == "hi"
        assert parse_expression("TRUE").value is True
        assert parse_expression("NULL").value is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_expression("1 + 2 extra stuff everywhere (")


class TestStatementParsing:
    def test_basic_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert [i.output_name for i in stmt.items] == ["a", "b"]
        assert stmt.table == "t"

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.select_star

    def test_alias_forms(self):
        stmt = parse("SELECT a AS x, b y FROM t")
        assert [i.output_name for i in stmt.items] == ["x", "y"]

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, COUNT(*) AS n FROM t WHERE b > 0 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY n DESC, a LIMIT 10"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.order_by[1].ascending is True
        assert stmt.limit == 10

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        agg = stmt.items[0].expr
        assert isinstance(agg, ast.AggregateCall)
        assert agg.arg is None

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT a) FROM t")
        assert stmt.items[0].expr.distinct

    def test_udtf_with_parameters_and_partition_best(self):
        stmt = parse(
            "SELECT glmPredict(a, b USING PARAMETERS model='m1', type='link') "
            "OVER (PARTITION BEST) FROM t"
        )
        assert stmt.udtf is not None
        assert stmt.udtf.name == "glmpredict"
        assert stmt.udtf.parameters == {"model": "m1", "type": "link"}
        assert stmt.udtf.partition.kind is ast.PartitionKind.BEST

    def test_udtf_partition_by(self):
        stmt = parse("SELECT f(a) OVER (PARTITION BY k) FROM t")
        assert stmt.udtf.partition.kind is ast.PartitionKind.BY_COLUMN

    def test_udtf_partition_nodes(self):
        stmt = parse("SELECT f(a) OVER (PARTITION NODES) FROM t")
        assert stmt.udtf.partition.kind is ast.PartitionKind.NODES

    def test_udtf_numeric_parameter(self):
        stmt = parse("SELECT f(a USING PARAMETERS n=3, x=-1.5) OVER () FROM t")
        assert stmt.udtf.parameters == {"n": 3, "x": -1.5}

    def test_udtf_mixed_with_columns_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a, f(b) OVER (PARTITION BEST) FROM t")

    def test_create_table_segmented(self):
        stmt = parse(
            "CREATE TABLE t (a INT, b DOUBLE PRECISION, s VARCHAR) "
            "SEGMENTED BY HASH(a) ALL NODES"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert [c.name for c in stmt.columns] == ["a", "b", "s"]
        assert stmt.columns[1].type_name == "DOUBLE PRECISION"
        assert stmt.segmentation.kind == "hash"
        assert stmt.segmentation.column == "a"

    def test_create_table_unsegmented(self):
        stmt = parse("CREATE TABLE t (a INT) UNSEGMENTED")
        assert stmt.segmentation.kind == "unsegmented"

    def test_insert_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 2.5, 'x'), (-3, 0, NULL)")
        assert isinstance(stmt, ast.Insert)
        assert stmt.rows == [[1, 2.5, "x"], [-3, 0, None]]

    def test_insert_non_literal_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO t VALUES (a + 1)")

    def test_drop_table(self):
        stmt = parse("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable)
        assert not stmt.if_exists

    def test_drop_table_if_exists(self):
        stmt = parse("DROP TABLE IF EXISTS t;")
        assert stmt.if_exists

    def test_trailing_semicolon_ok(self):
        parse("SELECT a FROM t;")

    def test_garbage_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("VACUUM FULL everything")


class TestExpressionEvaluation:
    def batch(self):
        return {
            "a": np.array([1.0, 2.0, 3.0, 4.0]),
            "b": np.array([10, 20, 30, 40], dtype=np.int64),
            "s": np.array(["x", "y", "x", "z"], dtype=object),
        }

    def eval(self, text):
        return expressions.evaluate(parse_expression(text), self.batch())

    def test_arithmetic(self):
        assert np.allclose(self.eval("a * 2 + b"), [12, 24, 36, 48])

    def test_division_is_float(self):
        assert np.allclose(self.eval("b / 4"), [2.5, 5.0, 7.5, 10.0])

    def test_modulo(self):
        assert np.array_equal(self.eval("b % 3"), [1, 2, 0, 1])

    def test_comparisons(self):
        assert np.array_equal(self.eval("a > 2"), [False, False, True, True])
        assert np.array_equal(self.eval("a <> 2"), [True, False, True, True])

    def test_boolean_logic(self):
        assert np.array_equal(
            self.eval("a > 1 AND b < 40"), [False, True, True, False]
        )
        assert np.array_equal(
            self.eval("NOT (a > 1 OR b = 10)"), [False, False, False, False]
        )

    def test_string_equality(self):
        assert np.array_equal(self.eval("s = 'x'"), [True, False, True, False])

    def test_string_concat(self):
        assert list(self.eval("s || '!'")) == ["x!", "y!", "x!", "z!"]

    def test_functions(self):
        assert np.allclose(self.eval("sqrt(a * a)"), [1, 2, 3, 4])
        assert np.allclose(self.eval("abs(0 - a)"), [1, 2, 3, 4])
        assert np.allclose(self.eval("power(a, 2)"), [1, 4, 9, 16])
        assert np.allclose(self.eval("greatest(a, 2.5)"), [2.5, 2.5, 3, 4])

    def test_string_functions(self):
        assert list(self.eval("upper(s)")) == ["X", "Y", "X", "Z"]
        assert np.array_equal(self.eval("length(s)"), [1, 1, 1, 1])

    def test_unknown_column_error_lists_available(self):
        with pytest.raises(SqlAnalysisError, match="available"):
            self.eval("missing + 1")

    def test_unknown_function(self):
        with pytest.raises(SqlAnalysisError):
            self.eval("frobnicate(a)")

    def test_aggregate_outside_context_rejected(self):
        with pytest.raises(SqlAnalysisError):
            expressions.evaluate(
                ast.AggregateCall("SUM", ast.ColumnRef("a")), self.batch()
            )

    def test_columns_referenced(self):
        expr = parse_expression("a + power(b, 2) > length(s)")
        assert expressions.columns_referenced(expr) == {"a", "b", "s"}

    def test_is_null_on_floats(self):
        batch = {"x": np.array([1.0, np.nan])}
        out = expressions.evaluate(parse_expression("x IS NULL"), batch)
        assert list(out) == [False, True]

    def test_coalesce(self):
        batch = {"x": np.array([1.0, np.nan, 3.0])}
        out = expressions.evaluate(parse_expression("coalesce(x, 0)"), batch)
        assert np.allclose(out, [1.0, 0.0, 3.0])
