"""Property-based tests for the extension features: joins, repartition,
CSV roundtrips, and the LIKE matcher."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.dr import repartition, start_session
from repro.vertica import VerticaCluster, copy_from_csv, write_csv
from repro.vertica.expressions import _like_to_regex

common_settings = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestJoinProperties:
    @common_settings
    @given(
        npst.arrays(np.int64, st.integers(1, 120),
                    elements=st.integers(0, 15)),
        npst.arrays(np.int64, st.integers(1, 120),
                    elements=st.integers(0, 15)),
    )
    def test_inner_join_count_matches_numpy(self, left_keys, right_keys):
        cluster = VerticaCluster(node_count=2)
        cluster.create_table_like("l", {"k": left_keys})
        cluster.bulk_load("l", {"k": left_keys})
        cluster.create_table_like("r", {"k": right_keys})
        cluster.bulk_load("r", {"k": right_keys})
        count = cluster.sql(
            "SELECT COUNT(*) FROM l a JOIN r b ON a.k = b.k").scalar()
        counts_left = np.bincount(left_keys, minlength=16)
        counts_right = np.bincount(right_keys, minlength=16)
        assert count == int(np.sum(counts_left * counts_right))

    @common_settings
    @given(
        npst.arrays(np.int64, st.integers(1, 80), elements=st.integers(0, 10)),
        npst.arrays(np.int64, st.integers(1, 80), elements=st.integers(0, 10)),
    )
    def test_left_join_preserves_every_left_row(self, left_keys, right_keys):
        cluster = VerticaCluster(node_count=2)
        cluster.create_table_like("l", {"k": left_keys})
        cluster.bulk_load("l", {"k": left_keys})
        cluster.create_table_like("r", {"k": right_keys})
        cluster.bulk_load("r", {"k": right_keys})
        count = cluster.sql(
            "SELECT COUNT(*) FROM l a LEFT JOIN r b ON a.k = b.k").scalar()
        counts_right = np.bincount(right_keys, minlength=16)
        expected = int(np.sum(np.maximum(counts_right[left_keys], 1)))
        assert count == expected


class TestRepartitionProperties:
    @common_settings
    @given(st.integers(1, 5), st.integers(1, 6), st.integers(0, 60))
    def test_repartition_preserves_content_and_order(
            self, source_parts, target_parts, rows):
        with start_session(node_count=2, instances_per_node=1) as session:
            array = session.darray(npartitions=source_parts)
            data = np.arange(rows * 2, dtype=np.float64).reshape(rows, 2)
            array.fill_from(data)
            result = repartition(array, target_parts)
            assert result.npartitions == target_parts
            assert np.array_equal(result.collect(), data)

    @common_settings
    @given(st.integers(1, 6), st.integers(10, 80))
    def test_repartition_balances_within_one_row(self, target_parts, rows):
        with start_session(node_count=2, instances_per_node=1) as session:
            array = session.darray(npartitions=2)
            data = np.ones((rows, 1))
            array.fill_partition(0, data[: rows - 1])
            array.fill_partition(1, data[rows - 1:])
            result = repartition(array, target_parts)
            sizes = [shape[0] for shape in result.partition_shapes()]
            assert max(sizes) - min(sizes) <= 1


class TestCsvProperties:
    @common_settings
    @given(
        ints=npst.arrays(np.int64, st.integers(1, 60),
                         elements=st.integers(-10**9, 10**9)),
        floats=npst.arrays(np.float64, st.integers(1, 60),
                           elements=st.floats(-1e9, 1e9, allow_nan=False)),
    )
    def test_numeric_roundtrip(self, tmp_path_factory, ints, floats):
        size = min(len(ints), len(floats))
        columns = {"a": ints[:size], "b": floats[:size]}
        path = tmp_path_factory.mktemp("csv") / "data.csv"
        write_csv(path, columns)
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE t (a INT, b FLOAT)")
        assert copy_from_csv(cluster, "t", path) == size
        table = cluster.catalog.get_table("t").scan_all(["a", "b"])
        assert sorted(table["a"]) == sorted(columns["a"].tolist())
        assert np.allclose(np.sort(table["b"]), np.sort(columns["b"]))

    @common_settings
    @given(strings=st.lists(
        st.text(alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
                max_size=20),
        min_size=1, max_size=40,
    ))
    def test_varchar_roundtrip(self, tmp_path_factory, strings):
        # csv cannot represent the distinction between "" and null; the
        # loader maps the null token ("") to None.
        strings = [s if s else "x" for s in strings]
        # Normalize: csv readers fold \\r\\n; avoid bare carriage returns.
        strings = [s.replace("\r", " ") for s in strings]
        columns = {"s": np.asarray(strings, dtype=object)}
        path = tmp_path_factory.mktemp("csv") / "data.csv"
        write_csv(path, columns)
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE t (s VARCHAR)")
        assert copy_from_csv(cluster, "t", path) == len(strings)
        table = cluster.catalog.get_table("t").scan_all(["s"])
        assert sorted(table["s"]) == sorted(strings)


class TestLikeProperties:
    @common_settings
    @given(st.text(alphabet="abc.*+[](){}|\\^$?", max_size=12))
    def test_literal_patterns_match_exactly_themselves(self, text):
        regex = _like_to_regex(text)
        assert regex.fullmatch(text) is not None
        # A string that differs in length cannot match a wildcard-free pattern.
        assert regex.fullmatch(text + "extra") is None

    @common_settings
    @given(st.text(alphabet="abcd", max_size=10),
           st.text(alphabet="abcd", max_size=10))
    def test_percent_matches_any_run(self, prefix, suffix):
        regex = _like_to_regex(f"{prefix}%{suffix}")
        assert regex.fullmatch(prefix + "anything" + suffix) is not None
        assert regex.fullmatch(prefix + suffix) is not None

    @common_settings
    @given(st.text(alphabet="abcd", min_size=1, max_size=10))
    def test_underscore_matches_exactly_one(self, text):
        pattern = "_" * len(text)
        regex = _like_to_regex(pattern)
        assert regex.fullmatch(text) is not None
        assert regex.fullmatch(text + "a") is None
        if len(text) > 1:
            assert regex.fullmatch(text[:-1]) is None
