"""Tests for the YARN-style resource manager, schedulers, and cgroups."""

import pytest

from repro.dr import start_session
from repro.errors import ResourceError
from repro.yarn import (
    Cgroup,
    Container,
    ContainerState,
    NodeCapacity,
    ResourceManager,
    make_scheduler,
)


def make_rm(nodes=4, cores=8, memory=16 << 30, policy="fifo", queues=None):
    return ResourceManager(
        [NodeCapacity(cores, memory) for _ in range(nodes)],
        policy=policy,
        queue_capacities=queues,
    )


class TestAllocation:
    def test_simple_grant(self):
        rm = make_rm()
        app = rm.submit_application("app", [{"cores": 2, "memory_bytes": 1 << 30}])
        assert app.is_satisfied
        assert len(app.containers) == 1
        assert app.containers[0].state is ContainerState.RUNNING

    def test_locality_preference_honored(self):
        rm = make_rm()
        app = rm.submit_application("app", [
            {"cores": 1, "memory_bytes": 1 << 30, "preferred_node": i}
            for i in range(4)
        ])
        assert [c.node_index for c in app.containers] == [0, 1, 2, 3]
        assert app.locality_fraction() == 1.0

    def test_locality_falls_back_when_full(self):
        rm = make_rm(nodes=2, cores=4)
        rm.submit_application("hog", [
            {"cores": 4, "memory_bytes": 1 << 30, "preferred_node": 0}
        ])
        app = rm.submit_application("app", [
            {"cores": 2, "memory_bytes": 1 << 30, "preferred_node": 0}
        ])
        assert app.is_satisfied
        assert app.containers[0].node_index == 1
        assert app.locality_fraction() == 0.0

    def test_unsatisfiable_request_stays_pending(self):
        rm = make_rm(nodes=1, cores=4)
        app = rm.submit_application("big", [{"cores": 16, "memory_bytes": 1}])
        assert not app.is_satisfied
        assert rm.pending_requests() == 1

    def test_require_all_rolls_back(self):
        rm = make_rm(nodes=1, cores=4)
        with pytest.raises(ResourceError):
            rm.submit_application(
                "big",
                [{"cores": 3, "memory_bytes": 1}, {"cores": 3, "memory_bytes": 1}],
                require_all=True,
            )
        # Rollback must free what was granted.
        assert rm.utilization() == 0.0
        assert rm.pending_requests() == 0

    def test_release_frees_and_retries_pending(self):
        rm = make_rm(nodes=1, cores=4)
        first = rm.submit_application("first", [{"cores": 4, "memory_bytes": 1}])
        waiting = rm.submit_application("second", [{"cores": 4, "memory_bytes": 1}])
        assert not waiting.is_satisfied
        rm.release_application(first)
        assert waiting.is_satisfied

    def test_release_unknown_application_rejected(self):
        rm = make_rm()
        app = rm.submit_application("a", [{"cores": 1, "memory_bytes": 1}])
        rm.release_application(app)
        with pytest.raises(ResourceError):
            rm.release_application(app)

    def test_memory_constrains_placement(self):
        rm = make_rm(nodes=1, cores=8, memory=1 << 30)
        app = rm.submit_application("a", [{"cores": 1, "memory_bytes": 2 << 30}])
        assert not app.is_satisfied

    def test_utilization_tracks_cores(self):
        rm = make_rm(nodes=2, cores=4)
        assert rm.utilization() == 0.0
        rm.submit_application("a", [{"cores": 4, "memory_bytes": 1}])
        assert rm.utilization() == pytest.approx(0.5)

    def test_vertica_long_term_plus_dr_sessions(self):
        """The §6 pattern: DB holds long-term resources, DR sessions churn."""
        rm = make_rm(nodes=4, cores=8)
        database = rm.submit_application(
            "vertica",
            [{"cores": 4, "memory_bytes": 1 << 30, "preferred_node": i}
             for i in range(4)],
            queue="database",
        )
        for _ in range(3):
            dr_session = rm.submit_application(
                "dr-session",
                [{"cores": 2, "memory_bytes": 1 << 30, "preferred_node": i}
                 for i in range(4)],
                queue="analytics",
            )
            assert dr_session.is_satisfied
            rm.release_application(dr_session)
        assert database.is_satisfied
        assert rm.utilization() == pytest.approx(0.5)


class TestSchedulers:
    def test_factory(self):
        assert make_scheduler("fifo").name == "fifo"
        assert make_scheduler("capacity").name == "capacity"
        assert make_scheduler("fair").name == "fair"
        with pytest.raises(ResourceError):
            make_scheduler("lottery")

    def test_fair_prefers_least_allocated(self):
        rm = make_rm(nodes=1, cores=4, policy="fair")
        hungry = rm.submit_application("hungry", [{"cores": 3, "memory_bytes": 1}])
        assert hungry.is_satisfied
        # Two waiting apps: one empty-handed, one already holding cores.
        more_for_hungry = rm.submit_application(
            "hungry2", [{"cores": 2, "memory_bytes": 1}])
        newcomer = rm.submit_application("new", [{"cores": 2, "memory_bytes": 1}])
        rm.release_application(hungry)
        # Fair share: the newcomer (0 cores) should be served before hungry2
        # only if hungry2's owner had cores; both are fresh apps here, so
        # FIFO-by-allocation applies — both get served (4 cores free).
        assert more_for_hungry.is_satisfied and newcomer.is_satisfied

    def test_capacity_queue_shares(self):
        rm = make_rm(nodes=1, cores=4, policy="capacity",
                     queues={"db": 0.75, "ml": 0.25})
        db_app = rm.submit_application("db", [{"cores": 4, "memory_bytes": 1}],
                                       queue="db")
        ml_waiting = rm.submit_application("ml", [{"cores": 1, "memory_bytes": 1}],
                                           queue="ml")
        db_waiting = rm.submit_application("db2", [{"cores": 1, "memory_bytes": 1}],
                                           queue="db")
        assert not ml_waiting.is_satisfied and not db_waiting.is_satisfied
        rm.release_application(db_app)
        # With capacity shares, the under-served ml queue gets priority.
        assert ml_waiting.is_satisfied
        assert db_waiting.is_satisfied  # enough cores remained for both

    def test_capacity_rejects_nonpositive_shares(self):
        with pytest.raises(ResourceError):
            make_scheduler("capacity", {"a": 0.0})


class TestCgroups:
    def test_cpu_limit(self):
        cgroup = Cgroup(cores=2, memory_bytes=1 << 20)
        cgroup.acquire_cpu(2)
        with pytest.raises(ResourceError):
            cgroup.acquire_cpu(1)
        assert cgroup.cpu_throttles == 1
        cgroup.release_cpu(1)
        cgroup.acquire_cpu(1)

    def test_memory_limit_is_oom(self):
        cgroup = Cgroup(cores=1, memory_bytes=1000)
        cgroup.charge_memory(800)
        with pytest.raises(MemoryError):
            cgroup.charge_memory(300)
        assert cgroup.oom_kills == 1
        cgroup.uncharge_memory(500)
        cgroup.charge_memory(300)

    def test_over_release_rejected(self):
        cgroup = Cgroup(cores=1, memory_bytes=1)
        with pytest.raises(ResourceError):
            cgroup.release_cpu(1)

    def test_container_has_cgroup(self):
        container = Container(node_index=0, cores=2, memory_bytes=1 << 20,
                              application_id=1)
        assert container.cgroup.cores == 2
        container.start()
        assert container.state is ContainerState.RUNNING
        with pytest.raises(ResourceError):
            container.start()
        container.release()
        assert container.state is ContainerState.RELEASED

    def test_invalid_limits_rejected(self):
        with pytest.raises(ResourceError):
            Cgroup(cores=0, memory_bytes=1)
        with pytest.raises(ResourceError):
            NodeCapacity(cores=0, memory_bytes=1)


class TestSessionIntegration:
    def test_session_acquires_and_releases(self):
        rm = make_rm(nodes=2, cores=8)
        with start_session(node_count=2, instances_per_node=2, yarn=rm) as session:
            assert rm.utilization() > 0
            assert session.node_count == 2
        assert rm.utilization() == 0.0

    def test_session_prefers_colocated_nodes(self):
        rm = make_rm(nodes=3, cores=8)
        with start_session(node_count=3, instances_per_node=1, yarn=rm) as session:
            apps = [a for a in rm._applications.values()]
            assert len(apps) == 1
            assert apps[0].locality_fraction() == 1.0
            del session
