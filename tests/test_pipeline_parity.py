"""Streaming-vs-eager parity for the batch pipeline.

The streaming executor rebuilds scan, aggregate, and UDTF fan-out as a
rowgroup-granular, backpressured dataflow.  These tests pin it to the
eager materialize-everything semantics for every plan shape (same rows,
same order, same dtypes), and verify the two claims the refactor exists
for: bounded batches in flight under a small queue depth, and a strictly
lower peak of in-flight bytes than the eager path for the same transfer.

Float ``SUM``/``AVG`` columns compare with a tight tolerance rather than
exactly: the two modes fold ``np.sum`` over different chunk boundaries, so
results may differ in the last ulp.  Everything discrete compares bitwise.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import hpdglm
from repro.deploy import deploy_model
from repro.dr import start_session
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, VerticaCluster
from repro.vertica.executor import ResultSet
from repro.vertica.pipeline import PipelineConfig
from repro.vertica.udtf import TransformFunction
from repro.workloads import make_regression

NODE_COUNT = 3
ROUNDS = 3          # bulk loads per cluster -> row groups per segment
ROWS_PER_ROUND = 300


def make_columns(n: int, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "k": rng.integers(0, 10_000, n),
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "y": rng.normal(size=n),
    }


def build_cluster(mode: str, batch_rows: int = 64, queue_depth: int = 2,
                  rounds: int = ROUNDS, rows: int = ROWS_PER_ROUND,
                  sorted_keys: bool = False) -> VerticaCluster:
    """A 3-node cluster with ``pts`` loaded identically for either mode.

    ``sorted_keys`` loads each round with a disjoint ``k`` range so row
    groups carry tight zone maps and range predicates actually prune.
    """
    cluster = VerticaCluster(
        node_count=NODE_COUNT,
        pipeline=PipelineConfig(mode=mode, batch_rows=batch_rows,
                                queue_depth=queue_depth),
    )
    first = make_columns(rows, seed=7)
    cluster.create_table_like("pts", first, HashSegmentation("k"))
    for round_index in range(rounds):
        columns = make_columns(rows, seed=7 + round_index)
        if sorted_keys:
            columns["k"] = np.sort(
                np.random.default_rng(70 + round_index).integers(
                    round_index * 1_000, (round_index + 1) * 1_000, rows))
        cluster.bulk_load("pts", columns)
    return cluster


def assert_results_match(eager: ResultSet, streaming: ResultSet,
                         float_columns: tuple[str, ...] = ()) -> None:
    assert streaming.column_names == eager.column_names
    assert len(streaming) == len(eager)
    for name in eager.column_names:
        expected = eager.column(name)
        actual = streaming.column(name)
        assert actual.dtype == expected.dtype, name
        if name in float_columns:
            np.testing.assert_allclose(actual, expected,
                                       rtol=1e-9, atol=1e-12)
        else:
            assert np.array_equal(actual, expected), name


def run_both(query: str, float_columns: tuple[str, ...] = (),
             **build_kwargs) -> tuple[ResultSet, ResultSet]:
    eager = build_cluster("eager", **build_kwargs).sql(query)
    streaming = build_cluster("streaming", **build_kwargs).sql(query)
    assert_results_match(eager, streaming, float_columns)
    return eager, streaming


class TestScanParity:
    def test_plain_projection(self):
        eager, _ = run_both("SELECT k, a, b FROM pts")
        assert len(eager) == ROUNDS * ROWS_PER_ROUND

    def test_select_star(self):
        run_both("SELECT * FROM pts")

    def test_filter_and_expression(self):
        eager, _ = run_both("SELECT k, a + b AS s FROM pts WHERE k < 5000")
        assert 0 < len(eager) < ROUNDS * ROWS_PER_ROUND

    def test_order_by_limit_uses_streaming_topk(self):
        eager, _ = run_both(
            "SELECT k, a FROM pts ORDER BY k DESC, a LIMIT 17")
        assert len(eager) == 17

    def test_order_by_limit_with_ties_is_stable(self):
        # k % 4 has heavy ties; stable per-node trimming must reproduce the
        # eager tie order exactly.
        run_both("SELECT k % 4 AS g, a FROM pts ORDER BY g LIMIT 40")

    def test_limit_without_order_stops_early(self):
        eager, _ = run_both("SELECT k FROM pts LIMIT 25")
        assert len(eager) == 25

    def test_distinct(self):
        run_both("SELECT DISTINCT k % 16 AS g FROM pts ORDER BY g")

    def test_parity_under_zone_map_pruning(self):
        streaming = build_cluster("streaming", sorted_keys=True)
        eager = build_cluster("eager", sorted_keys=True)
        query = "SELECT k, a FROM pts WHERE k < 900"
        assert_results_match(eager.sql(query), streaming.sql(query))
        assert streaming.telemetry.get("rowgroups_pruned") > 0

    def test_empty_scan_keeps_schema_dtypes(self):
        """Zero surviving rows must not collapse every column to float64."""
        for mode in ("eager", "streaming"):
            result = build_cluster(mode).sql(
                "SELECT k, a, a + b AS s FROM pts WHERE k < 0 - 1")
            assert len(result) == 0
            assert result.column("k").dtype == np.dtype(np.int64)
            assert result.column("a").dtype == np.dtype(np.float64)
            assert result.column("s").dtype == np.dtype(np.float64)


class TestAggregateParity:
    def test_global_discrete_aggregates(self):
        run_both("SELECT COUNT(*) AS n, MIN(k) AS lo, MAX(k) AS hi FROM pts")

    def test_global_float_aggregates(self):
        run_both("SELECT SUM(a) AS s, AVG(y) AS m FROM pts",
                 float_columns=("s", "m"))

    def test_group_by_with_having_and_order(self):
        run_both(
            "SELECT k % 7 AS g, COUNT(*) AS n, SUM(a) AS s FROM pts "
            "GROUP BY g HAVING COUNT(*) > 10 ORDER BY g",
            float_columns=("s",))

    def test_filtered_aggregate(self):
        run_both(
            "SELECT COUNT(*) AS n, MAX(b) AS hi FROM pts WHERE k < 4000")

    def test_aggregate_over_zero_rows(self):
        for mode in ("eager", "streaming"):
            result = build_cluster(mode).sql(
                "SELECT COUNT(*) AS n, SUM(a) AS s FROM pts WHERE k < 0 - 1")
            assert result.column("n")[0] == 0


class _Doubler(TransformFunction):
    """Row-wise UDTF: output rows mirror input rows one-for-one."""

    name = "doubleUp"

    def process(self, ctx, args, params):
        first = next(iter(args.values()))
        return {"v": np.asarray(first, dtype=np.float64) * 2.0}


class _KeySum(TransformFunction):
    """Keyed UDTF with exact integer state: sums ``k`` per distinct key."""

    name = "keySum"

    def process(self, ctx, args, params):
        keys = np.asarray(args["k"], dtype=np.int64)
        uniq = np.unique(keys)
        totals = np.asarray(
            [int(keys[keys == value].sum()) for value in uniq],
            dtype=np.int64,
        )
        return {"k": uniq, "total": totals}


class TestUdtfParity:
    def _run(self, query, **build_kwargs):
        eager = build_cluster("eager", **build_kwargs)
        streaming = build_cluster("streaming", **build_kwargs)
        for cluster in (eager, streaming):
            cluster.register_udtf(_Doubler())
            cluster.register_udtf(_KeySum())
        eager_result = eager.sql(query)
        streaming_result = streaming.sql(query)
        assert_results_match(eager_result, streaming_result)
        return eager_result, streaming, eager

    def test_partition_nodes(self):
        result, _, _ = self._run(
            "SELECT doubleUp(a) OVER (PARTITION NODES) FROM pts")
        assert len(result) == ROUNDS * ROWS_PER_ROUND

    def test_partition_best(self):
        self._run("SELECT doubleUp(a) OVER (PARTITION BEST) FROM pts")

    def test_partition_best_with_filter(self):
        self._run(
            "SELECT doubleUp(a) OVER (PARTITION BEST) FROM pts "
            "WHERE k < 5000")

    def test_partition_by_key(self):
        result, streaming, eager = self._run(
            "SELECT keySum(k) OVER (PARTITION BY k) FROM pts")
        assert result.column("total").sum() == \
            build_cluster("eager").sql("SELECT SUM(k) AS s FROM pts").scalar()
        assert streaming.telemetry.get("udtf_instances") == \
            eager.telemetry.get("udtf_instances")

    def test_prediction_parity(self, session):
        data = make_regression(500, 3, seed=8)
        x = session.darray(npartitions=3)
        x.fill_from(data.features)
        y = session.darray(
            npartitions=3,
            worker_assignment=[x.worker_of(i) for i in range(3)],
        )
        boundaries = np.linspace(0, 500, 4).astype(int)
        for i in range(3):
            y.fill_partition(
                i, data.responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
        model = hpdglm(y, x)

        def score(mode):
            rng = np.random.default_rng(21)
            columns = {"k": rng.integers(0, 10_000, 600)}
            for j in range(3):
                columns[f"c{j}"] = rng.normal(size=600)
            cluster = VerticaCluster(
                node_count=NODE_COUNT,
                pipeline=PipelineConfig(mode=mode, batch_rows=64))
            cluster.create_table_like("scores", columns, HashSegmentation("k"))
            cluster.bulk_load("scores", columns)
            deploy_model(cluster, model, "reg")
            return cluster.sql(
                "SELECT glmPredict(c0, c1, c2 USING PARAMETERS model='reg') "
                "OVER (PARTITION BEST) FROM scores")

        eager, streaming = score("eager"), score("streaming")
        assert len(streaming) == 600
        np.testing.assert_allclose(
            streaming.column("prediction"), eager.column("prediction"),
            rtol=1e-12, atol=1e-12)


class _SlowWatcher(TransformFunction):
    """Consumes its stream slowly, recording the live-batch gauge."""

    name = "slowWatch"

    def __init__(self, telemetry):
        self.telemetry = telemetry
        self.peak_live_batches = 0.0

    def process(self, ctx, args, params):
        rows = len(next(iter(args.values()))) if args else 0
        return {"rows": np.asarray([rows], dtype=np.int64)}

    def process_stream(self, ctx, batches, params):
        total = 0
        for batch in batches:
            live = self.telemetry.get("pipeline_inflight_batches_now")
            self.peak_live_batches = max(self.peak_live_batches, live)
            time.sleep(0.002)  # let producers race ahead into the queues
            total += len(next(iter(batch.values())))
        return {"rows": np.asarray([total], dtype=np.int64)}


class TestBackpressure:
    def test_queue_depth_bounds_live_batches(self):
        queue_depth = 2
        cluster = build_cluster("streaming", batch_rows=32,
                                queue_depth=queue_depth)
        watcher = _SlowWatcher(cluster.telemetry)
        cluster.register_udtf(watcher)
        result = cluster.sql(
            "SELECT slowWatch(a) OVER (PARTITION NODES) FROM pts")
        assert result.column("rows").sum() == ROUNDS * ROWS_PER_ROUND

        total_batches = cluster.telemetry.get("batches_scanned")
        # Per node: queue_depth batches queued, one in the consumer's hands,
        # one in the producer/source hand-over.
        bound = NODE_COUNT * (queue_depth + 2)
        assert total_batches > bound  # the bound is actually exercised
        assert watcher.peak_live_batches <= bound
        assert cluster.telemetry.get(
            "pipeline_inflight_batches_peak") <= bound
        # Everything charged to the gauges was discharged.
        assert cluster.telemetry.get("pipeline_inflight_batches_now") == 0
        assert cluster.telemetry.get("pipeline_inflight_bytes_now") == 0

    def test_streaming_telemetry_counters(self):
        cluster = build_cluster("streaming", batch_rows=64)
        cluster.sql("SELECT k FROM pts")
        snapshot = cluster.telemetry.snapshot()
        assert snapshot["batches_scanned"] > NODE_COUNT
        assert snapshot["rows_streamed"] == ROUNDS * ROWS_PER_ROUND
        assert snapshot["peak_batch_bytes"] > 0
        assert snapshot["pipeline_inflight_bytes_peak"] > 0


class TestTransferParity:
    def test_darray_bit_identical_and_streaming_lowers_peak(self):
        """The acceptance bar: same wire bytes, same darray, strictly lower
        peak in-flight bytes when streaming the largest workload table."""

        def transfer(mode):
            cluster = build_cluster(mode, batch_rows=1024,
                                    rounds=5, rows=8_000)
            with start_session(node_count=NODE_COUNT,
                               instances_per_node=2) as session:
                darray = db2darray(cluster, "pts", ["a", "b", "y"],
                                   session, chunk_rows=4_096)
                collected = darray.collect()
                frames = session.telemetry.get("vft_frames_received")
            telemetry = cluster.telemetry.snapshot()
            return collected, frames, telemetry

        eager_data, eager_frames, eager_tel = transfer("eager")
        stream_data, stream_frames, stream_tel = transfer("streaming")

        assert np.array_equal(eager_data, stream_data)
        assert stream_frames == eager_frames > 0
        assert stream_tel["vft_bytes_sent"] == eager_tel["vft_bytes_sent"]

        eager_peak = eager_tel["pipeline_inflight_bytes_peak"]
        stream_peak = stream_tel["pipeline_inflight_bytes_peak"]
        assert 0 < stream_peak < eager_peak


class TestPipelineConfig:
    def test_eager_knob(self):
        cluster = build_cluster("eager")
        assert not cluster.pipeline.streaming
        assert len(cluster.sql("SELECT k FROM pts")) == ROUNDS * ROWS_PER_ROUND
        # Eager scans never touch the streaming row counter.
        assert cluster.telemetry.get("rows_streamed") == 0

    def test_invalid_config_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            PipelineConfig(mode="lazy")
        with pytest.raises(ExecutionError):
            PipelineConfig(batch_rows=0)
        with pytest.raises(ExecutionError):
            PipelineConfig(queue_depth=0)


class TestMutationTransferParity:
    """Transfers and predictions over *live* MVCC state — delete vectors
    that haven't been purged and WOS rows that haven't been moved out —
    must be bit-for-bit identical to a fresh table pre-materialized with
    the same surviving rows in the same order."""

    DELETE_BELOW = 3_000

    @staticmethod
    def _parked_mover():
        """Thresholds no test can hit, so WOS rows stay unflushed."""
        from repro.vertica.txn.mover import TupleMoverConfig

        return TupleMoverConfig(moveout_rows=1 << 30,
                                moveout_age_seconds=1e9)

    def _base_and_trickle(self):
        rng = np.random.default_rng(33)
        n = 1_200
        base = {
            "k": rng.integers(0, 10_000, n),
            "c0": rng.normal(size=n),
            "c1": rng.normal(size=n),
            "c2": rng.normal(size=n),
        }
        trickles = []
        for batch in range(3):
            m = 7
            trickles.append({
                "k": rng.integers(0, 10_000, m),
                "c0": rng.normal(size=m),
                "c1": rng.normal(size=m),
                "c2": rng.normal(size=m),
            })
        return base, trickles

    def _clusters(self):
        base, trickles = self._base_and_trickle()

        mutated = VerticaCluster(node_count=NODE_COUNT,
                                 mover=self._parked_mover())
        mutated.create_table_like("m", base, HashSegmentation("k"))
        mutated.bulk_load("m", base)
        mutated.sql(f"DELETE FROM m WHERE k < {self.DELETE_BELOW}")
        table = mutated.catalog.get_table("m")
        for batch in trickles:
            table.insert(batch, direct=False)

        # Preconditions: the mutations really are live, not materialized.
        assert sum(seg.wos_rows for seg in table.segments) == 21
        assert mutated.telemetry.get("delete_vector_rows_now") > 0

        keep = base["k"] >= self.DELETE_BELOW
        survivors = {name: array[keep] for name, array in base.items()}
        materialized = VerticaCluster(node_count=NODE_COUNT)
        materialized.create_table_like("m", base, HashSegmentation("k"))
        materialized.bulk_load("m", survivors)
        for batch in trickles:
            materialized.bulk_load("m", batch)
        return mutated, materialized

    def test_export_frames_bit_identical(self):
        mutated, materialized = self._clusters()

        def transfer(cluster):
            with start_session(node_count=NODE_COUNT,
                               instances_per_node=2) as session:
                darray = db2darray(cluster, "m", ["c0", "c1", "c2"],
                                   session, chunk_rows=256)
                collected = darray.collect()
                frames = session.telemetry.get("vft_frames_received")
            return collected, frames, cluster.telemetry.snapshot()

        live_data, live_frames, live_tel = transfer(mutated)
        flat_data, flat_frames, flat_tel = transfer(materialized)

        assert np.array_equal(live_data, flat_data)
        assert live_frames == flat_frames > 0
        assert live_tel["vft_bytes_sent"] == flat_tel["vft_bytes_sent"]
        assert live_tel["vft_rows_sent"] == flat_tel["vft_rows_sent"]
        # The transfer itself must not have flushed or purged anything.
        table = mutated.catalog.get_table("m")
        assert sum(seg.wos_rows for seg in table.segments) == 21
        assert mutated.telemetry.get("delete_vector_rows_now") > 0

    def test_prediction_udtf_parity_over_live_mutations(self):
        from repro.algorithms import KMeansModel

        mutated, materialized = self._clusters()
        model = KMeansModel(
            centers=np.asarray([[0.5, 0.5, 0.5], [-0.5, -0.5, -0.5]]),
            inertia=0.0, iterations=1, converged=True,
            n_observations=2, cluster_sizes=np.asarray([1, 1]),
        )
        query = ("SELECT kmeansPredict(c0, c1, c2 "
                 "USING PARAMETERS model='km') "
                 "OVER (PARTITION BEST) FROM m")
        results = []
        for cluster in (mutated, materialized):
            deploy_model(cluster, model, "km")
            results.append(cluster.sql(query))
        assert_results_match(results[1], results[0])
        assert len(results[0]) == len(
            materialized.sql("SELECT k FROM m"))


class TestResultSetRows:
    def test_rows_materialize_python_scalars(self):
        result = build_cluster("streaming").sql("SELECT k, a FROM pts LIMIT 3")
        rows = result.rows()
        assert len(rows) == 3
        for key, value in rows:
            assert isinstance(key, int) and not isinstance(key, np.integer)
            assert isinstance(value, float)
