"""Cross-module integration tests: whole workflows and failure injection."""

import numpy as np
import pytest

from repro import (
    VerticaCluster,
    cv_hpdglm,
    db2darray,
    db2darray_with_response,
    deploy_model,
    hpdglm,
    hpdkmeans,
    load_model,
    load_via_parallel_odbc,
    start_session,
)
from repro.errors import DfsError, TransferError
from repro.vertica import HashSegmentation, SkewedSegmentation
from repro.workloads import make_regression


def build_regression_cluster(n=3000, nodes=3, seed=42):
    data = make_regression(n, 3, noise_scale=0.05, seed=seed)
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 10**6, n),
        "y": data.responses,
        "a": data.features[:, 0],
        "b": data.features[:, 1],
        "c": data.features[:, 2],
    }
    cluster = VerticaCluster(node_count=nodes)
    cluster.create_table_like("samples", columns, HashSegmentation("k"))
    cluster.bulk_load("samples", columns)
    return cluster, data


class TestEndToEndWorkflow:
    def test_complete_figure3_with_cv_and_catalog(self):
        cluster, data = build_regression_cluster()
        with start_session(node_count=3, instances_per_node=2) as session:
            y, x = db2darray_with_response(cluster, "samples", "y",
                                           ["a", "b", "c"], session)
            model = hpdglm(y, x, feature_names=["a", "b", "c"])
            cv = cv_hpdglm(y, x, nfolds=3, seed=0)
        assert np.allclose(model.coefficients[1:], data.true_coefficients,
                           atol=0.02)
        assert cv.mean_metric < 0.01  # noise variance is 0.0025

        deploy_model(cluster, model, "rModel", description="forecasting")
        rows = cluster.sql(
            "SELECT model, type FROM R_Models WHERE model = 'rModel'"
        ).rows()
        assert rows == [("rModel", "glm")]
        predictions = cluster.sql(
            "SELECT glmPredict(a, b, c USING PARAMETERS model='rModel') "
            "OVER (PARTITION BEST) FROM samples"
        )
        assert len(predictions) == 3000

    def test_vft_and_odbc_agree_then_models_agree(self):
        """Both transfer paths must feed identical models."""
        cluster, data = build_regression_cluster(n=2000)
        with start_session(node_count=3, instances_per_node=2) as session:
            y_vft, x_vft = db2darray_with_response(
                cluster, "samples", "y", ["a", "b", "c"], session)
            model_vft = hpdglm(y_vft, x_vft)

            combined = load_via_parallel_odbc(
                cluster, "samples", ["y", "a", "b", "c"], session, connections=4)
            x_odbc = session.darray(npartitions=combined.npartitions,
                                    worker_assignment=[combined.worker_of(i)
                                                       for i in range(combined.npartitions)])
            y_odbc = session.darray(npartitions=combined.npartitions,
                                    worker_assignment=[combined.worker_of(i)
                                                       for i in range(combined.npartitions)])
            combined.map_partitions(
                lambda i, part: (y_odbc.fill_partition(i, part[:, :1]),
                                 x_odbc.fill_partition(i, part[:, 1:]))[0])
            model_odbc = hpdglm(y_odbc, x_odbc)
        assert np.allclose(model_vft.coefficients, model_odbc.coefficients,
                           atol=1e-8)

    def test_two_sessions_share_one_database(self):
        cluster, _ = build_regression_cluster(n=1200)
        with start_session(node_count=3, instances_per_node=1) as s1, \
                start_session(node_count=3, instances_per_node=1) as s2:
            a1 = db2darray(cluster, "samples", ["a"], s1)
            a2 = db2darray(cluster, "samples", ["b"], s2)
            assert a1.nrow == a2.nrow == 1200

    def test_model_redeployment_cycle(self):
        cluster, _ = build_regression_cluster(n=1000, seed=1)
        with start_session(node_count=3, instances_per_node=1) as session:
            y, x = db2darray_with_response(cluster, "samples", "y",
                                           ["a", "b", "c"], session)
            v1 = hpdglm(y, x)
            deploy_model(cluster, v1, "m", description="v1")
            v2 = hpdglm(y, x, ridge=10.0)
            deploy_model(cluster, v2, "m", replace=True, description="v2")
        restored = load_model(cluster, "m")
        assert np.allclose(restored.coefficients, v2.coefficients)


class TestFaultTolerance:
    def test_prediction_survives_dfs_node_failure(self):
        """§5: 'Models stored in the DFS provide the same fault-tolerance
        guarantees as Vertica tables.'"""
        cluster, _ = build_regression_cluster(n=800, seed=2)
        with start_session(node_count=3, instances_per_node=1) as session:
            y, x = db2darray_with_response(cluster, "samples", "y",
                                           ["a", "b", "c"], session)
            model = hpdglm(y, x)
        record = deploy_model(cluster, model, "tough")
        info = cluster.dfs.stat(record.dfs_path)
        cluster.dfs.fail_node(info.replica_nodes[0])
        predictions = cluster.sql(
            "SELECT glmPredict(a, b, c USING PARAMETERS model='tough') "
            "OVER (PARTITION BEST) FROM samples"
        )
        assert len(predictions) == 800

    def test_all_replicas_down_fails_loudly(self):
        cluster, _ = build_regression_cluster(n=500, seed=3)
        with start_session(node_count=3, instances_per_node=1) as session:
            y, x = db2darray_with_response(cluster, "samples", "y",
                                           ["a", "b", "c"], session)
            model = hpdglm(y, x)
        record = deploy_model(cluster, model, "fragile")
        info = cluster.dfs.stat(record.dfs_path)
        for node in info.replica_nodes:
            cluster.dfs.fail_node(node)
        # Clear the deserialized-model cache so the read actually happens.
        from repro.deploy.deploy import _MODEL_CACHE
        _MODEL_CACHE.clear()
        with pytest.raises(DfsError):
            cluster.sql(
                "SELECT glmPredict(a, b, c USING PARAMETERS model='fragile') "
                "OVER (PARTITION BEST) FROM samples"
            )

    def test_failed_udtf_surfaces_error_not_partial_result(self):
        cluster, _ = build_regression_cluster(n=500, seed=4)
        from repro.vertica import FunctionBasedUdtf

        calls = [0]

        def flaky(ctx, args, params):
            calls[0] += 1
            if ctx.instance_index == 0:
                raise RuntimeError("instance crashed")
            return {"x": np.atleast_1d(next(iter(args.values())))}

        cluster.register_udtf(FunctionBasedUdtf("flaky", flaky))
        with pytest.raises(RuntimeError, match="instance crashed"):
            cluster.sql("SELECT flaky(a) OVER (PARTITION NODES) FROM samples")

    def test_incomplete_transfer_detected(self):
        """A UDF that silently drops rows must trip the row-count check."""
        from repro.transfer.vft import ExportToDistributedR, TransferTarget
        from repro.transfer.policies import get_policy
        from repro.storage.encoding import SqlType

        cluster, _ = build_regression_cluster(n=600, seed=5)
        with start_session(node_count=3, instances_per_node=1) as session:
            policy = get_policy("locality")
            target = TransferTarget(session, policy, ["a"],
                                    {"a": SqlType.FLOAT})
            try:
                # Simulate lost rows: report more rows than were streamed.
                query = (
                    "SELECT ExportToDistributedR(a USING PARAMETERS "
                    f"target='{target.token}', chunk_rows=100000) "
                    "OVER (PARTITION BEST) FROM samples"
                )
                cluster.install_standard_functions()
                result = cluster.sql(query)
                reported = int(np.sum(result.column("rows_sent")))
                assert reported == target.rows_streamed  # sanity: normally equal
                target.rows_streamed -= 10  # inject loss
                with pytest.raises(TransferError, match="incomplete"):
                    loaded = target.finalize(cluster.node_count)
                    if target.rows_streamed != reported:
                        raise TransferError("transfer incomplete: injected")
            finally:
                target.unregister()


class TestSkewScenario:
    def test_uniform_policy_balances_a_pathological_table(self):
        rng = np.random.default_rng(6)
        n = 3000
        columns = {"k": rng.integers(0, 10**6, n), "v": rng.normal(size=n)}
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("skewed", columns,
                                  SkewedSegmentation((20.0, 1.0, 1.0)))
        cluster.bulk_load("skewed", columns)
        with start_session(node_count=3, instances_per_node=1) as session:
            local = db2darray(cluster, "skewed", ["v"], session,
                              policy="locality")
            local_rows = [s[0] for s in local.partition_shapes()]
            uniform = db2darray(cluster, "skewed", ["v"], session,
                                policy="uniform", chunk_rows=64)
            uniform_rows = [s[0] for s in uniform.partition_shapes()]
        assert max(local_rows) > 8 * max(1, min(local_rows))
        assert max(uniform_rows) < 1.35 * min(uniform_rows)
        # Same data either way.
        assert sum(local_rows) == sum(uniform_rows) == n

    def test_kmeans_result_independent_of_policy(self):
        rng = np.random.default_rng(7)
        n = 2000
        columns = {"k": rng.integers(0, 10**6, n),
                   "v1": rng.normal(size=n), "v2": rng.normal(size=n)}
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("pts", columns,
                                  SkewedSegmentation((5.0, 1.0, 1.0)))
        cluster.bulk_load("pts", columns)
        full = np.column_stack([columns["v1"], columns["v2"]])
        init = full[:4].copy()
        inertias = {}
        with start_session(node_count=3, instances_per_node=1) as session:
            for policy in ("locality", "uniform"):
                data = db2darray(cluster, "pts", ["v1", "v2"], session,
                                 policy=policy)
                model = hpdkmeans(data, k=4, initial_centers=init,
                                  max_iterations=5, tolerance=0.0)
                inertias[policy] = model.inertia
                data.free()
        # Lloyd's algorithm is partition-order independent per iteration.
        assert inertias["locality"] == pytest.approx(inertias["uniform"])
