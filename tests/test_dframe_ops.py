"""Tests for DFrame relational operations and distributed GLM prediction."""

import numpy as np
import pytest

from repro.algorithms import hpdglm
from repro.errors import ModelError, PartitionError
from repro.workloads import make_regression


@pytest.fixture
def frame(session):
    f = session.dframe(npartitions=2)
    f.fill_partition(0, {
        "x": np.arange(5.0),
        "tag": np.asarray(["a", "b", "a", "b", "a"], dtype=object),
    })
    f.fill_partition(1, {
        "x": np.arange(5.0, 8.0),
        "tag": np.asarray(["a", "a", "b"], dtype=object),
    })
    return f


class TestDFrameSelect:
    def test_keeps_only_requested_columns(self, frame):
        selected = frame.select(["x"])
        assert selected.columns == ("x",)
        assert selected.nrow == 8

    def test_colocated(self, frame):
        selected = frame.select(["x"])
        for i in range(frame.npartitions):
            assert selected.worker_of(i) == frame.worker_of(i)

    def test_unknown_column_rejected(self, frame):
        with pytest.raises(PartitionError):
            frame.select(["missing"])


class TestDFrameFilter:
    def test_predicate_applies_per_row(self, frame):
        filtered = frame.filter(lambda p: p["x"] >= 4)
        assert filtered.nrow == 4
        assert np.all(filtered.column_array("x") >= 4)

    def test_filter_preserves_all_columns(self, frame):
        filtered = frame.filter(lambda p: p["x"] > 100)
        assert filtered.columns == frame.columns
        assert filtered.nrow == 0

    def test_string_predicate(self, frame):
        filtered = frame.filter(
            lambda p: np.asarray([t == "a" for t in p["tag"]]))
        assert filtered.nrow == 5


class TestDFrameWithColumn:
    def test_adds_column(self, frame):
        extended = frame.with_column("x2", lambda p: p["x"] ** 2)
        assert "x2" in extended.columns
        assert np.allclose(extended.column_array("x2"),
                           frame.column_array("x") ** 2)

    def test_replaces_column(self, frame):
        replaced = frame.with_column("x", lambda p: p["x"] * 0)
        assert np.all(replaced.column_array("x") == 0)

    def test_length_mismatch_rejected(self, frame):
        with pytest.raises(PartitionError, match="values"):
            frame.with_column("bad", lambda p: np.arange(2.0))


class TestDFrameToDarray:
    def test_numeric_stack(self, frame):
        extended = frame.with_column("x2", lambda p: p["x"] * 2)
        array = extended.to_darray(["x", "x2"])
        collected = array.collect()
        assert collected.shape == (8, 2)
        assert np.allclose(collected[:, 1], collected[:, 0] * 2)

    def test_colocation(self, frame):
        array = frame.to_darray(["x"])
        for i in range(frame.npartitions):
            assert array.worker_of(i) == frame.worker_of(i)

    def test_object_column_rejected(self, frame):
        with pytest.raises(PartitionError, match="numeric"):
            frame.to_darray(["tag"])

    def test_chained_pipeline(self, frame):
        array = (frame
                 .filter(lambda p: p["x"] > 1)
                 .with_column("y", lambda p: p["x"] + 10)
                 .select(["x", "y"])
                 .to_darray())
        assert array.shape == (6, 2)
        assert np.allclose(array.collect()[:, 1], array.collect()[:, 0] + 10)


class TestDistributedGlmPredict:
    def test_matches_local_predict(self, session):
        data = make_regression(800, 3, noise_scale=0.1, seed=70)
        x = session.darray(npartitions=3)
        x.fill_from(data.features)
        y = session.darray(npartitions=3,
                           worker_assignment=[x.worker_of(i) for i in range(3)])
        boundaries = np.linspace(0, 800, 4).astype(int)
        for i in range(3):
            y.fill_partition(
                i, data.responses[boundaries[i]:boundaries[i + 1]].reshape(-1, 1))
        model = hpdglm(y, x)
        distributed = model.predict_distributed(x)
        assert distributed.npartitions == x.npartitions
        assert np.allclose(distributed.collect().ravel(),
                           model.predict(data.features))
        for i in range(3):
            assert distributed.worker_of(i) == x.worker_of(i)

    def test_wrong_width_rejected(self, session):
        data = make_regression(100, 2, seed=71)
        x = session.darray(npartitions=2)
        x.fill_from(data.features)
        y = session.darray(npartitions=2,
                           worker_assignment=[x.worker_of(i) for i in range(2)])
        y.fill_from(data.responses.reshape(-1, 1))
        model = hpdglm(y, x)
        wide = session.darray(npartitions=2)
        wide.fill_from(np.ones((10, 5)))
        with pytest.raises(ModelError):
            model.predict_distributed(wide)
