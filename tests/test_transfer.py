"""Tests for VFT, the distribution policies, and the ODBC loaders."""

import numpy as np
import pytest

from repro.dr import start_session
from repro.errors import TransferError
from repro.storage.encoding import SqlType
from repro.transfer import (
    LocalityPreserving,
    UniformDistribution,
    db2darray,
    db2darray_with_response,
    db2dframe,
    get_policy,
    load_via_parallel_odbc,
    load_via_single_odbc,
)
from repro.transfer.streams import (
    decode_frames,
    encode_frame,
    frames_to_columns,
    frames_to_matrix,
)
from repro.vertica import HashSegmentation, SkewedSegmentation, VerticaCluster


class TestStreamProtocol:
    def types(self):
        return {"a": SqlType.FLOAT, "b": SqlType.INTEGER, "s": SqlType.VARCHAR}

    def test_frame_roundtrip(self):
        chunk = {
            "a": np.linspace(0, 1, 10),
            "b": np.arange(10),
            "s": np.asarray([f"v{i}" for i in range(10)], dtype=object),
        }
        frame = encode_frame(chunk, self.types())
        decoded = decode_frames(frame)
        assert len(decoded) == 1
        assert np.allclose(decoded[0]["a"], chunk["a"])
        assert list(decoded[0]["s"]) == list(chunk["s"])

    def test_multiple_frames_concatenate(self):
        types = {"a": SqlType.FLOAT}
        payload = b"".join(
            encode_frame({"a": np.full(3, float(i))}, types) for i in range(4)
        )
        matrix = frames_to_matrix(payload, ["a"])
        assert matrix.shape == (12, 1)
        assert np.allclose(matrix.ravel()[:3], 0.0)
        assert np.allclose(matrix.ravel()[-3:], 3.0)

    def test_matrix_column_order(self):
        types = {"a": SqlType.FLOAT, "b": SqlType.FLOAT}
        payload = encode_frame({"a": np.ones(2), "b": np.zeros(2)}, types)
        matrix = frames_to_matrix(payload, ["b", "a"])
        assert np.allclose(matrix[:, 0], 0.0)
        assert np.allclose(matrix[:, 1], 1.0)

    def test_columns_variant_keeps_strings(self):
        payload = encode_frame(
            {"s": np.asarray(["x", "y"], dtype=object)}, {"s": SqlType.VARCHAR}
        )
        out = frames_to_columns(payload, ["s"])
        assert list(out["s"]) == ["x", "y"]

    def test_truncated_payload_rejected(self):
        payload = encode_frame({"a": np.ones(5)}, {"a": SqlType.FLOAT})
        with pytest.raises(TransferError):
            decode_frames(payload[:-3])

    def test_missing_column_rejected(self):
        payload = encode_frame({"a": np.ones(2)}, {"a": SqlType.FLOAT})
        with pytest.raises(TransferError):
            frames_to_matrix(payload, ["a", "missing"])

    def test_empty_frame_rejected(self):
        with pytest.raises(TransferError):
            encode_frame({}, {})

    def test_empty_payload_gives_empty_matrix(self):
        assert frames_to_matrix(b"", ["a", "b"]).shape == (0, 2)


class TestPolicies:
    def test_lookup(self):
        assert isinstance(get_policy("locality"), LocalityPreserving)
        assert isinstance(get_policy("uniform"), UniformDistribution)
        with pytest.raises(TransferError):
            get_policy("random")

    def test_locality_requires_equal_counts(self):
        policy = LocalityPreserving()
        policy.validate(4, 4)
        with pytest.raises(TransferError):
            policy.validate(4, 5)

    def test_locality_maps_node_to_worker(self):
        policy = LocalityPreserving()
        for node in range(4):
            assert policy.target_worker(node, 0, 0, 4) == node
            assert policy.target_worker(node, 3, 7, 4) == node

    def test_uniform_any_topology(self):
        policy = UniformDistribution()
        policy.validate(4, 7)  # no exception

    def test_uniform_round_robins(self):
        policy = UniformDistribution()
        targets = [policy.target_worker(0, 2, chunk, 4) for chunk in range(8)]
        assert targets == [2, 3, 0, 1, 2, 3, 0, 1]

    def test_partition_counts(self):
        assert LocalityPreserving().partition_count(4, 4) == 4
        assert UniformDistribution().partition_count(4, 7) == 7


def make_loaded_cluster(n=1200, nodes=3, segmentation=None, seed=11):
    rng = np.random.default_rng(seed)
    columns = {
        "k": rng.integers(0, 100_000, n),
        "y": rng.normal(size=n),
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "name": np.asarray([f"row{i}" for i in range(n)], dtype=object),
    }
    cluster = VerticaCluster(node_count=nodes)
    cluster.create_table_like(
        "t", columns, segmentation or HashSegmentation("k")
    )
    cluster.bulk_load("t", columns)
    return cluster, columns


class TestDb2Darray:
    def test_locality_mirrors_segments(self):
        cluster, _ = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=2) as session:
            array = db2darray(cluster, "t", ["a", "b"], session)
            assert array.npartitions == cluster.node_count
            partition_rows = [shape[0] for shape in array.partition_shapes()]
            assert partition_rows == cluster.catalog.get_table("t").segment_row_counts()

    def test_loaded_values_match_table(self):
        cluster, columns = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=2) as session:
            array = db2darray(cluster, "t", ["a", "b"], session)
            loaded = array.collect()
            assert loaded.shape == (1200, 2)
            # Sets of values must match exactly (order differs by segment).
            assert np.allclose(np.sort(loaded[:, 0]), np.sort(columns["a"]))
            assert np.allclose(np.sort(loaded[:, 1]), np.sort(columns["b"]))

    def test_uniform_balances_skew(self):
        cluster, _ = make_loaded_cluster(
            segmentation=SkewedSegmentation((6.0, 1.0, 1.0))
        )
        with start_session(node_count=3, instances_per_node=2) as session:
            local = db2darray(cluster, "t", ["a"], session, policy="locality")
            local_rows = [s[0] for s in local.partition_shapes()]
            assert max(local_rows) > 3 * min(local_rows)  # skew preserved
            uniform = db2darray(cluster, "t", ["a"], session, policy="uniform",
                                chunk_rows=64)
            uniform_rows = [s[0] for s in uniform.partition_shapes()]
            assert max(uniform_rows) < 1.3 * min(uniform_rows)  # balanced
            assert sum(uniform_rows) == 1200

    def test_locality_topology_mismatch_rejected(self):
        cluster, _ = make_loaded_cluster(nodes=3)
        with start_session(node_count=2, instances_per_node=1) as session:
            with pytest.raises(TransferError):
                db2darray(cluster, "t", ["a"], session, policy="locality")

    def test_uniform_works_across_topologies(self):
        cluster, _ = make_loaded_cluster(nodes=3)
        with start_session(node_count=2, instances_per_node=2) as session:
            array = db2darray(cluster, "t", ["a"], session, policy="uniform")
            assert array.npartitions == 2
            assert array.nrow == 1200

    def test_varchar_rejected_for_darray(self):
        cluster, _ = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            with pytest.raises(TransferError, match="numeric"):
                db2darray(cluster, "t", ["a", "name"], session)

    def test_where_clause_filters(self):
        cluster, columns = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            array = db2darray(cluster, "t", ["a"], session, where="a > 0")
            assert array.nrow == int((columns["a"] > 0).sum())

    def test_empty_columns_rejected(self):
        cluster, _ = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            with pytest.raises(TransferError):
                db2darray(cluster, "t", [], session)

    def test_partitions_placed_on_matching_workers(self):
        cluster, _ = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            array = db2darray(cluster, "t", ["a"], session)
            for partition in range(array.npartitions):
                assert array.worker_of(partition) == partition

    def test_telemetry_counts_bytes(self):
        cluster, _ = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            db2darray(cluster, "t", ["a"], session)
            assert cluster.telemetry.get("vft_bytes_sent") > 0
            assert session.telemetry.get("vft_rows_received") == 1200


class TestDb2DFrame:
    def test_mixed_types(self):
        cluster, columns = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            frame = db2dframe(cluster, "t", ["name", "a"], session)
            assert frame.nrow == 1200
            collected = frame.collect()
            assert sorted(collected["name"]) == sorted(columns["name"])

    def test_response_helper_colocates(self):
        cluster, columns = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=2) as session:
            y, x = db2darray_with_response(cluster, "t", "y", ["a", "b"], session)
            assert y.npartitions == x.npartitions
            for i in range(y.npartitions):
                assert y.worker_of(i) == x.worker_of(i)
                assert y.partitions[i].nrow == x.partitions[i].nrow
            assert np.allclose(np.sort(y.collect().ravel()), np.sort(columns["y"]))

    def test_response_cannot_be_feature(self):
        cluster, _ = make_loaded_cluster()
        with start_session(node_count=3, instances_per_node=1) as session:
            with pytest.raises(TransferError):
                db2darray_with_response(cluster, "t", "y", ["y", "a"], session)


class TestOdbcLoaders:
    def test_single_loads_in_row_order(self):
        cluster, columns = make_loaded_cluster(n=300)
        with start_session(node_count=3, instances_per_node=1) as session:
            array = load_via_single_odbc(cluster, "t", ["a"], session)
            assert array.npartitions == 1
            # Global row order == insertion order.
            assert np.allclose(array.collect().ravel(), columns["a"])

    def test_parallel_covers_all_rows(self):
        cluster, columns = make_loaded_cluster(n=500)
        with start_session(node_count=3, instances_per_node=2) as session:
            array = load_via_parallel_odbc(cluster, "t", ["a", "b"], session,
                                           connections=6)
            assert array.npartitions == 6
            loaded = array.collect()
            assert loaded.shape == (500, 2)
            assert np.allclose(np.sort(loaded[:, 0]), np.sort(columns["a"]))

    def test_parallel_default_connection_count(self):
        cluster, _ = make_loaded_cluster(n=200)
        with start_session(node_count=3, instances_per_node=2) as session:
            array = load_via_parallel_odbc(cluster, "t", ["a"], session)
            assert array.npartitions == session.total_instances

    def test_parallel_contends_on_scan_slots(self):
        cluster, _ = make_loaded_cluster(n=600)
        with start_session(node_count=3, instances_per_node=4) as session:
            load_via_parallel_odbc(cluster, "t", ["a"], session, connections=12)
        # 12 concurrent range queries against 4 scan slots/node must queue.
        assert any(node.peak_scan_wait_depth >= 1 for node in cluster.nodes)

    def test_vft_and_odbc_load_identical_data(self):
        cluster, _ = make_loaded_cluster(n=400)
        with start_session(node_count=3, instances_per_node=2) as session:
            via_vft = db2darray(cluster, "t", ["a", "b"], session)
            via_odbc = load_via_parallel_odbc(cluster, "t", ["a", "b"], session,
                                              connections=4)
            assert np.allclose(
                np.sort(via_vft.collect(), axis=0),
                np.sort(via_odbc.collect(), axis=0),
            )

    def test_unknown_column_rejected(self):
        cluster, _ = make_loaded_cluster(n=100)
        with start_session(node_count=3, instances_per_node=1) as session:
            from repro.errors import CatalogError
            with pytest.raises(CatalogError):
                load_via_single_odbc(cluster, "t", ["nope"], session)
