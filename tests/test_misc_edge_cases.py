"""Remaining edge cases: joins with empty inputs, harness CLI, darray
reductions on empty arrays."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.harness.__main__ import main as harness_main
from repro.vertica import VerticaCluster


class TestJoinEmptyInputs:
    def make_tables(self, left_rows, right_rows):
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE l (k INT, v FLOAT)")
        cluster.sql("CREATE TABLE r (k INT, w FLOAT)")
        for i in range(left_rows):
            cluster.sql(f"INSERT INTO l VALUES ({i}, {float(i)})")
        for i in range(right_rows):
            cluster.sql(f"INSERT INTO r VALUES ({i}, {float(i) * 10})")
        return cluster

    def test_inner_join_empty_right(self):
        cluster = self.make_tables(3, 0)
        assert len(cluster.sql(
            "SELECT a.v FROM l a JOIN r b ON a.k = b.k")) == 0

    def test_left_join_empty_right_keeps_left(self):
        cluster = self.make_tables(3, 0)
        result = cluster.sql(
            "SELECT a.v, b.w FROM l a LEFT JOIN r b ON a.k = b.k ORDER BY a.v")
        assert len(result) == 3
        # Output labels follow SQL convention: the bare column name.
        assert all(np.isnan(v) for v in result.column("w"))

    def test_inner_join_empty_left(self):
        cluster = self.make_tables(0, 3)
        assert len(cluster.sql(
            "SELECT b.w FROM l a JOIN r b ON a.k = b.k")) == 0

    def test_both_empty(self):
        cluster = self.make_tables(0, 0)
        assert len(cluster.sql(
            "SELECT a.v FROM l a LEFT JOIN r b ON a.k = b.k")) == 0

    def test_aggregate_over_empty_join(self):
        cluster = self.make_tables(3, 0)
        assert cluster.sql(
            "SELECT COUNT(*) FROM l a JOIN r b ON a.k = b.k").scalar() == 0


class TestDArrayReductionEdges:
    def test_sum_of_zero_row_partitions(self, session):
        array = session.darray(npartitions=2)
        array.fill_partition(0, np.empty((0, 2)))
        array.fill_partition(1, np.ones((3, 2)))
        assert array.sum() == pytest.approx(6.0)

    def test_mean_of_entirely_empty_rejected(self, session):
        array = session.darray(npartitions=1)
        array.fill_partition(0, np.empty((0, 2)))
        with pytest.raises(PartitionError):
            array.mean()

    def test_dot_vector_with_empty_partition(self, session):
        array = session.darray(npartitions=2)
        array.fill_partition(0, np.empty((0, 2)))
        array.fill_partition(1, np.ones((4, 2)))
        result = array.dot_vector([1.0, 1.0])
        assert result.nrow == 4
        assert np.allclose(result.collect().ravel(), 2.0)


class TestHarnessCli:
    def test_cli_runs_and_writes(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        code = harness_main(["--skip-functional", "--write", str(output)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "Fig 21" in printed
        assert output.exists()
        assert "Calibration provenance" in output.read_text()

    def test_cli_without_write(self, capsys):
        assert harness_main(["--skip-functional"]) == 0
        assert "Fig 12" in capsys.readouterr().out
