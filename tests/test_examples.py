"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"
