"""Tests for segmentation, tables, SQL execution, ODBC, DFS, and R_Models."""

import numpy as np
import pytest

from repro.errors import (
    CatalogError,
    DfsError,
    ExecutionError,
    PermissionDeniedError,
    SqlAnalysisError,
)
from repro.storage import ColumnSchema, SqlType
from repro.vertica import (
    HashSegmentation,
    NodeResources,
    RoundRobinSegmentation,
    SkewedSegmentation,
    Unsegmented,
    VerticaCluster,
)
from repro.vertica.models import ModelRecord, Privilege
from repro.vertica.segmentation import hash64
from repro.vertica.table import ROWID_COLUMN


class TestSegmentation:
    def test_hash64_deterministic(self):
        values = np.arange(100)
        assert np.array_equal(hash64(values), hash64(values))

    def test_hash64_strings_stable(self):
        a = hash64(np.array(["alpha", "beta"], dtype=object))
        b = hash64(np.array(["alpha", "beta"], dtype=object))
        assert np.array_equal(a, b)

    def test_hash_spreads_uniformly(self):
        values = np.arange(30_000)
        nodes = hash64(values) % np.uint64(3)
        counts = np.bincount(nodes.astype(int), minlength=3)
        assert counts.min() > 9_000

    def test_hash_segmentation_routes_equal_keys_together(self):
        scheme = HashSegmentation("k")
        batch = {"k": np.array([5, 5, 5, 9, 9])}
        assignment = scheme.assign(batch, 5, 0, 4)
        assert len(set(assignment[:3].tolist())) == 1
        assert len(set(assignment[3:].tolist())) == 1

    def test_hash_segmentation_missing_column(self):
        with pytest.raises(CatalogError):
            HashSegmentation("k").assign({"x": np.arange(3)}, 3, 0, 2)

    def test_round_robin_exact(self):
        scheme = RoundRobinSegmentation()
        assignment = scheme.assign({}, 6, 0, 3)
        assert list(assignment) == [0, 1, 2, 0, 1, 2]

    def test_round_robin_continues_from_offset(self):
        scheme = RoundRobinSegmentation()
        assignment = scheme.assign({}, 3, 4, 3)
        assert list(assignment) == [1, 2, 0]

    def test_skewed_proportions(self):
        scheme = SkewedSegmentation(weights=(4.0, 1.0, 1.0))
        assignment = scheme.assign({}, 60_000, 0, 3)
        counts = np.bincount(assignment, minlength=3)
        assert counts[0] > 2.5 * counts[1]
        assert counts[0] > 2.5 * counts[2]

    def test_skewed_requires_positive_weights(self):
        with pytest.raises(CatalogError):
            SkewedSegmentation(weights=(1.0, 0.0))

    def test_skewed_weight_count_must_match(self):
        scheme = SkewedSegmentation(weights=(1.0, 1.0))
        with pytest.raises(CatalogError):
            scheme.assign({}, 10, 0, 3)

    def test_unsegmented_single_node(self):
        scheme = Unsegmented(node=1)
        assignment = scheme.assign({}, 5, 0, 3)
        assert set(assignment.tolist()) == {1}


class TestTable:
    def test_create_and_load(self, cluster):
        table = cluster.create_table("t", [
            ColumnSchema("a", SqlType.INTEGER),
            ColumnSchema("b", SqlType.FLOAT),
        ])
        inserted = cluster.bulk_load("t", {"a": np.arange(10), "b": np.ones(10)})
        assert inserted == 10
        assert table.row_count == 10
        assert sum(table.segment_row_counts()) == 10

    def test_duplicate_table_rejected(self, cluster):
        cluster.create_table("t", [ColumnSchema("a", SqlType.INTEGER)])
        with pytest.raises(CatalogError):
            cluster.create_table("T", [ColumnSchema("a", SqlType.INTEGER)])

    def test_reserved_rowid_column(self, cluster):
        with pytest.raises(CatalogError):
            cluster.create_table("t", [ColumnSchema(ROWID_COLUMN, SqlType.INTEGER)])

    def test_reserved_r_models_name(self, cluster):
        with pytest.raises(CatalogError):
            cluster.create_table("R_Models", [ColumnSchema("a", SqlType.INTEGER)])

    def test_missing_column_on_insert(self, cluster):
        cluster.create_table("t", [
            ColumnSchema("a", SqlType.INTEGER),
            ColumnSchema("b", SqlType.FLOAT),
        ])
        with pytest.raises(CatalogError, match="missing"):
            cluster.bulk_load("t", {"a": np.arange(3)})

    def test_unknown_column_on_insert(self, cluster):
        cluster.create_table("t", [ColumnSchema("a", SqlType.INTEGER)])
        with pytest.raises(CatalogError, match="unknown"):
            cluster.bulk_load("t", {"a": np.arange(3), "z": np.arange(3)})

    def test_ragged_insert_rejected(self, cluster):
        cluster.create_table("t", [
            ColumnSchema("a", SqlType.INTEGER),
            ColumnSchema("b", SqlType.FLOAT),
        ])
        with pytest.raises(CatalogError, match="ragged"):
            cluster.bulk_load("t", {"a": np.arange(3), "b": np.ones(4)})

    def test_rowids_are_global_and_unique(self, cluster):
        table = cluster.create_table("t", [ColumnSchema("a", SqlType.INTEGER)])
        cluster.bulk_load("t", {"a": np.arange(100)})
        cluster.bulk_load("t", {"a": np.arange(100)})
        rowids = []
        for node in range(cluster.node_count):
            batch = table.scan_node(node, ["a"], include_rowid=True)
            rowids.extend(batch[ROWID_COLUMN].tolist())
        assert sorted(rowids) == list(range(200))

    def test_scan_all_returns_every_row(self, loaded_cluster):
        data = loaded_cluster.catalog.get_table("pts").scan_all(["a"])
        assert len(data["a"]) == 900

    def test_disk_backed_table(self, tmp_path):
        cluster = VerticaCluster(node_count=2, data_dir=tmp_path)
        cluster.create_table_like("d", {"x": np.arange(10)})
        cluster.bulk_load("d", {"x": np.arange(10)})
        files = list(tmp_path.rglob("*.bin"))
        assert files, "disk mode must write segment files"
        assert cluster.sql("SELECT SUM(x) FROM d").scalar() == 45

    def test_empty_insert_is_noop(self, cluster):
        cluster.create_table("t", [ColumnSchema("a", SqlType.INTEGER)])
        assert cluster.bulk_load("t", {"a": np.empty(0, dtype=np.int64)}) == 0


class TestSqlExecution:
    def test_count_star(self, loaded_cluster):
        assert loaded_cluster.sql("SELECT COUNT(*) FROM pts").scalar() == 900

    def test_projection_expression(self, loaded_cluster):
        result = loaded_cluster.sql("SELECT a + b AS s FROM pts LIMIT 5")
        assert result.column_names == ["s"]
        assert len(result) == 5

    def test_where_filter_matches_numpy(self, loaded_cluster):
        result = loaded_cluster.sql("SELECT COUNT(*) FROM pts WHERE a > 0 AND b < 0")
        table = loaded_cluster.catalog.get_table("pts")
        data = table.scan_all(["a", "b"])
        expected = int(np.sum((data["a"] > 0) & (data["b"] < 0)))
        assert result.scalar() == expected

    def test_order_by_with_limit(self, loaded_cluster):
        result = loaded_cluster.sql("SELECT a FROM pts ORDER BY a DESC LIMIT 3")
        values = result.column("a")
        assert np.all(np.diff(values) <= 0)
        table_max = loaded_cluster.catalog.get_table("pts").scan_all(["a"])["a"].max()
        assert values[0] == pytest.approx(table_max)

    def test_multi_key_order(self, cluster):
        cluster.create_table_like("t", {"g": np.array([1, 1, 2, 2]),
                                        "v": np.array([4.0, 3.0, 2.0, 1.0])})
        cluster.bulk_load("t", {"g": np.array([1, 1, 2, 2]),
                                "v": np.array([4.0, 3.0, 2.0, 1.0])})
        rows = cluster.sql("SELECT g, v FROM t ORDER BY g ASC, v DESC").rows()
        assert [(int(g), float(v)) for g, v in rows] == [
            (1, 4.0), (1, 3.0), (2, 2.0), (2, 1.0)
        ]

    def test_global_aggregates(self, loaded_cluster):
        table = loaded_cluster.catalog.get_table("pts").scan_all(["a"])
        result = loaded_cluster.sql(
            "SELECT SUM(a), AVG(a), MIN(a), MAX(a), COUNT(a) FROM pts"
        )
        row = result.rows()[0]
        assert row[0] == pytest.approx(table["a"].sum())
        assert row[1] == pytest.approx(table["a"].mean())
        assert row[2] == pytest.approx(table["a"].min())
        assert row[3] == pytest.approx(table["a"].max())
        assert row[4] == 900

    def test_group_by_matches_numpy(self, loaded_cluster):
        result = loaded_cluster.sql(
            "SELECT k % 4 AS g, COUNT(*) AS n FROM pts GROUP BY k % 4 ORDER BY g"
        )
        data = loaded_cluster.catalog.get_table("pts").scan_all(["k"])
        expected = np.bincount(data["k"] % 4, minlength=4)
        assert list(result.column("n")) == list(expected)

    def test_having_filters_groups(self, cluster):
        g = np.array([0] * 10 + [1] * 2)
        cluster.create_table_like("t", {"g": g})
        cluster.bulk_load("t", {"g": g})
        rows = cluster.sql(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 5"
        ).rows()
        assert len(rows) == 1
        assert rows[0][0] == 0

    def test_aggregate_expression(self, cluster):
        cluster.create_table_like("t", {"v": np.array([1.0, 2.0, 3.0])})
        cluster.bulk_load("t", {"v": np.array([1.0, 2.0, 3.0])})
        value = cluster.sql("SELECT SUM(v) / COUNT(*) FROM t").scalar()
        assert value == pytest.approx(2.0)

    def test_count_distinct(self, cluster):
        cluster.create_table_like("t", {"v": np.array([1, 1, 2, 3, 3, 3])})
        cluster.bulk_load("t", {"v": np.array([1, 1, 2, 3, 3, 3])})
        assert cluster.sql("SELECT COUNT(DISTINCT v) FROM t").scalar() == 3

    def test_aggregate_over_empty_table(self, cluster):
        cluster.create_table_like("t", {"v": np.array([1.0])})
        assert cluster.sql("SELECT COUNT(*) FROM t").scalar() == 0

    def test_bare_column_with_aggregate_rejected(self, loaded_cluster):
        with pytest.raises(SqlAnalysisError):
            loaded_cluster.sql("SELECT a, COUNT(*) FROM pts")

    def test_unknown_table(self, cluster):
        with pytest.raises(CatalogError):
            cluster.sql("SELECT * FROM nope")

    def test_unknown_column(self, loaded_cluster):
        with pytest.raises(SqlAnalysisError):
            loaded_cluster.sql("SELECT zzz FROM pts")

    def test_create_insert_select_roundtrip(self, cluster):
        cluster.sql("CREATE TABLE t (a INT, s VARCHAR) SEGMENTED BY HASH(a) ALL NODES")
        cluster.sql("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
        rows = cluster.sql("SELECT s FROM t WHERE a >= 2 ORDER BY a").rows()
        assert [r[0] for r in rows] == ["two", "three"]

    def test_drop_table(self, cluster):
        cluster.sql("CREATE TABLE t (a INT)")
        cluster.sql("DROP TABLE t")
        assert not cluster.catalog.has_table("t")
        cluster.sql("DROP TABLE IF EXISTS t")  # no error
        with pytest.raises(CatalogError):
            cluster.sql("DROP TABLE t")

    def test_select_star(self, cluster):
        cluster.sql("CREATE TABLE t (a INT, b FLOAT)")
        cluster.sql("INSERT INTO t VALUES (1, 0.5)")
        result = cluster.sql("SELECT * FROM t")
        assert result.column_names == ["a", "b"]

    def test_r_models_virtual_table_empty(self, cluster):
        result = cluster.sql("SELECT * FROM R_Models")
        assert len(result) == 0
        assert result.column_names == ["model", "owner", "type", "size", "description"]

    def test_scalar_on_multi_row_rejected(self, loaded_cluster):
        result = loaded_cluster.sql("SELECT a FROM pts LIMIT 2")
        with pytest.raises(ExecutionError):
            result.scalar()


class TestUdtfExecution:
    def install_echo(self, cluster, name="echo"):
        from repro.vertica import FunctionBasedUdtf

        def echo(ctx, args, params):
            first = next(iter(args.values()))
            return {
                "value": np.asarray(first, dtype=np.float64),
                "instance": np.full(len(first), ctx.instance_index, dtype=np.int64),
                "node": np.full(len(first), ctx.node_index, dtype=np.int64),
            }

        cluster.register_udtf(FunctionBasedUdtf(name, echo))

    def test_partition_nodes_one_instance_per_node(self, loaded_cluster):
        self.install_echo(loaded_cluster)
        result = loaded_cluster.sql(
            "SELECT echo(a) OVER (PARTITION NODES) FROM pts"
        )
        assert len(result) == 900
        nodes = np.unique(result.column("node"))
        assert len(nodes) == loaded_cluster.node_count

    def test_partition_best_processes_all_rows(self, loaded_cluster):
        self.install_echo(loaded_cluster)
        result = loaded_cluster.sql("SELECT echo(a) OVER (PARTITION BEST) FROM pts")
        assert len(result) == 900
        original = np.sort(loaded_cluster.catalog.get_table("pts").scan_all(["a"])["a"])
        assert np.allclose(np.sort(result.column("value")), original)

    def test_partition_by_groups_keys_in_one_instance(self, cluster):
        from repro.vertica import FunctionBasedUdtf

        keys = np.repeat(np.arange(20), 30)
        cluster.create_table_like("t", {"key": keys, "v": np.ones(600)})
        cluster.bulk_load("t", {"key": keys, "v": np.ones(600)})

        def per_group(ctx, args, params):
            key_values = args["key"]
            unique, counts = np.unique(key_values, return_counts=True)
            return {"key": unique, "n": counts.astype(np.int64)}

        cluster.register_udtf(FunctionBasedUdtf("grpcount", per_group))
        result = cluster.sql(
            "SELECT grpcount(key, v) OVER (PARTITION BY key) FROM t"
        )
        # every key appears exactly once => all rows of a key hit one instance
        assert len(result) == 20
        assert np.all(result.column("n") == 30)

    def test_udtf_where_filter(self, loaded_cluster):
        self.install_echo(loaded_cluster)
        result = loaded_cluster.sql(
            "SELECT echo(a) OVER (PARTITION BEST) FROM pts WHERE a > 0"
        )
        data = loaded_cluster.catalog.get_table("pts").scan_all(["a"])
        assert len(result) == int((data["a"] > 0).sum())

    def test_unregistered_udtf(self, loaded_cluster):
        with pytest.raises(CatalogError):
            loaded_cluster.sql("SELECT nosuch(a) OVER (PARTITION BEST) FROM pts")

    def test_udtf_with_order_by_rejected(self, loaded_cluster):
        self.install_echo(loaded_cluster)
        with pytest.raises(SqlAnalysisError):
            loaded_cluster.sql(
                "SELECT echo(a) OVER (PARTITION BEST) FROM pts ORDER BY a"
            )

    def test_ragged_udtf_output_rejected(self, loaded_cluster):
        from repro.vertica import FunctionBasedUdtf

        def bad(ctx, args, params):
            return {"x": np.arange(3), "y": np.arange(4)}

        loaded_cluster.register_udtf(FunctionBasedUdtf("bad", bad))
        with pytest.raises(ExecutionError, match="ragged"):
            loaded_cluster.sql("SELECT bad(a) OVER (PARTITION NODES) FROM pts")


class TestOdbc:
    def test_fetchall_matches_table(self, loaded_cluster):
        connection = loaded_cluster.connect()
        rows = connection.execute("SELECT k FROM pts WHERE k < 100").fetchall()
        data = loaded_cluster.catalog.get_table("pts").scan_all(["k"])
        assert len(rows) == int((data["k"] < 100).sum())

    def test_fetchmany_pagination(self, loaded_cluster):
        connection = loaded_cluster.connect()
        connection.execute("SELECT a FROM pts")
        first = connection.fetchmany(100)
        second = connection.fetchmany(100)
        assert len(first) == 100 and len(second) == 100
        assert first != second

    def test_fetchone(self, loaded_cluster):
        connection = loaded_cluster.connect()
        connection.execute("SELECT COUNT(*) FROM pts")
        assert connection.fetchone() == (900,)
        assert connection.fetchone() is None

    def test_row_range_is_ordered_and_typed(self, loaded_cluster):
        connection = loaded_cluster.connect()
        out = connection.fetch_row_range("pts", ["k", "a"], 10, 20)
        assert len(out["k"]) == 10
        assert out["k"].dtype == np.int64
        assert out["a"].dtype == np.float64

    def test_row_ranges_partition_table(self, loaded_cluster):
        connection = loaded_cluster.connect()
        total = 0
        for start in range(0, 900, 300):
            chunk = connection.fetch_row_range("pts", ["a"], start, start + 300)
            total += len(chunk["a"])
        assert total == 900

    def test_range_fetch_roundtrips_values(self, cluster):
        values = np.array([1.5, -2.25, 1e-8, 3e10])
        cluster.create_table_like("t", {"v": values})
        cluster.bulk_load("t", {"v": values})
        out = cluster.connect().fetch_row_range("t", ["v"], 0, 4)
        assert np.allclose(np.sort(out["v"]), np.sort(values))

    def test_closed_connection_rejected(self, loaded_cluster):
        connection = loaded_cluster.connect()
        connection.close()
        with pytest.raises(ExecutionError):
            connection.execute("SELECT 1 FROM pts")

    def test_telemetry_counts_connections(self, loaded_cluster):
        before = loaded_cluster.telemetry.get("odbc_connections_opened")
        loaded_cluster.connect()
        loaded_cluster.connect()
        assert loaded_cluster.telemetry.get("odbc_connections_opened") == before + 2


class TestDfs:
    def test_write_read_roundtrip(self, cluster):
        info = cluster.dfs.write("/m/one", b"hello world")
        assert info.size == 11
        assert cluster.dfs.read("/m/one") == b"hello world"

    def test_replication_count(self, cluster):
        info = cluster.dfs.write("/m/two", b"x" * 100)
        assert len(info.replica_nodes) == min(2, cluster.node_count)

    def test_survives_single_node_failure(self, cluster):
        info = cluster.dfs.write("/m/three", b"payload")
        cluster.dfs.fail_node(info.replica_nodes[0])
        assert cluster.dfs.read("/m/three") == b"payload"

    def test_all_replicas_down_raises(self, cluster):
        info = cluster.dfs.write("/m/four", b"payload")
        for node in info.replica_nodes:
            cluster.dfs.fail_node(node)
        with pytest.raises(DfsError):
            cluster.dfs.read("/m/four")
        cluster.dfs.recover_node(info.replica_nodes[0])
        assert cluster.dfs.read("/m/four") == b"payload"

    def test_overwrite_requires_flag(self, cluster):
        cluster.dfs.write("/m/five", b"v1")
        with pytest.raises(DfsError):
            cluster.dfs.write("/m/five", b"v2")
        info = cluster.dfs.write("/m/five", b"v2", overwrite=True)
        assert info.version == 2
        assert cluster.dfs.read("/m/five") == b"v2"

    def test_delete(self, cluster):
        cluster.dfs.write("/m/six", b"bye")
        cluster.dfs.delete("/m/six")
        assert not cluster.dfs.exists("/m/six")
        with pytest.raises(DfsError):
            cluster.dfs.delete("/m/six")

    def test_list_by_prefix(self, cluster):
        cluster.dfs.write("/models/a", b"1")
        cluster.dfs.write("/models/b", b"2")
        cluster.dfs.write("/other/c", b"3")
        names = [f.path for f in cluster.dfs.list_files("/models/")]
        assert names == ["/models/a", "/models/b"]

    def test_non_bytes_rejected(self, cluster):
        with pytest.raises(DfsError):
            cluster.dfs.write("/m/x", "not bytes")

    def test_total_bytes_counts_replicas(self, cluster):
        cluster.dfs.write("/m/y", b"12345")
        assert cluster.dfs.total_bytes() == 5 * 2


class TestRModelsCatalog:
    def make_record(self, name="m1", owner="alice"):
        return ModelRecord(
            model=name, owner=owner, type="glm", size=10,
            description="", dfs_path=f"/drmodels/{name}",
        )

    def test_add_and_query_via_sql(self, cluster):
        cluster.r_models.add(self.make_record())
        rows = cluster.sql("SELECT model, owner FROM R_Models").rows()
        assert rows == [("m1", "alice")]

    def test_duplicate_rejected(self, cluster):
        cluster.r_models.add(self.make_record())
        with pytest.raises(CatalogError):
            cluster.r_models.add(self.make_record())

    def test_owner_always_allowed(self, cluster):
        cluster.r_models.add(self.make_record())
        record = cluster.r_models.get("m1", user="alice", privilege=Privilege.MODIFY)
        assert record.owner == "alice"

    def test_other_user_denied_without_grant(self, cluster):
        cluster.r_models.add(self.make_record())
        with pytest.raises(PermissionDeniedError):
            cluster.r_models.get("m1", user="bob")

    def test_grant_usage_allows_prediction(self, cluster):
        cluster.r_models.add(self.make_record())
        cluster.r_models.grant("m1", "bob", Privilege.USAGE, granting_user="alice")
        cluster.r_models.get("m1", user="bob", privilege=Privilege.USAGE)
        with pytest.raises(PermissionDeniedError):
            cluster.r_models.get("m1", user="bob", privilege=Privilege.MODIFY)

    def test_revoke(self, cluster):
        cluster.r_models.add(self.make_record())
        cluster.r_models.grant("m1", "bob", Privilege.USAGE, granting_user="alice")
        cluster.r_models.revoke("m1", "bob", Privilege.USAGE, revoking_user="alice")
        with pytest.raises(PermissionDeniedError):
            cluster.r_models.get("m1", user="bob")

    def test_only_owner_grants(self, cluster):
        cluster.r_models.add(self.make_record())
        with pytest.raises(PermissionDeniedError):
            cluster.r_models.grant("m1", "carol", Privilege.USAGE,
                                   granting_user="bob")

    def test_drop_requires_modify(self, cluster):
        cluster.r_models.add(self.make_record())
        with pytest.raises(PermissionDeniedError):
            cluster.r_models.drop("m1", user="bob")
        cluster.r_models.drop("m1", user="alice")
        assert not cluster.r_models.exists("m1")

    def test_replace_requires_modify(self, cluster):
        cluster.r_models.add(self.make_record())
        with pytest.raises(PermissionDeniedError):
            cluster.r_models.add(self.make_record(owner="eve"), replace=True,
                                 user="eve")


class TestPlannerResources:
    def test_partition_best_respects_core_budget(self):
        cluster = VerticaCluster(
            node_count=1, node_resources=NodeResources(cores=2, scan_slots=2)
        )
        rng = np.random.default_rng(0)
        cluster.create_table_like("t", {"v": rng.normal(size=100)})
        cluster.bulk_load("t", {"v": rng.normal(size=100)})
        assert cluster.nodes[0].best_udtf_parallelism(rowgroups=10) <= 2

    def test_core_reservation_accounting(self, cluster):
        node = cluster.nodes[0]
        granted = node.reserve_cores(3)
        assert granted == 3
        assert node.available_cores == node.resources.cores - 3
        node.release_cores(3)
        assert node.available_cores == node.resources.cores

    def test_over_release_rejected(self, cluster):
        from repro.errors import ResourceError

        with pytest.raises(ResourceError):
            cluster.nodes[0].release_cores(1)

    def test_table_stats_reports_skew(self, cluster):
        columns = {"v": np.arange(1000)}
        cluster.create_table_like("t", columns, SkewedSegmentation((8.0, 1.0, 1.0)))
        cluster.bulk_load("t", columns)
        stats = cluster.table_stats("t")
        assert stats["skew"] > 1.5
        assert stats["rows"] == 1000
