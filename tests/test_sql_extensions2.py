"""Tests for DISTINCT / IN / LIKE, table k-safety, and darray repartition."""

import numpy as np
import pytest

from repro.dr import repartition, start_session
from repro.errors import (
    CatalogError,
    ExecutionError,
    PartitionError,
    SqlAnalysisError,
    SqlSyntaxError,
)
from repro.transfer import db2darray
from repro.vertica import HashSegmentation, SkewedSegmentation, VerticaCluster


@pytest.fixture
def fruit_cluster():
    cluster = VerticaCluster(node_count=3)
    cluster.sql("CREATE TABLE t (a INT, s VARCHAR)")
    cluster.sql("INSERT INTO t VALUES (1,'apple'),(2,'banana'),(1,'apple'),"
                "(3,'apricot'),(2,'cherry')")
    return cluster


class TestSelectDistinct:
    def test_single_column(self, fruit_cluster):
        rows = fruit_cluster.sql("SELECT DISTINCT a FROM t ORDER BY a").rows()
        assert [r[0] for r in rows] == [1, 2, 3]

    def test_multi_column_pairs(self, fruit_cluster):
        rows = sorted(fruit_cluster.sql("SELECT DISTINCT a, s FROM t").rows())
        assert rows == [(1, "apple"), (2, "banana"), (2, "cherry"),
                        (3, "apricot")]

    def test_distinct_with_where_and_limit(self, fruit_cluster):
        rows = fruit_cluster.sql(
            "SELECT DISTINCT a FROM t WHERE a < 3 ORDER BY a LIMIT 1").rows()
        assert rows == [(1,)]

    def test_distinct_expression(self, fruit_cluster):
        rows = fruit_cluster.sql(
            "SELECT DISTINCT a % 2 AS parity FROM t ORDER BY parity").rows()
        assert [r[0] for r in rows] == [0, 1]

    def test_distinct_with_group_by_rejected(self, fruit_cluster):
        with pytest.raises(SqlAnalysisError):
            fruit_cluster.sql("SELECT DISTINCT COUNT(*) FROM t GROUP BY a")


class TestInAndLike:
    def test_in_list(self, fruit_cluster):
        count = fruit_cluster.sql(
            "SELECT COUNT(*) FROM t WHERE a IN (1, 3)").scalar()
        assert count == 3

    def test_not_in(self, fruit_cluster):
        count = fruit_cluster.sql(
            "SELECT COUNT(*) FROM t WHERE a NOT IN (1, 3)").scalar()
        assert count == 2

    def test_in_strings(self, fruit_cluster):
        count = fruit_cluster.sql(
            "SELECT COUNT(*) FROM t WHERE s IN ('apple', 'cherry')").scalar()
        assert count == 3

    def test_like_prefix(self, fruit_cluster):
        rows = fruit_cluster.sql(
            "SELECT DISTINCT s FROM t WHERE s LIKE 'ap%' ORDER BY s").rows()
        assert [r[0] for r in rows] == ["apple", "apricot"]

    def test_like_underscore(self, fruit_cluster):
        rows = fruit_cluster.sql("SELECT s FROM t WHERE s LIKE '_anana'").rows()
        assert rows == [("banana",)]

    def test_not_like(self, fruit_cluster):
        count = fruit_cluster.sql(
            "SELECT COUNT(*) FROM t WHERE s NOT LIKE 'a%'").scalar()
        assert count == 2

    def test_like_escapes_regex_metacharacters(self):
        cluster = VerticaCluster(node_count=2)
        cluster.sql("CREATE TABLE t (s VARCHAR)")
        cluster.sql("INSERT INTO t VALUES ('a.b'), ('axb')")
        rows = cluster.sql("SELECT s FROM t WHERE s LIKE 'a.b'").rows()
        assert rows == [("a.b",)]  # '.' is literal, not a regex wildcard

    def test_like_requires_string_pattern(self, fruit_cluster):
        with pytest.raises(SqlSyntaxError):
            fruit_cluster.sql("SELECT s FROM t WHERE s LIKE 5")

    def test_bare_not_without_in_or_like(self, fruit_cluster):
        with pytest.raises(SqlSyntaxError):
            fruit_cluster.sql("SELECT s FROM t WHERE a NOT 5")


class TestKSafety:
    def make_cluster(self, k_safety=1, nodes=3):
        cluster = VerticaCluster(node_count=nodes)
        rng = np.random.default_rng(60)
        columns = {"k": rng.integers(0, 10**6, 1200),
                   "v": rng.normal(size=1200)}
        cluster.create_table_like("t", columns, HashSegmentation("k"),
                                  k_safety=k_safety)
        cluster.bulk_load("t", columns)
        return cluster, columns

    def test_scan_survives_single_node_failure(self):
        cluster, columns = self.make_cluster()
        expected_sum = columns["v"].sum()
        cluster.fail_node(1)
        assert cluster.sql("SELECT COUNT(*) FROM t").scalar() == 1200
        assert cluster.sql("SELECT SUM(v) FROM t").scalar() == pytest.approx(
            expected_sum)
        assert cluster.telemetry.get("buddy_scans") > 0

    def test_double_failure_is_loud(self):
        cluster, _ = self.make_cluster()
        cluster.fail_node(1)
        cluster.fail_node(2)  # node 2 hosts node 1's buddy
        with pytest.raises(ExecutionError, match="both down"):
            cluster.sql("SELECT COUNT(*) FROM t")

    def test_recovery_restores_primary_path(self):
        cluster, _ = self.make_cluster()
        cluster.fail_node(0)
        cluster.sql("SELECT COUNT(*) FROM t")
        cluster.recover_node(0)
        before = cluster.telemetry.get("buddy_scans")
        cluster.sql("SELECT COUNT(*) FROM t")
        assert cluster.telemetry.get("buddy_scans") == before

    def test_unprotected_table_fails_hard(self):
        cluster, _ = self.make_cluster(k_safety=0)
        cluster.fail_node(0)
        with pytest.raises(ExecutionError, match="k_safety"):
            cluster.sql("SELECT COUNT(*) FROM t")

    def test_odbc_range_fetch_fails_over(self):
        cluster, _ = self.make_cluster()
        cluster.fail_node(2)
        out = cluster.connect().fetch_row_range("t", ["v"], 0, 1200)
        assert len(out["v"]) == 1200

    def test_vft_transfer_fails_over(self):
        cluster, _ = self.make_cluster()
        cluster.fail_node(0)
        with start_session(node_count=3, instances_per_node=1) as session:
            array = db2darray(cluster, "t", ["v"], session)
            assert array.nrow == 1200

    def test_invalid_k_safety(self):
        cluster = VerticaCluster(node_count=3)
        with pytest.raises(CatalogError):
            cluster.create_table_like("t", {"v": np.arange(3)}, k_safety=2)
        single = VerticaCluster(node_count=1)
        with pytest.raises(CatalogError):
            single.create_table_like("t", {"v": np.arange(3)}, k_safety=1)

    def test_ksafety_doubles_storage(self):
        plain_cluster, _ = self.make_cluster(k_safety=0)
        safe_cluster, _ = self.make_cluster(k_safety=1)
        plain = plain_cluster.catalog.get_table("t")
        safe = safe_cluster.catalog.get_table("t")
        safe_total = (sum(s.compressed_size for s in safe.segments)
                      + sum(s.compressed_size for s in safe.buddy_segments))
        plain_total = sum(s.compressed_size for s in plain.segments)
        assert safe_total == pytest.approx(2 * plain_total, rel=0.01)


class TestRepartition:
    def test_balances_skew(self, session):
        array = session.darray(npartitions=3)
        array.fill_partition(0, np.arange(40.0).reshape(20, 2))
        array.fill_partition(1, np.arange(40.0, 44.0).reshape(2, 2))
        array.fill_partition(2, np.arange(44.0, 48.0).reshape(2, 2))
        balanced = repartition(array, 3)
        rows = [shape[0] for shape in balanced.partition_shapes()]
        assert max(rows) - min(rows) <= 1

    def test_preserves_row_order(self, session):
        array = session.darray(npartitions=2)
        data = np.arange(30.0).reshape(15, 2)
        array.fill_partition(0, data[:11])
        array.fill_partition(1, data[11:])
        assert np.array_equal(repartition(array, 4).collect(), data)

    def test_grow_and_shrink_partition_count(self, session):
        array = session.darray(npartitions=2)
        data = np.arange(24.0).reshape(12, 2)
        array.fill_from(data)
        assert np.array_equal(repartition(array, 6).collect(), data)
        assert np.array_equal(repartition(array, 1).collect(), data)

    def test_after_skewed_db_load(self, session):
        rng = np.random.default_rng(61)
        columns = {"v": rng.normal(size=1200)}
        cluster = VerticaCluster(node_count=3)
        cluster.create_table_like("skw", columns,
                                  SkewedSegmentation((10.0, 1.0, 1.0)))
        cluster.bulk_load("skw", columns)
        loaded = db2darray(cluster, "skw", ["v"], session, policy="locality")
        loaded_rows = [s[0] for s in loaded.partition_shapes()]
        assert max(loaded_rows) > 4 * max(1, min(loaded_rows))
        balanced = repartition(loaded, 3)
        balanced_rows = [s[0] for s in balanced.partition_shapes()]
        assert max(balanced_rows) - min(balanced_rows) <= 1
        assert balanced.nrow == 1200

    def test_unfilled_rejected(self, session):
        array = session.darray(npartitions=2)
        with pytest.raises(PartitionError):
            repartition(array, 2)

    def test_legacy_rejected(self, session):
        array = session.darray(dim=(4, 2), blocks=(2, 2))
        with pytest.raises(PartitionError):
            repartition(array, 2)
