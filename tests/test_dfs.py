"""DFS replica-repair tests: deletes and writes racing node failures.

A failed node cannot process a delete or an overwrite, so its replicas go
stale; ``recover_node`` must reconcile — drop orphans, drop stale versions,
and restore files left under-replicated by writes during the outage — so
that ``total_bytes()`` again reflects exactly ``replication`` copies of
every live file.
"""

from __future__ import annotations

import pytest

from repro.errors import DfsError
from repro.vertica.dfs import DistributedFileSystem


@pytest.fixture
def dfs():
    return DistributedFileSystem(node_count=3, replication=2)


def expected_bytes(dfs):
    return sum(info.size * len(info.replica_nodes) for info in dfs.list_files())


class TestDeleteWithFailedReplica:
    def test_delete_while_replica_down_leaves_no_orphan_after_recovery(self, dfs):
        info = dfs.write("/m/a", b"x" * 100)
        victim = info.replica_nodes[0]
        dfs.fail_node(victim)
        dfs.delete("/m/a")
        assert not dfs.exists("/m/a")
        # The down node still physically holds its (now orphaned) replica.
        assert dfs.total_bytes() == 100
        dfs.recover_node(victim)
        assert dfs.total_bytes() == 0
        with pytest.raises(DfsError):
            dfs.read("/m/a")

    def test_overwrite_while_replica_down_drops_stale_copy(self, dfs):
        info = dfs.write("/m/a", b"old-bytes!")
        victim = info.replica_nodes[0]
        dfs.fail_node(victim)
        new = dfs.write("/m/a", b"new", overwrite=True)
        assert victim not in new.replica_nodes
        dfs.recover_node(victim)
        # The stale copy is gone and reads return only the new version.
        assert dfs.read("/m/a") == b"new"
        assert dfs.total_bytes() == expected_bytes(dfs)

    def test_recovered_node_never_serves_orphan(self, dfs):
        info = dfs.write("/m/a", b"payload")
        victim = info.replica_nodes[0]
        dfs.fail_node(victim)
        dfs.delete("/m/a")
        dfs.recover_node(victim)
        # Re-creating the path must not resurrect the old bytes.
        dfs.write("/m/a", b"fresh")
        assert dfs.read("/m/a", from_node=victim) == b"fresh"


class TestRecoveryReReplication:
    def test_write_during_outage_is_rereplicated_on_recovery(self, dfs):
        dfs.fail_node(0)
        dfs.fail_node(1)
        info = dfs.write("/m/solo", b"z" * 40)
        assert info.replica_nodes == (2,)
        dfs.recover_node(0)
        repaired = dfs.stat("/m/solo")
        assert set(repaired.replica_nodes) == {0, 2}
        assert dfs.total_bytes() == 80
        # The restored copy is readable even if the original holder fails.
        dfs.fail_node(2)
        assert dfs.read("/m/solo") == b"z" * 40

    def test_fully_replicated_files_are_untouched(self, dfs):
        info = dfs.write("/m/a", b"stable")
        dfs.fail_node(0)
        dfs.recover_node(0)
        assert dfs.stat("/m/a").replica_nodes == info.replica_nodes
        assert dfs.total_bytes() == expected_bytes(dfs)

    def test_total_bytes_reconciles_after_mixed_outage(self, dfs):
        dfs.write("/m/a", b"a" * 10)
        dfs.write("/m/b", b"b" * 20)
        victim = dfs.stat("/m/a").replica_nodes[0]
        dfs.fail_node(victim)
        dfs.delete("/m/a")
        dfs.write("/m/c", b"c" * 30)
        dfs.recover_node(victim)
        assert dfs.total_bytes() == expected_bytes(dfs)
        for info in dfs.list_files():
            assert len(info.replica_nodes) == dfs.replication
