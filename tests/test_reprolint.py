"""Tests for the reprolint static-analysis suite and the runtime race probe.

Each of the six checkers gets a minimal positive fixture (purpose-built bad
code the rule must flag) and a negative fixture (idiomatic code it must not
flag).  The runtime half proves :class:`InstrumentedLock` detects a
deliberately inverted lock order, and that clean nesting passes.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
import threading
from pathlib import Path

import pytest

from reprolint.baseline import load_baseline
from reprolint.cli import run as reprolint_run
from reprolint.core import FileContext, ProjectContext, get_checker
from reprolint.runtime import (
    InstrumentedLock,
    LockOrderInversion,
    LockOrderMonitor,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_snippet(rule: str, source: str, relpath: str = "src/repro/dr/x.py"):
    """Run one checker over an inline fixture; returns unsuppressed violations."""
    ctx = FileContext(Path(relpath), relpath, textwrap.dedent(source))
    checker = get_checker(rule)
    assert checker.applies_to(relpath), f"{rule} should apply to {relpath}"
    return [v for v in checker.check(ctx) if not ctx.is_suppressed(v)]


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

LOCKED_CLASS_BAD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            self._items[key] = value        # mutation without the lock

        def bump(self):
            self._count += 1                # ditto, AugAssign form
"""

LOCKED_CLASS_GOOD = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}
            self._init_cache()              # init helper: exempt

        def _init_cache(self):
            self._cache = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def _evict_locked(self, key):
            self._items.pop(key, None)      # *_locked: caller holds the lock

        def read(self, key):
            with self._lock:
                return self._items.get(key)
"""


def test_lock_discipline_flags_unguarded_mutation():
    violations = check_snippet("lock-discipline", LOCKED_CLASS_BAD)
    assert len(violations) == 2
    assert all(v.rule == "lock-discipline" for v in violations)
    assert violations[0].symbol == "Store.put"
    assert "_items" in violations[0].message
    assert violations[1].symbol == "Store.bump"


def test_lock_discipline_accepts_guarded_and_conventions():
    assert check_snippet("lock-discipline", LOCKED_CLASS_GOOD) == []


def test_lock_discipline_ignores_classes_without_sync_primitives():
    source = """
        class Plain:
            def __init__(self):
                self._x = 0

            def bump(self):
                self._x += 1
    """
    assert check_snippet("lock-discipline", source) == []


def test_lock_discipline_semaphore_class_needs_a_real_lock():
    source = """
        import threading

        class Pool:
            def __init__(self):
                self._slots = [threading.BoundedSemaphore(2)]
                self._closed = False

            def close(self):
                self._closed = True
    """
    violations = check_snippet("lock-discipline", source)
    assert len(violations) == 1
    assert "no lock attribute" in violations[0].message


# ---------------------------------------------------------------------------
# exception-hygiene
# ---------------------------------------------------------------------------

def test_exception_hygiene_flags_bare_and_swallowed():
    source = """
        def pump():
            try:
                step()
            except:
                pass

        def drain():
            try:
                step()
            except Exception as exc:
                log(exc)
    """
    violations = check_snippet(
        "exception-hygiene", source, relpath="src/repro/transfer/x.py"
    )
    assert len(violations) == 2
    assert "bare" in violations[0].message
    assert "swallows" in violations[1].message


def test_exception_hygiene_accepts_translation_and_narrow_catches():
    source = """
        from repro.errors import TransferError

        def pump():
            try:
                step()
            except Exception as exc:
                raise TransferError("stream failed") from exc

        def parse(x):
            try:
                return int(x)
            except ValueError:
                return 0
    """
    assert check_snippet(
        "exception-hygiene", source, relpath="src/repro/dr/x.py"
    ) == []


def test_exception_hygiene_scoped_to_hot_paths():
    checker = get_checker("exception-hygiene")
    assert checker.applies_to("src/repro/vertica/executor.py")
    assert not checker.applies_to("src/repro/harness/report.py")
    assert not checker.applies_to("tests/test_transfer.py")


# ---------------------------------------------------------------------------
# conformability-api
# ---------------------------------------------------------------------------

def test_conformability_flags_direct_partition_writes():
    source = """
        def corrupt(arr, block):
            arr.partitions[0].nrow = 7
            arr.partitions[1] = None
            arr._store(1, block, 3, 2, block.nbytes)
    """
    violations = check_snippet(
        "conformability-api", source, relpath="src/repro/algorithms/x.py"
    )
    assert len(violations) == 3
    messages = " / ".join(v.message for v in violations)
    assert "PartitionInfo.nrow" in messages
    assert "fill_partition" in messages


def test_conformability_accepts_reads_and_protocol_use():
    source = """
        def inspect(arr, values):
            n = arr.partitions[0].nrow
            arr.fill_partition(0, values)
            return n
    """
    assert check_snippet(
        "conformability-api", source, relpath="src/repro/algorithms/x.py"
    ) == []


def test_conformability_exempts_dr_implementation():
    checker = get_checker("conformability-api")
    assert not checker.applies_to("src/repro/dr/dobject.py")
    assert checker.applies_to("src/repro/deploy/deploy.py")
    assert checker.applies_to("tests/test_dr_engine.py")


# ---------------------------------------------------------------------------
# udf-catalog (project scope)
# ---------------------------------------------------------------------------

def _udf_project(tmp_path: Path, *, register: bool, document: bool) -> ProjectContext:
    module = tmp_path / "src/repro/deploy/predict_functions.py"
    module.parent.mkdir(parents=True)
    body = """
        class SvmPredict:
            name = "svmPredict"

        def standard_prediction_functions():
            return [{factory}]
    """.format(factory="SvmPredict()" if register else "")
    module.write_text(textwrap.dedent(body), encoding="utf-8")

    cluster = tmp_path / "src/repro/vertica/cluster.py"
    cluster.parent.mkdir(parents=True)
    cluster.write_text(
        "def install_standard_functions():\n"
        "    standard_prediction_functions()\n",
        encoding="utf-8",
    )

    docs = tmp_path / "docs/sql_reference.md"
    docs.parent.mkdir(parents=True)
    docs.write_text(
        "| svmPredict | model |\n" if document else "nothing here\n",
        encoding="utf-8",
    )
    return ProjectContext(tmp_path, [])


def test_udf_catalog_flags_unregistered_and_undocumented(tmp_path):
    checker = get_checker("udf-catalog")
    violations = list(
        checker.check_project(_udf_project(tmp_path, register=False, document=False))
    )
    assert len(violations) == 2
    assert "never be registered" in violations[0].message
    assert "not documented" in violations[1].message
    assert all(v.symbol == "SvmPredict" for v in violations)


def test_udf_catalog_clean_when_registered_and_documented(tmp_path):
    checker = get_checker("udf-catalog")
    violations = list(
        checker.check_project(_udf_project(tmp_path, register=True, document=True))
    )
    assert violations == []


def test_udf_catalog_clean_on_real_tree():
    checker = get_checker("udf-catalog")
    assert list(checker.check_project(ProjectContext(REPO_ROOT, []))) == []


# ---------------------------------------------------------------------------
# sim-determinism
# ---------------------------------------------------------------------------

def test_sim_determinism_flags_wall_clock_and_global_rng():
    source = """
        import random
        import time
        import numpy as np

        def sample():
            started = time.time()
            jitter = random.random()
            noise = np.random.normal(0.0, 1.0)
            return started, jitter, noise
    """
    violations = check_snippet(
        "sim-determinism", source, relpath="src/repro/simkit/x.py"
    )
    assert len(violations) == 3
    messages = " / ".join(v.message for v in violations)
    assert "wall-clock" in messages
    assert "random.Random(seed)" in messages
    assert "default_rng" in messages


def test_sim_determinism_accepts_seeded_rngs():
    source = """
        import random
        import numpy as np

        def sample(seed):
            rng = np.random.default_rng(seed)
            local = random.Random(seed)
            return rng.normal(), local.random()
    """
    assert check_snippet(
        "sim-determinism", source, relpath="src/repro/perfmodel/x.py"
    ) == []


def test_sim_determinism_scoped_to_sim_code():
    checker = get_checker("sim-determinism")
    assert checker.applies_to("src/repro/simkit/core.py")
    assert checker.applies_to("src/repro/perfmodel/calibration.py")
    # transfer timing legitimately uses perf_counter on real work
    assert not checker.applies_to("src/repro/transfer/db2darray.py")


# ---------------------------------------------------------------------------
# thread-hygiene
# ---------------------------------------------------------------------------

def test_thread_hygiene_flags_mutable_defaults_and_daemons():
    source = """
        import threading

        def collect(x, acc=[]):
            acc.append(x)
            return acc

        def spawn(fn):
            t = threading.Thread(target=fn, daemon=True)
            t.start()
            return t
    """
    violations = check_snippet("thread-hygiene", source)
    assert len(violations) == 2
    assert "mutable default" in violations[0].message
    assert "daemon" in violations[1].message


def test_thread_hygiene_accepts_none_default_and_joined_threads():
    source = """
        import threading

        def collect(x, acc=None):
            acc = [] if acc is None else acc
            acc.append(x)
            return acc

        def run(fn):
            t = threading.Thread(target=fn)
            t.start()
            t.join()
    """
    assert check_snippet("thread-hygiene", source) == []


# ---------------------------------------------------------------------------
# no-full-materialization
# ---------------------------------------------------------------------------

def test_materialization_flags_whole_table_calls_on_hot_paths():
    source = """
        def run(self, table, cluster):
            everything = table.scan_all(["a", "b"])
            segment = table.segments[0].read_columns(["a"])
            node = cluster.scan_node_with_failover(table, 0, ["a"])
            return everything, segment, node
    """
    violations = check_snippet(
        "no-full-materialization", source,
        relpath="src/repro/vertica/executor.py",
    )
    assert [v.message.split("'")[1] for v in violations] == [
        "scan_all", "read_columns", "scan_node_with_failover",
    ]
    assert all("stream rowgroup batches" in v.message for v in violations)


def test_materialization_accepts_streaming_and_local_defs():
    source = """
        def run(self, table, cluster, needed):
            # A *definition* named like a forbidden call is fine — only
            # calls materialize.
            def scan_node(source):
                return list(source)

            sources = cluster.stream_table_per_node(table, needed)
            for rowgroup in table.segments[0].iter_rowgroups(sorted(needed)):
                yield rowgroup
    """
    assert check_snippet(
        "no-full-materialization", source,
        relpath="src/repro/transfer/vft.py",
    ) == []


def test_materialization_scoped_to_hot_paths():
    source = """
        def pull(table):
            return table.scan_all(None)
    """
    checker = get_checker("no-full-materialization")
    assert not checker.applies_to("src/repro/vertica/joins.py")
    assert not checker.applies_to("src/repro/storage/table.py")
    assert checker.applies_to("src/repro/vertica/cluster.py")
    assert checker.applies_to("src/repro/transfer/streams.py")


# ---------------------------------------------------------------------------
# snapshot-reads
# ---------------------------------------------------------------------------

def test_snapshot_reads_flags_raw_segment_reads():
    source = """
        def pull(self, segment, columns):
            groups = list(segment.iter_rowgroups(columns))
            batches = list(segment.iter_batches(columns, None, counter))
            whole = segment.read_columns(columns)
            return groups, batches, whole
    """
    violations = check_snippet(
        "snapshot-reads", source, relpath="src/repro/transfer/vft.py",
    )
    assert [v.message.split("'")[1] for v in violations] == [
        "iter_rowgroups", "iter_batches", "read_columns",
    ]
    assert all("bypasses delete-vector" in v.message for v in violations)


def test_snapshot_reads_accepts_explicit_snapshot():
    source = """
        def pull(self, segment, columns, snapshot):
            for group in segment.iter_rowgroups(columns, snapshot=snapshot):
                yield group
            # snapshot=None documents "resolve the latest committed epoch".
            yield segment.read_columns(columns, snapshot=None)
    """
    assert check_snippet(
        "snapshot-reads", source, relpath="src/repro/vertica/executor.py",
    ) == []


def test_snapshot_reads_exempts_storage_and_txn_layers():
    checker = get_checker("snapshot-reads")
    assert not checker.applies_to("src/repro/storage/files.py")
    assert not checker.applies_to("src/repro/vertica/txn/mover.py")
    assert not checker.applies_to("src/repro/vertica/table.py")
    assert checker.applies_to("src/repro/vertica/executor.py")
    assert checker.applies_to("src/repro/transfer/vft.py")
    assert not checker.applies_to("tests/test_vertica_engine.py")


# ---------------------------------------------------------------------------
# registry-drift (RL901/RL902/RL903, project scope)
# ---------------------------------------------------------------------------

def _drift_project(tmp_path: Path, engine_body: str) -> ProjectContext:
    """Fake src/ tree with tiny registry modules and one engine file."""
    metrics = tmp_path / "src/repro/obs/metrics.py"
    metrics.parent.mkdir(parents=True)
    metrics.write_text(
        textwrap.dedent(
            """
            def _spec(name, kind):
                return name

            CATALOG = {
                "rows.scanned": _spec("rows.scanned", "counter"),
                "bytes.sent": _spec("bytes.sent", "counter"),
            }
            """
        ),
        encoding="utf-8",
    )

    sites = tmp_path / "src/repro/faults/sites.py"
    sites.parent.mkdir(parents=True)
    sites.write_text(
        'FAULT_SITES = {"vft.send_chunk": "chunk send", "dr.task": "task"}\n',
        encoding="utf-8",
    )

    trace = tmp_path / "src/repro/obs/trace.py"
    trace.write_text(
        'SPAN_TAXONOMY = {"query": "one statement", "scan": "a scan"}\n',
        encoding="utf-8",
    )

    engine = tmp_path / "src/repro/vertica/engine.py"
    engine.parent.mkdir(parents=True)
    engine.write_text(textwrap.dedent(engine_body), encoding="utf-8")

    return ProjectContext(tmp_path, [metrics, sites, trace, engine])


def test_metric_drift_catches_undeclared_metric_names(tmp_path):
    project = _drift_project(
        tmp_path,
        """
        def run(self, plan):
            self.telemetry.add("rows.scanned", 3)        # declared: fine
            self.telemetry.observe_max("rows.scaned", 9) # typo: drift
            counter = self.registry.counter("bytes.snt") # typo: drift
            plan.record("anything.goes")                 # not a metric API
        """,
    )
    checker = get_checker("metric-drift")
    violations = list(checker.check_project(project))
    assert [v.message.split("'")[1] for v in violations] == [
        "rows.scaned", "bytes.snt",
    ]
    assert all(v.code == "RL901" for v in violations)
    assert all("CATALOG" in v.message for v in violations)


def test_fault_site_drift_catches_unregistered_sites(tmp_path):
    project = _drift_project(
        tmp_path,
        """
        def run(self, plan):
            plan.perturb("vft.send_chunk")   # registered: fine
            plan.perturb("vft.send_chnk")    # typo: drift
            plan.perturb(self.site)          # dynamic: out of scope
        """,
    )
    checker = get_checker("fault-site-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert violations[0].code == "RL902"
    assert "vft.send_chnk" in violations[0].message
    assert "FAULT_SITES" in violations[0].message


def test_span_drift_catches_untaxonomied_span_names(tmp_path):
    project = _drift_project(
        tmp_path,
        """
        def run(self):
            with self.tracer.span("query"):   # documented: fine
                with self.tracer.span("quary"):
                    pass
        """,
    )
    checker = get_checker("span-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert violations[0].code == "RL903"
    assert "quary" in violations[0].message
    assert "SPAN_TAXONOMY" in violations[0].message


def test_registry_drift_clean_engine_passes(tmp_path):
    project = _drift_project(
        tmp_path,
        """
        def run(self, plan):
            self.telemetry.add("rows.scanned", 1)
            self.telemetry.gauge_add("bytes.sent", 64)
            plan.perturb("dr.task")
            with self.tracer.span("scan", node=0):
                pass
        """,
    )
    for rule in ("metric-drift", "fault-site-drift", "span-drift"):
        assert list(get_checker(rule).check_project(project)) == []


def test_registry_drift_reports_missing_registry(tmp_path):
    """A moved/renamed registry module is itself a finding, not a silent pass."""
    project = _drift_project(tmp_path, "def run(self): pass\n")
    (tmp_path / "src/repro/faults/sites.py").unlink()
    violations = list(get_checker("fault-site-drift").check_project(project))
    assert len(violations) == 1
    assert "cannot extract FAULT_SITES" in violations[0].message


def test_registry_drift_ignores_tests(tmp_path):
    """tests/ may invent ad-hoc metric/site/span names freely."""
    project = _drift_project(tmp_path, "def run(self): pass\n")
    test_file = tmp_path / "tests/test_x.py"
    test_file.parent.mkdir()
    test_file.write_text(
        'def test_x(plan):\n    plan.perturb("made.up.site")\n',
        encoding="utf-8",
    )
    project = ProjectContext(tmp_path, list(project.files) + [test_file])
    assert list(get_checker("fault-site-drift").check_project(project)) == []


# ---------------------------------------------------------------------------
# model-type-drift (RL904, project scope)
# ---------------------------------------------------------------------------

def _model_type_project(tmp_path: Path, *, codec: bool,
                        predictor: bool) -> ProjectContext:
    """Fake tree: one algorithm declaring model_type='widget', with the
    deploy registries optionally covering it."""
    algo = tmp_path / "src/repro/algorithms/widget.py"
    algo.parent.mkdir(parents=True)
    algo.write_text(
        textwrap.dedent(
            """
            class WidgetModel:
                model_type = "widget"

            class _Helper:
                pass
            """
        ),
        encoding="utf-8",
    )

    serialize = tmp_path / "src/repro/deploy/serialize.py"
    serialize.parent.mkdir(parents=True)
    codec_call = (
        'register_model_codec("widget", WidgetModel, to_state, from_state)\n'
        if codec else ""
    )
    serialize.write_text(
        "def register_model_codec(name, cls, to_state, from_state): pass\n"
        'register_model_codec("glm", None, None, None)\n' + codec_call,
        encoding="utf-8",
    )

    predict = tmp_path / "src/repro/deploy/predict_functions.py"
    predictor_cls = (
        'class WidgetPredict:\n    expected_model_type = "widget"\n'
        if predictor else ""
    )
    predict.write_text(
        'class GlmPredict:\n    expected_model_type = "glm"\n' + predictor_cls,
        encoding="utf-8",
    )

    return ProjectContext(tmp_path, [algo, serialize, predict])


def test_model_type_drift_flags_missing_codec_and_predictor(tmp_path):
    checker = get_checker("model-type-drift")
    violations = list(checker.check_project(
        _model_type_project(tmp_path, codec=False, predictor=False)
    ))
    assert len(violations) == 2
    assert all(v.code == "RL904" for v in violations)
    assert all(v.symbol == "WidgetModel" for v in violations)
    assert "no serializer" in violations[0].message
    assert "no prediction function" in violations[1].message


def test_model_type_drift_flags_one_sided_gaps(tmp_path):
    checker = get_checker("model-type-drift")
    no_codec = list(checker.check_project(
        _model_type_project(tmp_path / "a", codec=False, predictor=True)
    ))
    assert [v.message for v in no_codec] and "no serializer" in no_codec[0].message
    no_predict = list(checker.check_project(
        _model_type_project(tmp_path / "b", codec=True, predictor=False)
    ))
    assert len(no_predict) == 1
    assert "no prediction function" in no_predict[0].message


def test_model_type_drift_clean_when_both_registered(tmp_path):
    checker = get_checker("model-type-drift")
    assert list(checker.check_project(
        _model_type_project(tmp_path, codec=True, predictor=True)
    )) == []


def test_model_type_drift_accepts_make_prediction_function(tmp_path):
    project = _model_type_project(tmp_path, codec=True, predictor=False)
    predict = tmp_path / "src/repro/deploy/predict_functions.py"
    predict.write_text(
        predict.read_text(encoding="utf-8")
        + 'fn = make_prediction_function("widgetPredict", "widget", score)\n',
        encoding="utf-8",
    )
    assert list(get_checker("model-type-drift").check_project(project)) == []


def test_model_type_drift_reports_missing_registry(tmp_path):
    project = _model_type_project(tmp_path, codec=True, predictor=True)
    (tmp_path / "src/repro/deploy/serialize.py").unlink()
    violations = list(get_checker("model-type-drift").check_project(project))
    assert len(violations) == 1
    assert "cannot extract" in violations[0].message


def test_model_type_drift_clean_on_real_tree():
    """Every model family in the live tree is fully wired into deploy."""
    checker = get_checker("model-type-drift")
    assert list(checker.check_project(ProjectContext(REPO_ROOT, []))) == []


# ---------------------------------------------------------------------------
# serving-registry-drift (RL905, project scope)
# ---------------------------------------------------------------------------

def _serving_manifest_project(tmp_path: Path,
                              manifest_body: str) -> ProjectContext:
    """Fake tree: registries with one serving-owned entry each, plus the
    serving instruments manifest under test."""
    metrics = tmp_path / "src/repro/obs/metrics.py"
    metrics.parent.mkdir(parents=True)
    metrics.write_text(
        textwrap.dedent(
            """
            def _spec(name, kind, unit, description, module):
                return name

            CATALOG = {
                "rows.scanned": _spec(
                    "rows.scanned", "counter", "1", "rows",
                    "repro.vertica.engine"),
                "sessions_active": _spec(
                    "sessions_active", "gauge", "1", "open sessions",
                    "repro.serving.server"),
            }
            """
        ),
        encoding="utf-8",
    )

    sites = tmp_path / "src/repro/faults/sites.py"
    sites.parent.mkdir(parents=True)
    sites.write_text(
        'FAULT_SITES = {"dr.task": "task", "serving.admit": "slot grant"}\n',
        encoding="utf-8",
    )

    trace = tmp_path / "src/repro/obs/trace.py"
    trace.write_text(
        'SPAN_TAXONOMY = {"query": "one statement", '
        '"serve.admit": "queue wait"}\n',
        encoding="utf-8",
    )

    manifest = tmp_path / "src/repro/serving/instruments.py"
    manifest.parent.mkdir(parents=True)
    manifest.write_text(textwrap.dedent(manifest_body), encoding="utf-8")

    return ProjectContext(tmp_path, [metrics, sites, trace, manifest])


COMPLETE_SERVING_MANIFEST = """
    SERVING_METRICS = ("sessions_active",)
    SERVING_SPANS = ("serve.admit",)
    SERVING_FAULT_SITES = ("serving.admit",)
"""


def test_serving_manifest_complete_passes(tmp_path):
    project = _serving_manifest_project(tmp_path, COMPLETE_SERVING_MANIFEST)
    checker = get_checker("serving-registry-drift")
    assert list(checker.check_project(project)) == []


def test_serving_manifest_catches_unregistered_names(tmp_path):
    """Forward direction: every manifest entry must exist in its registry."""
    project = _serving_manifest_project(
        tmp_path,
        """
        SERVING_METRICS = ("sessions_active", "sessions_actve")
        SERVING_SPANS = ("serve.admit",)
        SERVING_FAULT_SITES = ("serving.admit",)
        """,
    )
    checker = get_checker("serving-registry-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert violations[0].code == "RL905"
    assert "sessions_actve" in violations[0].message
    assert "does not exist" in violations[0].message


def test_serving_manifest_catches_unlisted_registry_entries(tmp_path):
    """Reverse direction: a serving-owned registry entry (serve.* span,
    serving.* site, repro.serving-module metric) must be in the manifest."""
    project = _serving_manifest_project(
        tmp_path,
        """
        SERVING_METRICS = ("sessions_active",)
        SERVING_SPANS = ()
        SERVING_FAULT_SITES = ("serving.admit",)
        """,
    )
    checker = get_checker("serving-registry-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert "serve.admit" in violations[0].message
    assert "missing from SERVING_SPANS" in violations[0].message


def test_serving_manifest_missing_file_is_a_finding(tmp_path):
    project = _serving_manifest_project(tmp_path, COMPLETE_SERVING_MANIFEST)
    (tmp_path / "src/repro/serving/instruments.py").unlink()
    checker = get_checker("serving-registry-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert "cannot extract the instruments manifest" in violations[0].message


# ---------------------------------------------------------------------------
# aqp-registry-drift (RL906, project scope)
# ---------------------------------------------------------------------------

def _aqp_manifest_project(tmp_path: Path, manifest_body: str) -> ProjectContext:
    """Fake tree: registries with one AQP-owned entry each, plus the AQP
    instruments manifest under test."""
    metrics = tmp_path / "src/repro/obs/metrics.py"
    metrics.parent.mkdir(parents=True)
    metrics.write_text(
        textwrap.dedent(
            """
            def _spec(name, kind, unit, description, module):
                return name

            CATALOG = {
                "rows.scanned": _spec(
                    "rows.scanned", "counter", "1", "rows",
                    "repro.vertica.engine"),
                "samples_built": _spec(
                    "samples_built", "counter", "1", "samples",
                    "repro.aqp.build"),
            }
            """
        ),
        encoding="utf-8",
    )

    sites = tmp_path / "src/repro/faults/sites.py"
    sites.parent.mkdir(parents=True)
    sites.write_text(
        'FAULT_SITES = {"dr.task": "task", "aqp.refresh": "refresh pass"}\n',
        encoding="utf-8",
    )

    trace = tmp_path / "src/repro/obs/trace.py"
    trace.write_text(
        'SPAN_TAXONOMY = {"query": "one statement", '
        '"aqp.rewrite": "sample estimation"}\n',
        encoding="utf-8",
    )

    manifest = tmp_path / "src/repro/aqp/instruments.py"
    manifest.parent.mkdir(parents=True)
    manifest.write_text(textwrap.dedent(manifest_body), encoding="utf-8")

    return ProjectContext(tmp_path, [metrics, sites, trace, manifest])


COMPLETE_AQP_MANIFEST = """
    AQP_METRICS = ("samples_built",)
    AQP_SPANS = ("aqp.rewrite",)
    AQP_FAULT_SITES = ("aqp.refresh",)
"""


def test_aqp_manifest_complete_passes(tmp_path):
    project = _aqp_manifest_project(tmp_path, COMPLETE_AQP_MANIFEST)
    checker = get_checker("aqp-registry-drift")
    assert list(checker.check_project(project)) == []


def test_aqp_manifest_catches_unregistered_names(tmp_path):
    project = _aqp_manifest_project(
        tmp_path,
        """
        AQP_METRICS = ("samples_built", "samples_bilt")
        AQP_SPANS = ("aqp.rewrite",)
        AQP_FAULT_SITES = ("aqp.refresh",)
        """,
    )
    checker = get_checker("aqp-registry-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert violations[0].code == "RL906"
    assert "samples_bilt" in violations[0].message
    assert "does not exist" in violations[0].message


def test_aqp_manifest_catches_unlisted_registry_entries(tmp_path):
    project = _aqp_manifest_project(
        tmp_path,
        """
        AQP_METRICS = ("samples_built",)
        AQP_SPANS = ()
        AQP_FAULT_SITES = ("aqp.refresh",)
        """,
    )
    checker = get_checker("aqp-registry-drift")
    violations = list(checker.check_project(project))
    assert len(violations) == 1
    assert "aqp.rewrite" in violations[0].message
    assert "missing from AQP_SPANS" in violations[0].message


def test_serving_manifest_missing_tuple_is_a_finding(tmp_path):
    project = _serving_manifest_project(
        tmp_path,
        """
        SERVING_METRICS = ("sessions_active",)
        SERVING_SPANS = ("serve.admit",)
        """,
    )
    checker = get_checker("serving-registry-drift")
    violations = list(checker.check_project(project))
    assert any("SERVING_FAULT_SITES tuple" in v.message for v in violations)


def test_serving_registry_drift_clean_on_real_tree():
    """The live manifest agrees with the live registries, both directions."""
    checker = get_checker("serving-registry-drift")
    assert list(checker.check_project(ProjectContext(REPO_ROOT, []))) == []


# ---------------------------------------------------------------------------
# suppressions and baseline
# ---------------------------------------------------------------------------

def test_inline_suppression_silences_one_rule():
    source = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = {}

            def put(self, key, value):
                self._items[key] = value  # reprolint: ignore[lock-discipline]
    """
    assert check_snippet("lock-discipline", source) == []


def test_inline_suppression_is_rule_specific():
    source = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def put(self, key, value):
                self._items[key] = value  # reprolint: ignore[sim-determinism]
    """
    assert len(check_snippet("lock-discipline", source)) == 1


def test_baseline_requires_justification(tmp_path):
    baseline_file = tmp_path / "reprolint.baseline"
    baseline_file.write_text(
        "lock-discipline | src/x.py | Store.put |\n", encoding="utf-8"
    )
    baseline = load_baseline(baseline_file)
    assert baseline.entries == []
    assert any("no justification" in err for err in baseline.errors)


def test_baseline_accepts_matching_violation(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "bad.py").write_text(textwrap.dedent(LOCKED_CLASS_BAD), encoding="utf-8")
    baseline_file = tmp_path / "reprolint.baseline"

    # Without a baseline: violations reported, exit 1.
    import io

    out = io.StringIO()
    assert reprolint_run(tmp_path, ["src"], select=["lock-discipline"], out=out) == 1
    assert "lock-discipline" in out.getvalue()

    baseline_file.write_text(
        "lock-discipline | src/bad.py | Store.put | demo fixture\n"
        "lock-discipline | src/bad.py | Store.bump | demo fixture\n",
        encoding="utf-8",
    )
    out = io.StringIO()
    assert reprolint_run(tmp_path, ["src"], select=["lock-discipline"], out=out) == 0
    assert "2 baselined" in out.getvalue()


def test_stale_baseline_entries_fail_the_run(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "bad.py").write_text(textwrap.dedent(LOCKED_CLASS_BAD), encoding="utf-8")
    (tmp_path / "reprolint.baseline").write_text(
        "lock-discipline | src/bad.py | Store.put | demo fixture\n"
        "lock-discipline | src/bad.py | Store.bump | demo fixture\n"
        "lock-discipline | src/bad.py | Store.gone | method was deleted\n",
        encoding="utf-8",
    )
    import io

    out = io.StringIO()
    assert reprolint_run(tmp_path, ["src"], select=["lock-discipline"], out=out) == 1
    assert "stale-baseline" in out.getvalue()
    assert "Store.gone" in out.getvalue()


def test_prune_baseline_drops_only_stale_entries(tmp_path):
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "bad.py").write_text(textwrap.dedent(LOCKED_CLASS_BAD), encoding="utf-8")
    baseline_file = tmp_path / "reprolint.baseline"
    baseline_file.write_text(
        "# accepted findings\n"
        "\n"
        "lock-discipline | src/bad.py | Store.put | demo fixture\n"
        "lock-discipline | src/bad.py | Store.gone | method was deleted\n"
        "lock-discipline | src/bad.py | Store.bump | demo fixture\n",
        encoding="utf-8",
    )
    import io

    out = io.StringIO()
    assert reprolint_run(
        tmp_path, ["src"], select=["lock-discipline"], prune=True, out=out
    ) == 0
    assert "pruned 1 stale" in out.getvalue()
    assert baseline_file.read_text(encoding="utf-8") == (
        "# accepted findings\n"
        "\n"
        "lock-discipline | src/bad.py | Store.put | demo fixture\n"
        "lock-discipline | src/bad.py | Store.bump | demo fixture\n"
    )

    # A second prune is a no-op: nothing stale remains.
    out = io.StringIO()
    assert reprolint_run(
        tmp_path, ["src"], select=["lock-discipline"], prune=True, out=out
    ) == 0
    assert "pruned" not in out.getvalue()


def test_prune_baseline_does_not_mask_violations(tmp_path):
    """--prune-baseline still exits 1 when unbaselined findings remain."""
    src_dir = tmp_path / "src"
    src_dir.mkdir()
    (src_dir / "bad.py").write_text(textwrap.dedent(LOCKED_CLASS_BAD), encoding="utf-8")
    baseline_file = tmp_path / "reprolint.baseline"
    baseline_file.write_text(
        "lock-discipline | src/bad.py | Store.gone | method was deleted\n",
        encoding="utf-8",
    )
    import io

    out = io.StringIO()
    assert reprolint_run(
        tmp_path, ["src"], select=["lock-discipline"], prune=True, out=out
    ) == 1
    assert "Store.put" in out.getvalue()
    assert baseline_file.read_text(encoding="utf-8") == ""


def test_repo_tree_is_clean_end_to_end():
    """`python -m reprolint src tests` exits 0 on the committed tree."""
    proc = subprocess.run(
        [sys.executable, "-m", "reprolint", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 violation(s)" in proc.stdout


# ---------------------------------------------------------------------------
# runtime race probe
# ---------------------------------------------------------------------------

def _acquire_in_thread(fn) -> Exception | None:
    """Run fn in a worker thread, returning the exception it raised (if any)."""
    box: list[Exception | None] = [None]

    def runner():
        try:
            fn()
        except Exception as exc:  # pragma: no cover - assertion carrier
            box[0] = exc

    t = threading.Thread(target=runner)
    t.start()
    t.join(timeout=30)
    assert not t.is_alive(), "probe thread deadlocked"
    return box[0]


def test_instrumented_lock_detects_inverted_order():
    monitor = LockOrderMonitor()
    lock_a = InstrumentedLock("A", monitor=monitor)
    lock_b = InstrumentedLock("B", monitor=monitor)

    def forward():
        with lock_a:
            with lock_b:
                pass

    assert _acquire_in_thread(forward) is None

    # Opposite nesting on another thread: must fail *before* deadlocking.
    def inverted():
        with lock_b:
            with lock_a:
                pass

    error = _acquire_in_thread(inverted)
    assert isinstance(error, LockOrderInversion)
    message = str(error)
    assert "'A'" in message and "'B'" in message


def test_instrumented_lock_accepts_consistent_order():
    monitor = LockOrderMonitor()
    locks = [InstrumentedLock(f"L{i}", monitor=monitor) for i in range(3)]

    def nested():
        with locks[0]:
            with locks[1]:
                with locks[2]:
                    pass

    for _ in range(3):
        assert _acquire_in_thread(nested) is None
    assert monitor.edge_count() >= 2


def test_instrumented_lock_detects_transitive_cycle():
    monitor = LockOrderMonitor()
    a = InstrumentedLock("A", monitor=monitor)
    b = InstrumentedLock("B", monitor=monitor)
    c = InstrumentedLock("C", monitor=monitor)

    def ab():
        with a:
            with b:
                pass

    def bc():
        with b:
            with c:
                pass

    assert _acquire_in_thread(ab) is None
    assert _acquire_in_thread(bc) is None

    # A -> B -> C recorded; acquiring A under C closes the cycle.
    def ca():
        with c:
            with a:
                pass

    error = _acquire_in_thread(ca)
    assert isinstance(error, LockOrderInversion)


def test_instrumented_lock_is_a_drop_in_lock():
    lock = InstrumentedLock("plain", monitor=LockOrderMonitor())
    assert lock.acquire()
    assert lock.locked()
    assert not lock.acquire(blocking=False)
    lock.release()
    assert not lock.locked()
    with lock:
        assert lock.locked()

    # Works as the inner lock of a Condition (queue.Queue does this).
    cond = threading.Condition(InstrumentedLock("cond", monitor=LockOrderMonitor()))
    with cond:
        cond.notify_all()


def test_engine_workflow_has_no_lock_inversions():
    """Exercise the real transfer + predict path under instrumented locks."""
    import numpy as np

    from reprolint import runtime

    runtime.install()
    try:
        from repro import (
            VerticaCluster,
            db2darray_with_response,
            deploy_model,
            hpdglm,
            start_session,
        )

        cluster = VerticaCluster(node_count=2)
        rng = np.random.default_rng(11)
        columns = {
            "a": rng.normal(size=200),
            "b": rng.normal(size=200),
            "y": rng.normal(size=200),
        }
        cluster.create_table_like("probe_pts", columns)
        cluster.bulk_load("probe_pts", columns)

        with start_session(node_count=2, instances_per_node=2) as session:
            y, x = db2darray_with_response(
                cluster, "probe_pts", "y", ["a", "b"], session
            )
            assert x.collect().shape == (200, 2)
            model = hpdglm(y, x, family="gaussian")

        deploy_model(cluster, model, "probe_lm")
        result = cluster.sql(
            "SELECT glmPredict(a, b USING PARAMETERS model='probe_lm') "
            "OVER (PARTITION BEST) FROM probe_pts"
        )
        assert len(result) == 200
    finally:
        runtime.uninstall()
