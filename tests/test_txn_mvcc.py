"""MVCC engine tests: epochs, delete vectors, WOS/ROS, and the Tuple Mover.

The acceptance bar for the mutation engine: every scan — eager or
streaming, SQL aggregate or prediction UDTF — is consistent with *some*
committed epoch while inserts and deletes run concurrently; ``AT EPOCH``
reproduces historical counts exactly; and Tuple Mover moveout/mergeout are
invisible to any still-reachable snapshot.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ExecutionError, SqlAnalysisError, SqlSyntaxError
from repro.storage import ColumnSchema, SqlType
from repro.vertica import HashSegmentation, VerticaCluster
from repro.vertica.txn import DeleteVector, EpochClock, TupleMoverConfig

NODE_COUNT = 3


def make_cluster(mover: TupleMoverConfig | None = None) -> VerticaCluster:
    cluster = VerticaCluster(node_count=NODE_COUNT, mover=mover)
    cluster.create_table(
        "t",
        [ColumnSchema("k", SqlType.INTEGER), ColumnSchema("v", SqlType.FLOAT)],
        segmentation=HashSegmentation("k"),
    )
    return cluster


def load(cluster: VerticaCluster, n: int, key_base: int = 0) -> None:
    cluster.bulk_load("t", {
        "k": np.arange(key_base, key_base + n),
        "v": np.full(n, 1.0),
    })


def count(cluster: VerticaCluster, at_epoch: int | None = None) -> int:
    prefix = f"AT EPOCH {at_epoch} " if at_epoch is not None else ""
    return int(cluster.sql(prefix + "SELECT count(*) FROM t").scalar())


# ---------------------------------------------------------------------------
# epoch clock
# ---------------------------------------------------------------------------

class TestEpochClock:
    def test_watermark_trails_pending_commits(self):
        clock = EpochClock()
        e1 = clock.begin()
        e2 = clock.begin()
        assert e2 == e1 + 1
        assert clock.current_epoch == e1 - 1  # both still pending
        clock.commit(e2)
        assert clock.current_epoch == e1 - 1  # e1 still blocks the watermark
        clock.commit(e1)
        assert clock.current_epoch == e2

    def test_abort_releases_the_watermark(self):
        clock = EpochClock()
        e1 = clock.begin()
        e2 = clock.begin()
        clock.commit(e2)
        clock.abort(e1)
        assert clock.current_epoch == e2

    def test_snapshot_rejects_future_and_purged_epochs(self):
        clock = EpochClock()
        clock.commit(clock.begin())
        with pytest.raises(ExecutionError):
            clock.snapshot(clock.current_epoch + 1)
        clock.commit(clock.begin())
        clock.advance_ahm(clock.current_epoch)
        with pytest.raises(ExecutionError):
            clock.snapshot(clock.ancient_history_mark - 1)
        # The AHM itself is still readable.
        assert clock.snapshot(clock.ancient_history_mark) is not None

    def test_ahm_is_clamped_and_never_retreats(self):
        clock = EpochClock()
        for _ in range(3):
            clock.commit(clock.begin())
        clock.advance_ahm(10_000)
        assert clock.ancient_history_mark == clock.current_epoch
        clock.advance_ahm(1)
        assert clock.ancient_history_mark == clock.current_epoch

    def test_on_advance_reports_watermark_deltas(self):
        deltas = []
        clock = EpochClock()
        clock.on_advance = deltas.append
        e1, e2 = clock.begin(), clock.begin()
        clock.commit(e2)            # watermark unchanged: no callback
        clock.commit(e1)            # watermark jumps over both
        assert sum(deltas) == 2


class TestDeleteVector:
    def test_first_delete_wins(self):
        dv = DeleteVector()
        assert dv.add(np.asarray([1, 2]), epoch=5) == 2
        assert dv.add(np.asarray([2, 3]), epoch=9) == 1
        frozen = dv.frozen()
        # Row 2 keeps its original epoch 5, so it is already invisible at 5.
        assert frozen.keep_mask(np.asarray([1, 2, 3]), epoch=5).tolist() == \
            [False, False, True]
        assert frozen.count_at(5) == 2
        assert frozen.count_at(9) == 3

    def test_rollback_drops_exactly_one_statement(self):
        dv = DeleteVector()
        dv.add(np.asarray([1]), epoch=5)
        dv.add(np.asarray([2, 3]), epoch=6)
        assert dv.rollback_epoch(6) == 2
        assert len(dv) == 1
        assert dv.frozen().keep_mask(np.asarray([2, 3]), epoch=9).all()

    def test_purge_is_copy_on_write(self):
        dv = DeleteVector()
        dv.add(np.asarray([1, 2]), epoch=3)
        before = dv.frozen()
        dv.purge(np.asarray([1]))
        # The earlier frozen capture still filters both rows.
        assert (~before.keep_mask(np.asarray([1, 2]), epoch=3)).all()
        assert dv.frozen().keep_mask(np.asarray([1]), epoch=3).all()


# ---------------------------------------------------------------------------
# SQL surface
# ---------------------------------------------------------------------------

class TestSqlMutations:
    def test_delete_filters_and_reports_count(self):
        cluster = make_cluster()
        load(cluster, 100)
        assert cluster.sql("DELETE FROM t WHERE k < 30").scalar() == 30
        assert count(cluster) == 70
        # Deleted keys are gone from every query shape.
        assert cluster.sql("SELECT MIN(k) AS lo FROM t").scalar() == 30

    def test_delete_without_where_empties_the_table(self):
        cluster = make_cluster()
        load(cluster, 50)
        assert cluster.sql("DELETE FROM t").scalar() == 50
        assert count(cluster) == 0

    def test_redelete_is_a_noop(self):
        cluster = make_cluster()
        load(cluster, 40)
        assert cluster.sql("DELETE FROM t WHERE k < 10").scalar() == 10
        assert cluster.sql("DELETE FROM t WHERE k < 10").scalar() == 0
        assert count(cluster) == 30

    def test_update_rewrites_matched_rows(self):
        cluster = make_cluster()
        load(cluster, 60)
        assert cluster.sql(
            "UPDATE t SET v = v + 9 WHERE k >= 50").scalar() == 10
        assert count(cluster) == 60
        assert cluster.sql("SELECT SUM(v) AS s FROM t").scalar() == \
            pytest.approx(60 + 90)

    def test_update_is_atomic_under_at_epoch(self):
        cluster = make_cluster()
        load(cluster, 30)
        before = cluster.current_epoch
        cluster.sql("UPDATE t SET v = 5.0 WHERE k < 30")
        assert cluster.sql(
            f"AT EPOCH {before} SELECT SUM(v) AS s FROM t").scalar() == 30.0
        assert cluster.sql("SELECT SUM(v) AS s FROM t").scalar() == 150.0

    def test_r_models_rejects_mutation(self):
        cluster = make_cluster()
        with pytest.raises(SqlAnalysisError):
            cluster.sql("DELETE FROM R_Models")
        with pytest.raises(SqlAnalysisError):
            cluster.sql("UPDATE R_Models SET owner = 'x'")

    def test_update_validates_set_targets(self):
        cluster = make_cluster()
        load(cluster, 10)
        with pytest.raises(SqlAnalysisError):
            cluster.sql("UPDATE t SET nope = 1")
        with pytest.raises(SqlAnalysisError):
            cluster.sql("UPDATE t SET v = 1, v = 2")

    def test_at_epoch_only_wraps_select(self):
        cluster = make_cluster()
        with pytest.raises(SqlSyntaxError):
            cluster.sql("AT EPOCH 1 DELETE FROM t")

    def test_at_epoch_bounds_checked(self):
        cluster = make_cluster()
        load(cluster, 10)
        with pytest.raises(ExecutionError):
            cluster.sql(f"AT EPOCH {cluster.current_epoch + 5} "
                        "SELECT count(*) FROM t")

    def test_at_epoch_latest_matches_plain_select(self):
        cluster = make_cluster()
        load(cluster, 25)
        cluster.sql("DELETE FROM t WHERE k < 5")
        assert cluster.sql(
            "AT EPOCH LATEST SELECT count(*) FROM t").scalar() == 20


class TestTimeTravel:
    def test_every_mutation_epoch_is_replayable(self):
        cluster = make_cluster()
        history = []
        load(cluster, 50)
        history.append((cluster.current_epoch, 50))
        cluster.sql("DELETE FROM t WHERE k < 20")
        history.append((cluster.current_epoch, 30))
        load(cluster, 15, key_base=100)
        history.append((cluster.current_epoch, 45))
        cluster.sql("UPDATE t SET v = 2.0 WHERE k >= 100")
        history.append((cluster.current_epoch, 45))
        for epoch, expected in history:
            assert count(cluster, at_epoch=epoch) == expected


# ---------------------------------------------------------------------------
# WOS and the Tuple Mover
# ---------------------------------------------------------------------------

class TestWosAndMover:
    def test_trickle_inserts_visible_before_moveout(self):
        cluster = make_cluster()
        load(cluster, 20)
        for i in range(5):
            cluster.sql(f"INSERT INTO t VALUES ({1000 + i}, 2.0)")
        table = cluster.catalog.get_table("t")
        assert sum(seg.wos_rows for seg in table.segments) == 5
        assert count(cluster) == 25
        cluster.tuple_mover.stop()

    def test_moveout_preserves_scan_order_bit_for_bit(self):
        cluster = make_cluster()
        load(cluster, 30)
        for i in range(6):
            cluster.sql(f"INSERT INTO t VALUES ({1000 + i}, {float(i)})")
        query = "SELECT k, v FROM t"
        before = cluster.sql(query).rows()
        moved = cluster.tuple_mover.run_moveout()
        assert moved == 6
        table = cluster.catalog.get_table("t")
        assert sum(seg.wos_rows for seg in table.segments) == 0
        assert cluster.sql(query).rows() == before
        cluster.tuple_mover.stop()

    def test_mergeout_purges_only_behind_the_ahm(self):
        cluster = make_cluster()
        load(cluster, 80)
        cluster.sql("DELETE FROM t WHERE k < 25")
        # AHM is still at 0: nothing is eligible.
        assert cluster.tuple_mover.run_mergeout() == (0, 0)
        pinned = cluster.current_epoch
        before = cluster.sql(
            f"AT EPOCH {pinned} SELECT k, v FROM t ORDER BY k").rows()
        cluster.advance_ahm()
        rewritten, purged = cluster.tuple_mover.run_mergeout()
        assert rewritten > 0 and purged == 25
        # The still-reachable pinned snapshot is bit-identical post-purge.
        after = cluster.sql(
            f"AT EPOCH {pinned} SELECT k, v FROM t ORDER BY k").rows()
        assert after == before
        assert count(cluster) == 55
        cluster.tuple_mover.stop()

    def test_mover_gauges_reconcile(self):
        cluster = make_cluster()
        load(cluster, 40)
        cluster.sql("DELETE FROM t WHERE k < 10")
        for i in range(4):
            cluster.sql(f"INSERT INTO t VALUES ({500 + i}, 1.0)")
        assert cluster.telemetry.get("wos_rows_now") == 4
        assert cluster.telemetry.get("delete_vector_rows_now") == 10
        cluster.tuple_mover.run_moveout()
        cluster.advance_ahm()
        cluster.tuple_mover.run_mergeout()
        assert cluster.telemetry.get("wos_rows_now") == 0
        assert cluster.telemetry.get("delete_vector_rows_now") == 0
        assert cluster.telemetry.get("mergeout_bytes_rewritten") > 0
        cluster.tuple_mover.stop()

    def test_mover_emits_spans(self):
        cluster = make_cluster()
        load(cluster, 30)
        cluster.sql("DELETE FROM t WHERE k < 5")
        cluster.sql("INSERT INTO t VALUES (900, 1.0)")
        cluster.tuple_mover.run_moveout()
        cluster.advance_ahm()
        cluster.tuple_mover.run_mergeout()
        names = {span.name for span in cluster.tracer.roots()}
        assert "txn.moveout" in names
        assert "txn.mergeout" in names
        cluster.tuple_mover.stop()


# ---------------------------------------------------------------------------
# concurrency: torn batches and the end-to-end demo
# ---------------------------------------------------------------------------

class TestInsertAtomicity:
    BATCH = 50

    def test_concurrent_scans_never_see_a_torn_batch(self):
        """Satellite regression: a whole insert batch commits at one epoch,
        so a scan racing the insert sees a multiple of the batch size.

        This is the stress test to run under ``REPROLINT_LOCK_CHECK=1``:
        the instrumented locks assert ordering while scans race inserts.
        """
        cluster = make_cluster(
            TupleMoverConfig(moveout_rows=1 << 30, moveout_age_seconds=1e9))
        table = cluster.catalog.get_table("t")
        stop = threading.Event()
        failures: list[str] = []

        def writer():
            rng = np.random.default_rng(5)
            try:
                for i in range(40):
                    direct = bool(i % 2)
                    table.insert({
                        "k": rng.integers(0, 10_000, self.BATCH),
                        "v": rng.normal(size=self.BATCH),
                    }, direct=direct)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(repr(exc))
            finally:
                stop.set()

        observed = []
        thread = threading.Thread(target=writer)
        thread.start()
        while not stop.is_set():
            observed.append(count(cluster))
        thread.join()
        observed.append(count(cluster))
        assert not failures, failures
        assert observed[-1] == 40 * self.BATCH
        torn = [n for n in observed if n % self.BATCH != 0]
        assert not torn, f"scans saw torn insert batches: {torn}"
        cluster.tuple_mover.stop()


class TestConcurrencyDemo:
    """The PR's demo: trickle INSERTs and DELETEs race repeated scans while
    the Tuple Mover runs; every scan lands on a committed epoch."""

    def test_scans_are_epoch_consistent_under_mutation(self):
        from repro.algorithms import KMeansModel
        from repro.deploy import deploy_model

        cluster = make_cluster(
            TupleMoverConfig(moveout_rows=32, moveout_age_seconds=0.01,
                             interval_seconds=0.005))
        cluster.create_table("pts", [
            ColumnSchema("k", SqlType.INTEGER),
            ColumnSchema("c0", SqlType.FLOAT),
            ColumnSchema("c1", SqlType.FLOAT),
        ], segmentation=HashSegmentation("k"))
        rng = np.random.default_rng(11)
        n = 400
        cluster.bulk_load("pts", {
            "k": np.arange(n),
            "c0": rng.normal(size=n),
            "c1": rng.normal(size=n),
        })
        deploy_model(cluster, KMeansModel(
            centers=np.asarray([[1.0, 1.0], [-1.0, -1.0]]),
            inertia=0.0, iterations=1, converged=True,
            n_observations=2, cluster_sizes=np.asarray([1, 1]),
        ), "km")

        table = cluster.catalog.get_table("pts")
        history: list[tuple[int, int]] = []   # (epoch, committed count)
        history.append((cluster.current_epoch, n))
        done = threading.Event()

        def mutator():
            rows = n
            deleted_below = 0
            try:
                for i in range(40):
                    if i % 5 == 4:
                        deleted_below += 10
                        gone = int(cluster.sql(
                            f"DELETE FROM pts WHERE k < {deleted_below}"
                        ).scalar())
                        rows -= gone
                    else:
                        batch = 8
                        table.insert({
                            "k": np.arange(1_000 + i * batch,
                                           1_000 + (i + 1) * batch),
                            "c0": rng.normal(size=batch),
                            "c1": rng.normal(size=batch),
                        }, direct=False)
                        cluster.tuple_mover.notify()
                        rows += batch
                    history.append((cluster.current_epoch, rows))
            finally:
                done.set()

        observed: list[int] = []
        thread = threading.Thread(target=mutator)
        thread.start()
        i = 0
        while not done.is_set():
            if i % 8 == 7:
                result = cluster.sql(
                    "SELECT kmeansPredict(c0, c1 USING PARAMETERS "
                    "model='km') OVER (PARTITION BEST) FROM pts")
                observed.append(len(result))
            else:
                observed.append(int(
                    cluster.sql("SELECT count(*) FROM pts").scalar()))
            i += 1
        thread.join()

        committed = {rows for _, rows in history}
        stray = [n_ for n_ in observed if n_ not in committed]
        assert not stray, f"scans saw uncommitted states: {stray}"

        # AT EPOCH reproduces every recorded historical count exactly.
        for epoch, rows in history:
            assert int(cluster.sql(
                f"AT EPOCH {epoch} SELECT count(*) FROM pts"
            ).scalar()) == rows

        # The background mover actually ran during the test.
        deadline = time.monotonic() + 5.0
        while (cluster.tuple_mover.moveout_passes == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert cluster.tuple_mover.moveout_passes > 0

        # Post-mergeout scans are bit-identical to the pre-mergeout
        # snapshot at the same epoch.
        pinned = cluster.current_epoch
        query = f"AT EPOCH {pinned} SELECT k, c0, c1 FROM pts ORDER BY k"
        before = cluster.sql(query).rows()
        cluster.advance_ahm()
        cluster.tuple_mover.run_moveout()
        cluster.tuple_mover.run_mergeout()
        assert cluster.sql(query).rows() == before
        cluster.tuple_mover.stop()
