"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.simkit import (
    AllOf,
    Container,
    Environment,
    Interrupt,
    Monitor,
    Resource,
    Store,
)


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_clock_starts_at_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_run_until_deadline_stops_early(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_deadline_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_peek_empty_queue_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_events_fire_in_time_order(self):
        env = Environment()
        order = []
        for delay in (3.0, 1.0, 2.0):
            env.timeout(delay).callbacks.append(
                lambda event, d=delay: order.append(d)
            )
        env.run()
        assert order == [1.0, 2.0, 3.0]


class TestProcess:
    def test_process_returns_value(self):
        env = Environment()

        def worker(env):
            yield env.timeout(2.0)
            return "done"

        proc = env.process(worker(env))
        assert env.run(proc) == "done"

    def test_sequential_timeouts_accumulate(self):
        env = Environment()

        def worker(env):
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            return env.now

        proc = env.process(worker(env))
        assert env.run(proc) == 3.0

    def test_timeout_value_passed_to_process(self):
        env = Environment()
        seen = []

        def worker(env):
            value = yield env.timeout(1.0, value="payload")
            seen.append(value)

        env.process(worker(env))
        env.run()
        assert seen == ["payload"]

    def test_process_waiting_on_process(self):
        env = Environment()

        def child(env):
            yield env.timeout(5.0)
            return 42

        def parent(env):
            result = yield env.process(child(env))
            return result + 1

        proc = env.process(parent(env))
        assert env.run(proc) == 43

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad(env):
            yield 42

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_failed_event_raises_inside_process(self):
        env = Environment()
        caught = []

        def worker(env):
            event = env.event()
            env.process(failer(env, event))
            try:
                yield event
            except ValueError as exc:
                caught.append(str(exc))

        def failer(env, event):
            yield env.timeout(1.0)
            event.fail(ValueError("boom"))

        env.process(worker(env))
        env.run()
        assert caught == ["boom"]

    def test_interrupt_reaches_process(self):
        env = Environment()
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                log.append((interrupt.cause, env.now))

        def interrupter(env, victim):
            yield env.timeout(1.0)
            victim.interrupt("wake up")

        victim = env.process(sleeper(env))
        env.process(interrupter(env, victim))
        env.run()
        assert log == [("wake up", 1.0)]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(0.0)

        proc = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()

        def worker(env):
            yield env.all_of([env.timeout(1.0), env.timeout(5.0), env.timeout(3.0)])
            return env.now

        proc = env.process(worker(env))
        assert env.run(proc) == 5.0

    def test_any_of_fires_on_first(self):
        env = Environment()

        def worker(env):
            yield env.any_of([env.timeout(4.0), env.timeout(2.0)])
            return env.now

        proc = env.process(worker(env))
        assert env.run(proc) == 2.0

    def test_all_of_empty_is_immediate(self):
        env = Environment()
        condition = AllOf(env, [])
        assert condition.triggered

    def test_event_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.event().value

    def test_double_succeed_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)


class TestResource:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)

    def test_serializes_beyond_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        finish_times = []

        def user(env):
            request = resource.request()
            yield request
            yield env.timeout(10.0)
            resource.release(request)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(user(env))
        env.run()
        assert finish_times == [10.0, 20.0, 30.0]

    def test_parallel_within_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=3)
        finish_times = []

        def user(env):
            request = resource.request()
            yield request
            yield env.timeout(10.0)
            resource.release(request)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(user(env))
        env.run()
        assert finish_times == [10.0, 10.0, 10.0]

    def test_queue_length_tracks_waiters(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        resource.request()
        resource.request()
        resource.request()
        assert resource.count == 1
        assert resource.queue_length == 2

    def test_release_unknown_request_raises(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        other = Resource(env, capacity=1)
        request = other.request()
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_release_waiting_request_cancels_it(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        resource.release(second)  # still queued: cancels cleanly
        assert resource.queue_length == 0
        assert first.triggered


class TestContainer:
    def test_get_blocks_until_put(self):
        env = Environment()
        container = Container(env, capacity=100, init=0)
        times = []

        def consumer(env):
            yield container.get(5)
            times.append(env.now)

        def producer(env):
            yield env.timeout(7.0)
            yield container.put(5)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [7.0]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        container = Container(env, capacity=10, init=10)
        times = []

        def producer(env):
            yield container.put(5)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(3.0)
            yield container.get(6)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [3.0]

    def test_level_bounds_validated(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Container(env, capacity=10, init=11)
        with pytest.raises(SimulationError):
            Container(env, capacity=0)


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == ["a", "b", "c"]

    def test_bounded_capacity_blocks_producer(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put(1)
            yield store.put(2)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [5.0]


class TestMonitor:
    def test_time_average_piecewise_constant(self):
        env = Environment()
        monitor = Monitor(env)

        def observer(env):
            monitor.observe(0.0)
            yield env.timeout(10.0)
            monitor.observe(10.0)
            yield env.timeout(10.0)

        env.process(observer(env))
        env.run()
        assert monitor.time_average() == pytest.approx(5.0)

    def test_extrema(self):
        env = Environment()
        monitor = Monitor(env)
        monitor.observe(3.0)
        monitor.observe(-1.0)
        monitor.observe(2.0)
        assert monitor.maximum() == 3.0
        assert monitor.minimum() == -1.0
        assert monitor.last() == 2.0

    def test_empty_monitor_raises(self):
        monitor = Monitor(Environment())
        with pytest.raises(SimulationError):
            monitor.last()
