"""MLlib-style algorithms on the RDD engine.

"Spark and DR denote the same implementation of the K-means algorithm, and
hence an apples-to-apples comparison" (§7.3.2, Figure 20): the Lloyd kernel
here is literally :func:`repro.algorithms.kmeans.assign_to_centers`, the
same function the Distributed R implementation calls.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.kmeans import KMeansModel, assign_to_centers
from repro.errors import ModelError
from repro.spark.rdd import RDD

__all__ = ["spark_kmeans", "spark_linear_regression"]


def spark_kmeans(
    points_rdd: RDD,
    k: int,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
    seed: int | None = None,
    initial_centers: np.ndarray | None = None,
    iteration_callback=None,
) -> KMeansModel:
    """Lloyd's K-means over an RDD whose items are numpy row-chunks."""
    if k < 1:
        raise ModelError("k must be >= 1")
    points_rdd.cache()

    counts_and_dims = points_rdd.aggregate_partitions(
        lambda i, items: (
            sum(len(chunk) for chunk in items),
            items[0].shape[1] if items else 0,
        )
    )
    n_total = sum(c for c, _ in counts_and_dims)
    dims = [d for _, d in counts_and_dims if d]
    if n_total < k or not dims:
        raise ModelError(f"cannot pick {k} centers from {n_total} points")
    d = dims[0]

    if initial_centers is not None:
        centers = np.asarray(initial_centers, dtype=np.float64).copy()
        if centers.shape != (k, d):
            raise ModelError(f"initial centers must be {(k, d)}")
    else:
        rng = np.random.default_rng(seed)
        sampled = points_rdd.aggregate_partitions(
            lambda i, items: items[0][
                np.random.default_rng((seed or 0) + i).integers(
                    0, len(items[0]), size=min(k, len(items[0]))
                )
            ] if items and len(items[0]) else np.empty((0, d))
        )
        pool = np.vstack(sampled)
        if len(pool) < k:
            raise ModelError("not enough sampled points to seed centers")
        centers = pool[rng.choice(len(pool), size=k, replace=False)]

    inertia = np.inf
    converged = False
    iterations = 0
    counts = np.zeros(k, dtype=np.int64)
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        current = centers

        def lloyd(index: int, items: list):
            sums = np.zeros((k, d))
            partial_counts = np.zeros(k, dtype=np.int64)
            sse = 0.0
            for chunk in items:
                if len(chunk) == 0:
                    continue
                labels, distances = assign_to_centers(chunk, current)
                np.add.at(sums, labels, chunk)
                partial_counts += np.bincount(labels, minlength=k)
                sse += float(distances.sum())
            return sums, partial_counts, sse

        partials = points_rdd.aggregate_partitions(lloyd)
        sums = np.sum([p[0] for p in partials], axis=0)
        counts = np.sum([p[1] for p in partials], axis=0)
        new_inertia = float(np.sum([p[2] for p in partials]))

        new_centers = centers.copy()
        non_empty = counts > 0
        new_centers[non_empty] = sums[non_empty] / counts[non_empty, None]
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if iteration_callback is not None:
            iteration_callback(iteration, new_inertia)
        inertia = new_inertia
        if shift <= tolerance:
            converged = True
            break

    return KMeansModel(
        centers=centers,
        inertia=inertia,
        iterations=iterations,
        converged=converged,
        n_observations=n_total,
        cluster_sizes=np.asarray(counts, dtype=np.int64),
    )


def spark_linear_regression(xy_rdd: RDD, n_features: int):
    """Least squares via distributed normal equations over an RDD.

    Items are numpy chunks whose first column is the response and the rest
    are features (with an intercept fitted).  Returns the coefficient
    vector ``[intercept, b1, ..., bp]``.
    """
    p = n_features + 1

    def partials(index: int, items: list):
        xtx = np.zeros((p, p))
        xty = np.zeros(p)
        for chunk in items:
            if len(chunk) == 0:
                continue
            y = chunk[:, 0]
            x = np.column_stack([np.ones(len(chunk)), chunk[:, 1:]])
            xtx += x.T @ x
            xty += x.T @ y
        return xtx, xty

    results = xy_rdd.aggregate_partitions(partials)
    xtx = np.sum([r[0] for r in results], axis=0)
    xty = np.sum([r[1] for r in results], axis=0)
    return np.linalg.solve(xtx, xty)
