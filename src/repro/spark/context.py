"""SparkContext analog: executors over HDFS with locality-aware tasks."""

from __future__ import annotations

import io
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.spark.hdfs import HdfsCluster
from repro.spark.rdd import RDD
from repro.vertica.telemetry import Telemetry

__all__ = ["SparkContext"]


class SparkContext:
    """Driver + executor pool bound to an HDFS cluster."""

    def __init__(self, hdfs: HdfsCluster, executors_per_node: int = 2) -> None:
        if executors_per_node < 1:
            raise ExecutionError("need at least one executor per node")
        self.hdfs = hdfs
        self.executors_per_node = executors_per_node
        self.telemetry = Telemetry()
        total = hdfs.datanode_count * executors_per_node
        self._pool = ThreadPoolExecutor(max_workers=total, thread_name_prefix="spark-exec")
        self._stopped = False

    @property
    def node_count(self) -> int:
        return self.hdfs.datanode_count

    def run_tasks(self, tasks: list[tuple[int | None, Callable, int]]) -> list:
        """Run (preferred_node, fn, partition) tasks on the executor pool."""
        if self._stopped:
            raise ExecutionError("SparkContext is stopped")
        futures = [self._pool.submit(fn, arg) for _, fn, arg in tasks]
        self.telemetry.add("spark_tasks", len(futures))
        return [future.result() for future in futures]

    # -- RDD constructors ------------------------------------------------------

    def parallelize(self, items: Sequence, npartitions: int | None = None) -> RDD:
        """Distribute an in-memory sequence."""
        data = list(items)
        n = npartitions or max(1, self.node_count)
        boundaries = np.linspace(0, len(data), n + 1).astype(int)
        slices = [data[boundaries[i]:boundaries[i + 1]] for i in range(n)]
        return RDD(self, lambda p: slices[p], n,
                   preferred_nodes=[i % self.node_count for i in range(n)])

    def matrix_from_hdfs(self, path_prefix: str) -> RDD:
        """Load matrices written by :meth:`save_matrix`: one partition per
        HDFS file, items are numpy row-chunks."""
        paths = self.hdfs.list_files(path_prefix)
        if not paths:
            raise ExecutionError(f"no HDFS files under {path_prefix!r}")
        preferred = []
        for path in paths:
            locations = self.hdfs.block_locations(path)
            preferred.append(locations[0][0] if locations else 0)

        def compute(partition: int) -> list:
            raw = self.hdfs.read_file(paths[partition], from_node=preferred[partition])
            matrix = np.load(io.BytesIO(raw), allow_pickle=False)
            return [matrix]

        return RDD(self, compute, len(paths), preferred_nodes=preferred)

    def save_matrix(self, path_prefix: str, matrix: np.ndarray,
                    npartitions: int | None = None) -> list[str]:
        """Write a matrix to HDFS as one .npy file per partition."""
        matrix = np.asarray(matrix, dtype=np.float64)
        n = npartitions or max(1, self.node_count)
        boundaries = np.linspace(0, len(matrix), n + 1).astype(int)
        paths = []
        for i in range(n):
            chunk = matrix[boundaries[i]:boundaries[i + 1]]
            buffer = io.BytesIO()
            np.save(buffer, chunk, allow_pickle=False)
            path = f"{path_prefix}/part-{i:05d}.npy"
            self.hdfs.write_file(path, buffer.getvalue(), overwrite=True)
            paths.append(path)
        return paths

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "SparkContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
