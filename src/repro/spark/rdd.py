"""A small RDD engine: lazy, lineage-based, partitioned collections.

Implements the slice of Spark's model the paper's comparison needs:
``map``/``mapPartitions``/``filter`` transformations build a lineage chain
that is only computed when an action (``collect``/``reduce``/``count``)
runs; ``cache()`` pins computed partitions in executor memory so iterative
algorithms (K-means) pay the load cost once — the property that makes
"Spark … an order of magnitude faster" than MapReduce (§7.3.2).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError

__all__ = ["RDD"]


class RDD:
    """A resilient distributed dataset over in-process partitions."""

    def __init__(
        self,
        context,
        compute: Callable[[int], list],
        npartitions: int,
        preferred_nodes: Sequence[int] | None = None,
        parent: "RDD | None" = None,
    ) -> None:
        if npartitions < 1:
            raise ExecutionError("RDD needs at least one partition")
        self.context = context
        self._compute = compute
        self._npartitions = npartitions
        self._preferred_nodes = list(preferred_nodes) if preferred_nodes else None
        self._parent = parent
        self._cached: dict[int, list] | None = None
        self._cache_lock = threading.Lock()

    # -- structure --------------------------------------------------------------

    @property
    def npartitions(self) -> int:
        return self._npartitions

    def preferred_node(self, partition: int) -> int | None:
        if self._preferred_nodes is not None:
            return self._preferred_nodes[partition]
        if self._parent is not None:
            return self._parent.preferred_node(partition)
        return None

    # -- transformations (lazy) ------------------------------------------------------

    def map_partitions(self, fn: Callable[[list], list]) -> "RDD":
        """Apply ``fn`` to each partition's items, lazily."""

        def compute(partition: int) -> list:
            return list(fn(self._materialize(partition)))

        return RDD(self.context, compute, self._npartitions, parent=self)

    def map(self, fn: Callable[[Any], Any]) -> "RDD":
        return self.map_partitions(lambda items: [fn(item) for item in items])

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return self.map_partitions(
            lambda items: [item for item in items if predicate(item)]
        )

    def cache(self) -> "RDD":
        """Pin this RDD's computed partitions in memory."""
        with self._cache_lock:
            if self._cached is None:
                self._cached = {}
        return self

    @property
    def is_cached(self) -> bool:
        with self._cache_lock:
            return self._cached is not None

    def unpersist(self) -> "RDD":
        with self._cache_lock:
            self._cached = None
        return self

    # -- actions (eager) -----------------------------------------------------------

    def collect(self) -> list:
        """All items, partition order preserved."""
        parts = self._compute_all()
        return [item for part in parts for item in part]

    def count(self) -> int:
        return sum(len(part) for part in self._compute_all())

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        """Tree-reduce: per-partition fold, then fold of partials."""
        partials = []
        for part in self._compute_all():
            if not part:
                continue
            accumulator = part[0]
            for item in part[1:]:
                accumulator = fn(accumulator, item)
            partials.append(accumulator)
        if not partials:
            raise ExecutionError("reduce of an empty RDD")
        result = partials[0]
        for partial in partials[1:]:
            result = fn(result, partial)
        return result

    def aggregate_partitions(self, fn: Callable[[int, list], Any]) -> list:
        """Run ``fn(partition_index, items)`` per partition (one result each).

        The building block the MLlib-style algorithms use for per-iteration
        partial aggregation.
        """
        def run(partition: int):
            return fn(partition, self._materialize(partition))

        return self.context.run_tasks(
            [(self.preferred_node(i), run, i) for i in range(self._npartitions)]
        )

    # -- computation engine ----------------------------------------------------------

    def _materialize(self, partition: int) -> list:
        with self._cache_lock:
            cached = self._cached
        if cached is not None:
            hit = cached.get(partition)
            if hit is not None:
                self.context.telemetry.add("rdd_cache_hits")
                return hit
        items = self._compute(partition)
        if cached is not None:
            with self._cache_lock:
                if self._cached is not None:
                    self._cached[partition] = items
        self.context.telemetry.add("rdd_partitions_computed")
        return items

    def _compute_all(self) -> list[list]:
        def run(partition: int):
            return self._materialize(partition)

        return self.context.run_tasks(
            [(self.preferred_node(i), run, i) for i in range(self._npartitions)]
        )
