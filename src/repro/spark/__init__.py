"""The Spark-on-HDFS comparator: block-replicated HDFS, a lazy RDD engine,
and MLlib-style algorithms sharing kernels with the Distributed R side."""

from repro.spark.context import SparkContext
from repro.spark.hdfs import HdfsBlock, HdfsCluster, HdfsFile
from repro.spark.mllib import spark_kmeans, spark_linear_regression
from repro.spark.rdd import RDD

__all__ = [
    "HdfsCluster",
    "HdfsFile",
    "HdfsBlock",
    "SparkContext",
    "RDD",
    "spark_kmeans",
    "spark_linear_regression",
]
