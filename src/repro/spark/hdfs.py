"""A block-based HDFS simulator (the comparison substrate of §7.3.2).

Files are split into fixed-size blocks, each replicated on ``replication``
datanodes (the paper's setup uses "the default 3-way data replication").
The namenode tracks block placement; reads prefer a local replica — the
property that makes "Spark … tightly integrated with HDFS, reads the data
directly from the local HDFS node".
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

from repro.errors import DfsError

__all__ = ["HdfsBlock", "HdfsFile", "HdfsCluster"]

DEFAULT_BLOCK_SIZE = 4 * 2**20


@dataclass
class HdfsBlock:
    """One block's metadata: size, checksum, and replica placement."""

    block_id: int
    size: int
    checksum: int
    replicas: tuple[int, ...]


@dataclass
class HdfsFile:
    """Namenode-side metadata for one file."""

    path: str
    size: int
    block_size: int
    blocks: list[HdfsBlock] = field(default_factory=list)


class HdfsCluster:
    """Namenode + datanodes holding replicated blocks in memory."""

    def __init__(self, datanode_count: int = 4, replication: int = 3,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if datanode_count < 1:
            raise DfsError("HDFS requires at least one datanode")
        if replication < 1:
            raise DfsError("replication must be >= 1")
        if block_size < 1:
            raise DfsError("block size must be positive")
        self.datanode_count = datanode_count
        self.replication = min(replication, datanode_count)
        self.block_size = block_size
        self._lock = threading.Lock()
        self._files: dict[str, HdfsFile] = {}
        self._stores: list[dict[int, bytes]] = [{} for _ in range(datanode_count)]
        self._down: set[int] = set()
        self._next_block_id = 0
        self._placement_cursor = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- failure injection ----------------------------------------------------

    def fail_datanode(self, node: int) -> None:
        self._check_node(node)
        with self._lock:
            self._down.add(node)

    def recover_datanode(self, node: int) -> None:
        self._check_node(node)
        with self._lock:
            self._down.discard(node)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.datanode_count:
            raise DfsError(f"no datanode {node}")

    # -- file operations ----------------------------------------------------------

    def write_file(self, path: str, data: bytes, overwrite: bool = False) -> HdfsFile:
        """Split ``data`` into replicated blocks and register the file."""
        if not path:
            raise DfsError("empty HDFS path")
        data = bytes(data)
        with self._lock:
            if path in self._files:
                if not overwrite:
                    raise DfsError(f"HDFS file exists: {path!r}")
                self._delete_locked(path)
            live = [n for n in range(self.datanode_count) if n not in self._down]
            if len(live) < 1:
                raise DfsError("no live datanodes")
            hdfs_file = HdfsFile(path=path, size=len(data), block_size=self.block_size)
            for offset in range(0, max(len(data), 1), self.block_size):
                chunk = data[offset:offset + self.block_size]
                block_id = self._next_block_id
                self._next_block_id += 1
                replicas = self._choose_replicas_locked(live)
                for node in replicas:
                    self._stores[node][block_id] = chunk
                hdfs_file.blocks.append(HdfsBlock(
                    block_id=block_id,
                    size=len(chunk),
                    checksum=zlib.crc32(chunk),
                    replicas=tuple(replicas),
                ))
            self._files[path] = hdfs_file
            self.bytes_written += len(data) * self.replication
            return hdfs_file

    def _choose_replicas_locked(self, live: list[int]) -> list[int]:
        count = min(self.replication, len(live))
        start = self._placement_cursor % len(live)
        self._placement_cursor += 1
        return [live[(start + i) % len(live)] for i in range(count)]

    def read_file(self, path: str, from_node: int | None = None) -> bytes:
        """Read a whole file, preferring local replicas."""
        blocks = self.file_info(path).blocks
        return b"".join(self.read_block(path, i, from_node) for i in range(len(blocks)))

    def read_block(self, path: str, block_index: int,
                   from_node: int | None = None) -> bytes:
        """Read one block, falling over to any live replica."""
        info = self.file_info(path)
        try:
            block = info.blocks[block_index]
        except IndexError:
            raise DfsError(f"block {block_index} out of range in {path!r}") from None
        candidates = list(block.replicas)
        if from_node is not None and from_node in candidates:
            candidates.remove(from_node)
            candidates.insert(0, from_node)
        with self._lock:
            down = set(self._down)
        for node in candidates:
            if node in down:
                continue
            data = self._stores[node].get(block.block_id)
            if data is None:
                continue
            if zlib.crc32(data) != block.checksum:
                raise DfsError(f"checksum mismatch on block {block.block_id}")
            with self._lock:
                self.bytes_read += len(data)
            return data
        raise DfsError(
            f"all replicas of block {block.block_id} in {path!r} are unavailable"
        )

    def block_locations(self, path: str) -> list[tuple[int, ...]]:
        """Replica node tuples per block — Spark's locality scheduling input."""
        return [block.replicas for block in self.file_info(path).blocks]

    def file_info(self, path: str) -> HdfsFile:
        with self._lock:
            info = self._files.get(path)
        if info is None:
            raise DfsError(f"HDFS file not found: {path!r}")
        return info

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def delete(self, path: str) -> None:
        with self._lock:
            if path not in self._files:
                raise DfsError(f"HDFS file not found: {path!r}")
            self._delete_locked(path)

    def _delete_locked(self, path: str) -> None:
        info = self._files.pop(path)
        for block in info.blocks:
            for node in block.replicas:
                self._stores[node].pop(block.block_id, None)

    def list_files(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(p for p in self._files if p.startswith(prefix))
