"""Deterministic fault injection and retry policies for the simulated cluster.

See :mod:`repro.faults.plan` for the injection-site model and
``docs/fault_tolerance.md`` for the catalog of sites threaded through the
engine plus a runnable chaos example.
"""

from repro.faults.plan import (
    FaultClock,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    spans_named,
)
from repro.faults.retry import RetryPolicy
from repro.faults.sites import FAULT_SITES, is_registered_site

__all__ = [
    "FAULT_SITES",
    "FaultClock",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "is_registered_site",
    "spans_named",
]
