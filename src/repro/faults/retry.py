"""Retry policy: bounded exponential backoff with deterministic jitter.

One :class:`RetryPolicy` instance governs both layers of VFT recovery —
per-frame resends inside ``_FrameSender`` and whole-transfer re-attempts in
``db2darray`` — and is safe to share across sender threads.  Jitter draws
from a seeded ``random.Random`` so a fixed seed reproduces the exact same
delay sequence (the property the fault test suite depends on).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field


@dataclass
class RetryPolicy:
    """Bounded-exponential retry schedule.

    ``delay_for(attempt)`` (1-based) returns
    ``min(max_delay, base_delay * 2**(attempt-1))`` shrunk by up to
    ``jitter`` (a 0..1 fraction) using the seeded RNG.  ``send_timeout``
    is the per-frame send deadline in seconds (``None`` disables timeout
    detection); a send observed to exceed it is treated as a failed
    attempt and the frame is resent.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.2
    jitter: float = 0.5
    send_timeout: float | None = None
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False, compare=False)
    _rng_lock: threading.Lock = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.send_timeout is not None and self.send_timeout <= 0:
            raise ValueError("send_timeout must be positive when set")
        self._rng = random.Random(self.seed)
        self._rng_lock = threading.Lock()

    def delay_for(self, attempt: int) -> float:
        """Backoff in seconds before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        exp = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        with self._rng_lock:
            fraction = self._rng.random()
        return exp * (1.0 - self.jitter * fraction)

    def backoff(self, attempt: int) -> None:
        """Sleep the backoff delay for retry number ``attempt``."""
        time.sleep(self.delay_for(attempt))
