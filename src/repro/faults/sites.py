"""The registry of named fault-injection sites.

Hot paths call ``plan.perturb("site.name", **context)`` at the moments a
real deployment could fail; this module is the single source of truth for
which site names exist.  ``docs/fault_tolerance.md`` documents the same
catalog, and the ``registry-drift`` reprolint rule (RL902) holds every
``perturb("...")`` literal in the source tree to this set — a typo'd or
undeclared site would otherwise never match any :class:`FaultSpec` and the
chaos scenario would silently test nothing.

Registering a new site here (with a description) is deliberate friction:
it forces the docs table and any scenario suites to learn about the new
failure point.
"""

from __future__ import annotations

__all__ = ["FAULT_SITES", "is_registered_site"]

#: Site name → where it lives / what failure it models.  Keep in sync with
#: the table in ``docs/fault_tolerance.md`` (drift-checked by
#: ``tests/test_docs_drift.py``).
FAULT_SITES: dict[str, str] = {
    "vft.send_chunk": "VFT frame sender: wire failures per frame "
                      "(crash, stall, torn bytes)",
    "scan.node": "eager per-node scan: node loss before a segment scan",
    "scan.stream": "streaming scan, per batch: node loss mid-stream",
    "udtf.instance": "executor UDTF instances: instance failure in a query",
    "dr.task": "DRSession.run_partition_tasks: R worker death mid-foreach",
    "txn.moveout": "Tuple Mover moveout pass, per segment",
    "txn.mergeout": "Tuple Mover mergeout pass, per segment",
    "dfs.read": "DFS blob fetch: replica loss on the read path",
    "ml.fold.step": "unified solver drivers (fold_fit/sgd_fit): master "
                    "failure between fan-outs, once per iteration or epoch",
    "serving.admit": "serving pool worker at slot grant: a stall holds the "
                     "slot (queue backs up, admissions time out); an error "
                     "fails the admitted statement",
    "aqp.refresh": "sample refresh pass, before any sample mutation: a "
                   "crash leaves the sample stale but consistent (the next "
                   "pass re-folds the same window)",
}


def is_registered_site(site: str) -> bool:
    """Whether ``site`` is a declared injection site."""
    return site in FAULT_SITES
