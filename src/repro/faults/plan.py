"""Deterministic, seedable fault injection for the simulated cluster.

The subsystem is built around *named injection sites*: hot paths call
``plan.perturb("site.name", node=..., instance=...)`` at the moments where a
real deployment could fail — a VFT frame hitting the wire, a scan pulling the
next rowgroup batch, a Tuple Mover pass flushing a segment, a DR task
running on a worker, a DFS blob fetch.  A :class:`FaultPlan` holds a list of
:class:`FaultSpec` trigger predicates ("on the 3rd ``vft.send_chunk`` from
node 2", "during moveout on node 0") and, when one matches, applies the
configured failure kind:

===================  ========================================================
kind                 effect at the injection site
===================  ========================================================
``NODE_CRASH``       fail the database node named by the context, then raise
                     :class:`InjectedFault` (the in-flight operation dies the
                     way it would if the node vanished mid-call)
``STALL``            sleep ``stall_seconds`` (models a stream stall; retry
                     policies with a send timeout convert it into a timeout)
``TORN_FRAME``       truncate the wire bytes passed as ``data`` (models a
                     partial write; receivers must reject, senders resend)
``WORKER_DEATH``     mark the DR worker dead, then raise
                     :class:`InjectedFault`
``BLOB_LOSS``        silently drop one DFS replica's bytes (read-repair must
                     heal it); the operation itself continues
``ERROR``            raise :class:`InjectedFault` with no side effect
===================  ========================================================

Everything is deterministic for a fixed seed and a deterministic execution
order: specs fire on exact match-visit counts kept by a thread-safe
:class:`FaultClock`, and the only randomness (retry jitter) comes from a
seeded ``random.Random``.  Sites visited concurrently from several threads
(e.g. ``vft.send_chunk`` across nodes) should be pinned with ``match=`` so
the matching subsequence is single-threaded and its ordering reproducible.

Lock discipline: ``perturb`` matches and counts under the plan's own lock,
then *releases it* before applying effects — effects take engine locks
(``Cluster.fail_node``, ``DFS.lose_replica``) and emit spans, and holding
the plan lock across those would invert lock order under the runtime probe.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.errors import ReproError
from repro.obs.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.dr.session import DRSession
    from repro.vertica.cluster import VerticaCluster


class InjectedFault(ReproError):
    """Raised at an injection site when a fault plan fires a failure.

    Recovery layers (buddy failover, DR task re-execution, transfer retry)
    treat it like the organic failure it models; anything that escapes to
    the caller means a scenario with no recovery path.
    """


class FaultKind:
    """Failure kinds understood by :meth:`FaultPlan.perturb`."""

    NODE_CRASH = "node_crash"
    STALL = "stall"
    TORN_FRAME = "torn_frame"
    WORKER_DEATH = "worker_death"
    BLOB_LOSS = "blob_loss"
    ERROR = "error"

    ALL = (NODE_CRASH, STALL, TORN_FRAME, WORKER_DEATH, BLOB_LOSS, ERROR)


@dataclass
class FaultSpec:
    """One trigger predicate: *where*, *when*, and *what kind* of failure.

    A spec matches a ``perturb`` call when the site name equals ``site``,
    every ``match`` key equals the call's context value for that key, and
    the optional ``where`` predicate accepts the context.  Matching visits
    are counted per spec; the spec fires on matching visits numbered
    ``after + 1`` through ``after + times`` (``times=-1`` means "forever").
    """

    site: str
    kind: str
    match: dict[str, Any] = field(default_factory=dict)
    after: int = 0
    times: int = 1
    stall_seconds: float = 0.1
    where: Callable[[dict[str, Any]], bool] | None = None
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FaultKind.ALL}")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times == 0 or self.times < -1:
            raise ValueError("times must be positive or -1 (unlimited)")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")

    def accepts(self, ctx: dict[str, Any]) -> bool:
        """Whether this spec's predicates accept a site visit's context."""
        for key, value in self.match.items():
            if ctx.get(key) != value:
                return False
        if self.where is not None and not self.where(dict(ctx)):
            return False
        return True

    def window_contains(self, hit: int) -> bool:
        """Whether matching visit number ``hit`` (1-based) should fire."""
        if hit <= self.after:
            return False
        return self.times == -1 or hit <= self.after + self.times


@dataclass
class FaultEvent:
    """A fired fault, recorded in :attr:`FaultPlan.history`."""

    site: str
    kind: str
    visit: int
    context: dict[str, Any]
    note: str = ""


class FaultClock:
    """Thread-safe visit counters for named injection sites."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._visits: dict[str, int] = {}

    def tick(self, site: str) -> int:
        """Record one visit to ``site`` and return its 1-based visit number."""
        with self._lock:
            visit = self._visits.get(site, 0) + 1
            self._visits[site] = visit
            return visit

    def visits(self, site: str) -> int:
        with self._lock:
            return self._visits.get(site, 0)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._visits)


class FaultPlan:
    """A seeded set of fault specs, armed on a cluster and/or DR session.

    Arm with ``cluster.install_fault_plan(plan)`` and/or
    ``session.install_fault_plan(plan)``; injection sites in the engine then
    consult the plan on every visit.  ``plan.history`` records every fired
    fault, ``plan.tracer`` holds the ``fault.injected`` spans (nested under
    whatever engine span was ambient at injection time, when one was), and
    ``plan.telemetry`` counts ``faults_injected``.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        # Imported here, not at module top: the engine modules that host
        # injection sites import this module, so a top-level import of
        # repro.vertica would be circular.
        from repro.vertica.telemetry import Telemetry

        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = FaultClock()
        self.telemetry = Telemetry()
        self.tracer = Tracer()
        self.history: list[FaultEvent] = []
        self._injected_spans: list[Span] = []
        self._specs: list[FaultSpec] = list(specs)
        self._hits: dict[int, int] = {}
        self._lock = threading.Lock()
        self._cluster: VerticaCluster | None = None
        self._session: DRSession | None = None

    # -- construction ----------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        with self._lock:
            self._specs.append(spec)
        return self

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        with self._lock:
            return tuple(self._specs)

    @classmethod
    def single(
        cls,
        site: str,
        kind: str,
        *,
        seed: int = 0,
        **spec_kwargs: Any,
    ) -> "FaultPlan":
        """Convenience: a plan with exactly one spec."""
        return cls([FaultSpec(site=site, kind=kind, **spec_kwargs)], seed=seed)

    # -- binding ---------------------------------------------------------

    def bind_cluster(self, cluster: "VerticaCluster") -> None:
        with self._lock:
            self._cluster = cluster

    def bind_session(self, session: "DRSession") -> None:
        with self._lock:
            self._session = session

    # -- inspection ------------------------------------------------------

    def fired(self, site: str | None = None) -> list[FaultEvent]:
        """Fired events, optionally filtered to one site."""
        with self._lock:
            events = list(self.history)
        if site is None:
            return events
        return [event for event in events if event.site == site]

    def injected_spans(self) -> list[Span]:
        """All ``fault.injected`` spans, wherever they attached.

        Tracked explicitly: a span opened under an ambient engine span
        attaches to *that* tree, not to this plan's tracer roots.
        """
        with self._lock:
            return list(self._injected_spans)

    # -- the injection site API ------------------------------------------

    def perturb(self, site: str, data: bytes | None = None, **ctx: Any) -> bytes | None:
        """Visit injection site ``site``; apply any fault that triggers.

        ``data`` carries wire bytes for sites that can tear them; the
        (possibly truncated) bytes are returned.  Kinds that model a hard
        failure raise :class:`InjectedFault` after applying their side
        effect.  With no armed spec matching, this is a counter bump.
        """
        visit = self.clock.tick(site)
        triggered: list[FaultSpec] = []
        with self._lock:
            cluster = self._cluster
            session = self._session
            for index, spec in enumerate(self._specs):
                if spec.site != site or not spec.accepts(ctx):
                    continue
                hit = self._hits.get(index, 0) + 1
                self._hits[index] = hit
                if spec.window_contains(hit):
                    triggered.append(spec)
        # Effects run *outside* the plan lock: they take engine locks and
        # open spans, and the runtime lock-order probe (REPROLINT_LOCK_CHECK)
        # must never see plan-lock -> engine-lock nesting.
        for spec in triggered:
            data = self._apply(spec, site, visit, dict(ctx), data, cluster, session)
        return data

    # -- effect application ----------------------------------------------

    def _apply(
        self,
        spec: FaultSpec,
        site: str,
        visit: int,
        ctx: dict[str, Any],
        data: bytes | None,
        cluster: "VerticaCluster | None",
        session: "DRSession | None",
    ) -> bytes | None:
        event = FaultEvent(site=site, kind=spec.kind, visit=visit, context=ctx, note=spec.note)
        with self._lock:
            self.history.append(event)
        self.telemetry.add("faults_injected")
        with self.tracer.span(
            "fault.injected", site=site, kind=spec.kind, visit=visit, **ctx
        ) as injected:
            pass
        with self._lock:
            self._injected_spans.append(injected)

        if spec.kind == FaultKind.STALL:
            time.sleep(spec.stall_seconds)
            return data

        if spec.kind == FaultKind.TORN_FRAME:
            if data is None:
                raise InjectedFault(f"torn-frame fault at {site!r} but the site carries no bytes")
            return bytes(data[: max(1, len(data) // 2)])

        if spec.kind == FaultKind.NODE_CRASH:
            node = self._pick(spec, ctx, "node")
            if cluster is not None and node is not None:
                if not cluster.nodes[node].is_down:
                    cluster.fail_node(node)
            raise InjectedFault(f"injected node crash at {site!r}: node {node} is down")

        if spec.kind == FaultKind.WORKER_DEATH:
            worker = self._pick(spec, ctx, "worker")
            if session is not None and worker is not None:
                if not session.workers[worker].is_down:
                    session.workers[worker].fail()
                    session.telemetry.add("dr_worker_failures")
            raise InjectedFault(f"injected worker death at {site!r}: worker {worker} is dead")

        if spec.kind == FaultKind.BLOB_LOSS:
            path = ctx.get("path", spec.match.get("path"))
            if cluster is not None and path is not None:
                cluster.dfs.lose_replica(str(path))
            return data

        # FaultKind.ERROR — plain failure with no engine side effect.
        raise InjectedFault(f"injected fault at {site!r} (visit {visit})")

    @staticmethod
    def _pick(spec: FaultSpec, ctx: dict[str, Any], key: str) -> int | None:
        value = ctx.get(key, spec.match.get(key))
        return int(value) if value is not None else None


def spans_named(tracer: Tracer, name: str) -> list[Span]:
    """All spans with ``name`` anywhere under ``tracer``'s root spans."""
    return [
        span
        for root in tracer.roots()
        for span in root.walk()
        if span.name == name
    ]
