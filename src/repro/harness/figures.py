"""Per-figure regeneration: the series each paper figure plots.

Every function returns a :class:`FigureResult` whose rows pair the paper's
reported value (where the text or figure states one; ``None`` where the
paper only plots without naming the number) with the value our calibrated
models produce for the same configuration.  ``benchmarks/`` additionally
runs scaled-down *functional* versions of each experiment through the real
engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.algorithm_model import (
    model_kmeans_iteration_dr,
    model_kmeans_iteration_r,
    model_regression_dr,
    model_regression_r,
)
from repro.perfmodel.hardware import SL390, HardwareProfile
from repro.perfmodel.predict_model import model_in_db_prediction
from repro.perfmodel.spark_model import (
    model_end_to_end_kmeans,
    model_kmeans_iteration_blas,
    model_spark_kmeans_iteration,
)
from repro.perfmodel.transfer_model import model_vft_transfer, simulate_odbc_transfer

__all__ = ["FigureRow", "FigureResult", "all_figures",
           "fig01", "fig10", "fig12", "fig13", "fig14", "fig15", "fig16",
           "fig17", "fig18", "fig19", "fig20", "fig21"]


@dataclass
class FigureRow:
    """One plotted point: a configuration, a series, and two values."""

    x: str
    series: str
    paper_seconds: float | None
    modelled_seconds: float

    @property
    def relative_error(self) -> float | None:
        if self.paper_seconds is None or self.paper_seconds == 0:
            return None
        return abs(self.modelled_seconds - self.paper_seconds) / self.paper_seconds


@dataclass
class FigureResult:
    """All series of one paper figure."""

    figure_id: str
    title: str
    x_label: str
    rows: list[FigureRow] = field(default_factory=list)
    notes: str = ""

    def add(self, x: str, series: str, modelled: float,
            paper: float | None = None) -> None:
        self.rows.append(FigureRow(x, series, paper, modelled))

    def series_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.series)
        return list(seen)

    def shape_checks(self) -> dict[str, bool]:
        """Qualitative claims this figure makes, evaluated on the model."""
        return {}


def fig01(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 1: extracting data from a database is slow (5-node setup)."""
    result = FigureResult(
        "Fig 1", "DB extraction via ODBC: single R vs 120-way Distributed R",
        "table size",
        notes="Paper states: single R loads 50 GB in close to an hour; "
              "Distributed R with 120 connections needs ~40 min for 150 GB.",
    )
    paper_single = {50: 3300.0, 100: None, 150: None}
    paper_parallel = {50: None, 100: None, 150: 2400.0}
    for gb in (50, 100, 150):
        single = simulate_odbc_transfer(gb, 5, 1, profile)
        parallel = simulate_odbc_transfer(gb, 5, 120, profile)
        result.add(f"{gb} GB", "R (1 ODBC conn)", single.total_seconds,
                   paper_single[gb])
        result.add(f"{gb} GB", "Distributed R (120 ODBC conns)",
                   parallel.total_seconds, paper_parallel[gb])
    return result


def fig10() -> FigureResult:
    """Figure 10: the R_Models catalog table (functional, not timed)."""
    import numpy as np

    from repro.algorithms.glm import hpdglm
    from repro.algorithms.kmeans import hpdkmeans
    from repro.deploy import deploy_model
    from repro.dr import start_session
    from repro.vertica import VerticaCluster

    cluster = VerticaCluster(node_count=2)
    with start_session(node_count=2, instances_per_node=1) as session:
        data = session.darray(npartitions=2)
        rng = np.random.default_rng(0)
        data.fill_from(rng.normal(size=(400, 3)))
        km = hpdkmeans(data, k=3, seed=0, max_iterations=5)
        responses = session.darray(npartitions=2)
        responses.fill_from(rng.normal(size=(400, 1)))
        glm = hpdglm(responses, data)
        deploy_model(cluster, km, "model1", owner="X", description="clustering")
        deploy_model(cluster, glm, "model2", owner="Y", description="forecasting")
    rows = cluster.sql("SELECT model, owner, type, size, description FROM R_Models").rows()
    result = FigureResult(
        "Fig 10", "R_Models catalog after two deployments", "row",
        notes="; ".join(
            f"{model}|{owner}|{type_}|{size}|{description}"
            for model, owner, type_, size, description in rows
        ),
    )
    result.add("rows", "R_Models", float(len(rows)), 2.0)
    return result


def fig12(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 12: ODBC vs VFT on a 5-node cluster."""
    result = FigureResult(
        "Fig 12", "ODBC vs Vertica Fast Transfer, 5-node cluster", "table size",
        notes="VFT loads 150 GB in < 6 min vs ~40 min over ODBC (~6x).",
    )
    paper_odbc = {50: None, 100: None, 150: 2400.0}
    paper_vft = {50: None, 100: None, 150: 330.0}
    for gb in (50, 100, 150):
        odbc = simulate_odbc_transfer(gb, 5, 120, profile)
        vft = model_vft_transfer(gb, 5, 24, profile)
        result.add(f"{gb} GB", "ODBC (120 conns)", odbc.total_seconds, paper_odbc[gb])
        result.add(f"{gb} GB", "VFT (locality)", vft.total_seconds, paper_vft[gb])
    return result


def fig13(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 13: ODBC vs VFT on a 12-node cluster, up to 400 GB."""
    result = FigureResult(
        "Fig 13", "ODBC vs Vertica Fast Transfer, 12-node cluster", "table size",
        notes="288 connections still need ~an hour for 400 GB; VFT < 10 min.",
    )
    paper_odbc = {100: None, 200: None, 300: None, 400: 3500.0}
    paper_vft = {100: None, 200: None, 300: None, 400: 480.0}
    for gb in (100, 200, 300, 400):
        odbc = simulate_odbc_transfer(gb, 12, 288, profile)
        vft = model_vft_transfer(gb, 12, 24, profile)
        result.add(f"{gb} GB", "ODBC (288 conns)", odbc.total_seconds, paper_odbc[gb])
        result.add(f"{gb} GB", "VFT (locality)", vft.total_seconds, paper_vft[gb])
    return result


def fig14(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 14: VFT time breakdown vs R instances per server."""
    result = FigureResult(
        "Fig 14", "VFT breakdown (DB vs R), 400 GB on 12 nodes",
        "R instances per server",
        notes="DB component constant (~300 s); R component shrinks with "
              "instances — at 2 instances nearly half the time is R-side.",
    )
    paper_db = {2: 300.0, 4: 300.0, 8: 300.0, 12: 300.0, 16: 300.0, 24: 300.0}
    for instances in (2, 4, 8, 12, 16, 24):
        vft = model_vft_transfer(400, 12, instances, profile)
        result.add(f"{instances}", "DB part", vft.db_seconds, paper_db[instances])
        result.add(f"{instances}", "R part", vft.r_seconds, None)
        result.add(f"{instances}", "total", vft.total_seconds, None)
    return result


def fig15(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 15: in-database K-means prediction scalability."""
    result = FigureResult(
        "Fig 15", "In-DB K-means prediction, 5-node cluster", "table rows",
        notes="< 20 s at 10 M rows; 318 s at 1 B rows (close to linear).",
    )
    paper = {1e7: 17.0, 1e8: None, 5e8: None, 1e9: 318.0}
    for rows in (1e7, 1e8, 5e8, 1e9):
        model = model_in_db_prediction(rows, "kmeans", 5, profile)
        result.add(f"{rows:.0e}", "KmeansPredict", model.total_seconds, paper[rows])
    return result


def fig16(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 16: in-database linear regression prediction scalability."""
    result = FigureResult(
        "Fig 16", "In-DB GLM prediction, 5-node cluster", "table rows",
        notes="< 10 s at 10 M rows; 206 s at 1 B rows.",
    )
    paper = {1e7: 10.0, 1e8: None, 5e8: None, 1e9: 206.0}
    for rows in (1e7, 1e8, 5e8, 1e9):
        model = model_in_db_prediction(rows, "glm", 5, profile)
        result.add(f"{rows:.0e}", "GlmPredict", model.total_seconds, paper[rows])
    return result


def fig17(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 17: DR vs R K-means on one node, varying cores."""
    result = FigureResult(
        "Fig 17", "K-means per-iteration: R vs Distributed R (1M x 100, K=1000)",
        "cores",
        notes="R flat at ~35 min; DR < 4 min with >= 12 cores (9x); "
              "plateaus past 12 physical cores.",
    )
    paper_r = {1: 2100.0, 12: 2100.0, 24: 2100.0}
    paper_dr = {12: 225.0, 24: 225.0}
    for cores in (1, 2, 4, 8, 12, 16, 24):
        r_time = model_kmeans_iteration_r(1e6, 100, 1000, profile)
        dr_time = model_kmeans_iteration_dr(1e6, 100, 1000, cores=cores,
                                            profile=profile)
        result.add(f"{cores}", "R", r_time.per_iteration_seconds,
                   paper_r.get(cores))
        result.add(f"{cores}", "Distributed R", dr_time.per_iteration_seconds,
                   paper_dr.get(cores))
    return result


def fig18(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 18: DR vs R linear regression on one node (100M x 7)."""
    result = FigureResult(
        "Fig 18", "Regression to convergence: R (QR) vs DR (Newton-Raphson)",
        "cores",
        notes="R > 25 min (matrix decomposition); DR ~8 min at 1 core "
              "to < 1 min at 24 cores (9x).",
    )
    paper_r = {1: 1500.0, 24: 1500.0}
    paper_dr = {1: 480.0, 24: 50.0}
    for cores in (1, 2, 4, 8, 12, 16, 24):
        r_time = model_regression_r(1e8, 7, profile)
        dr_time = model_regression_dr(1e8, 7, cores=cores, iterations=2,
                                      profile=profile)
        result.add(f"{cores}", "R (lm/QR)", r_time.total_seconds, paper_r.get(cores))
        result.add(f"{cores}", "Distributed R (Newton-Raphson)",
                   dr_time.total_seconds, paper_dr.get(cores))
    return result


def fig19(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 19: distributed regression weak scaling (1/4/8 nodes)."""
    result = FigureResult(
        "Fig 19", "Distributed regression weak scaling (100 features, "
        "30M rows/node)", "nodes",
        notes="Each Newton-Raphson iteration < 2 min; converges in ~4 min "
              "(2 iterations); flat under proportional scaling.",
    )
    for nodes, rows in ((1, 3e7), (4, 1.2e8), (8, 2.4e8)):
        iteration = model_regression_dr(rows, 100, cores=24, nodes=nodes,
                                        iterations=1, profile=profile)
        convergence = model_regression_dr(rows, 100, cores=24, nodes=nodes,
                                          iterations=2, profile=profile)
        result.add(f"{nodes}", "per-iteration",
                   iteration.per_iteration_seconds,
                   100.0 if nodes == 8 else None)
        result.add(f"{nodes}", "convergence (2 iters)",
                   convergence.total_seconds,
                   240.0 if nodes == 8 else None)
    return result


def fig20(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 20: DR vs Spark K-means weak scaling."""
    result = FigureResult(
        "Fig 20", "K-means per-iteration: Distributed R vs Spark "
        "(100 features, K=1000, 60M rows/node)", "nodes",
        notes="DR ~16 min/iter at 8 nodes vs Spark >= 21 min (~20% faster); "
              "both scale well under proportional growth.",
    )
    for nodes, rows in ((1, 6e7), (4, 2.4e8), (8, 4.8e8)):
        dr = model_kmeans_iteration_blas(rows, 100, 1000, nodes, profile)
        spark = model_spark_kmeans_iteration(rows, 100, 1000, nodes, profile)
        result.add(f"{nodes}", "Distributed R", dr,
                   960.0 if nodes == 8 else None)
        result.add(f"{nodes}", "Spark", spark,
                   1260.0 if nodes == 8 else None)
    return result


def fig21(profile: HardwareProfile = SL390) -> FigureResult:
    """Figure 21: end-to-end K-means (load + iterate) on 4 nodes."""
    result = FigureResult(
        "Fig 21", "End-to-end K-means, 4 nodes, 240M x 100 (~180 GB)",
        "system",
        notes="Vertica+DR: load 15 min + 16 min/iter; Spark: load 11 min + "
              "21 min/iter — near tie end-to-end; DR-from-ext4 loads in 5 min.",
    )
    paper_load = {"vertica+dr": 900.0, "spark+hdfs": 660.0, "dr+ext4": 300.0}
    paper_iteration = {"vertica+dr": 960.0, "spark+hdfs": 1260.0, "dr+ext4": 960.0}
    systems = model_end_to_end_kmeans(2.4e8, 100, 1000, 4, 180,
                                      iterations=1, profile=profile)
    for name, outcome in systems.items():
        result.add(name, "load", outcome.load_seconds, paper_load[name])
        result.add(name, "per-iteration", outcome.per_iteration_seconds,
                   paper_iteration[name])
        result.add(name, "load + 1 iteration", outcome.total_seconds, None)
    return result


def all_figures(profile: HardwareProfile = SL390,
                include_functional: bool = True) -> list[FigureResult]:
    """Regenerate every figure; ``include_functional=False`` skips Fig 10
    (which runs the real engines rather than the models)."""
    figures = [
        fig01(profile),
        fig12(profile),
        fig13(profile),
        fig14(profile),
        fig15(profile),
        fig16(profile),
        fig17(profile),
        fig18(profile),
        fig19(profile),
        fig20(profile),
        fig21(profile),
    ]
    if include_functional:
        figures.insert(1, fig10())
    return figures
