"""``python -m repro.harness``: regenerate every figure and EXPERIMENTS.md."""

from __future__ import annotations

import argparse
import sys

from repro.harness.figures import all_figures
from repro.harness.report import format_all, write_experiments_md


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's evaluation figures "
                    "(paper vs modelled series).",
    )
    parser.add_argument(
        "--write", metavar="PATH", default=None,
        help="also write the results to an EXPERIMENTS.md file",
    )
    parser.add_argument(
        "--skip-functional", action="store_true",
        help="skip figures that run the real engines (Fig 10)",
    )
    args = parser.parse_args(argv)
    figures = all_figures(include_functional=not args.skip_functional)
    print(format_all(figures))
    if args.write:
        path = write_experiments_md(figures, args.write)
        print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
