"""Experiment harness: regenerate every table and figure of the paper."""

from repro.harness.figures import FigureResult, FigureRow, all_figures
from repro.harness.report import format_all, format_figure, write_experiments_md

__all__ = [
    "FigureResult",
    "FigureRow",
    "all_figures",
    "format_figure",
    "format_all",
    "write_experiments_md",
]
