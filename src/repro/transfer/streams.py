"""Wire protocol for Vertica Fast Transfer streams.

VFT ships *column blocks* (the database's native compressed format) rather
than rows of text: each chunk on the wire is a frame holding one block per
requested column.  Receivers stage raw frames in worker shm buffers and parse
them into numpy matrices only once a stream completes (§3.3's two-step
receive).

Frame layout::

    u32 column_count
    repeated column_count times:
        u16 name_length | name bytes (utf-8) | u64 block_length | block bytes
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import TransferError
from repro.storage.column import ColumnBlock
from repro.storage.encoding import SqlType

__all__ = ["encode_frame", "decode_frames", "validate_frame",
           "frames_to_matrix", "frames_to_columns"]


def encode_frame(columns: dict[str, np.ndarray], sql_types: dict[str, SqlType],
                 codec: str = "zlib") -> bytes:
    """Encode one chunk of rows (as per-column arrays) into a wire frame."""
    if not columns:
        raise TransferError("cannot encode an empty frame")
    parts = [struct.pack("<I", len(columns))]
    for name, values in columns.items():
        try:
            sql_type = sql_types[name]
        except KeyError:
            raise TransferError(f"no SQL type known for column {name!r}") from None
        block = ColumnBlock.from_values(np.asarray(values), sql_type, codec=codec)
        block_bytes = block.to_bytes()
        name_bytes = name.encode("utf-8")
        if len(name_bytes) > 0xFFFF:
            raise TransferError(f"column name too long: {name!r}")
        parts.append(struct.pack("<H", len(name_bytes)))
        parts.append(name_bytes)
        parts.append(struct.pack("<Q", len(block_bytes)))
        parts.append(block_bytes)
    return b"".join(parts)


def decode_frames(payload: bytes) -> list[dict[str, np.ndarray]]:
    """Decode a concatenation of frames back into per-chunk column dicts."""
    chunks: list[dict[str, np.ndarray]] = []
    offset = 0
    total = len(payload)
    while offset < total:
        if offset + 4 > total:
            raise TransferError("truncated frame header")
        (column_count,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if column_count == 0 or column_count > 10_000:
            raise TransferError(f"implausible column count {column_count}")
        chunk: dict[str, np.ndarray] = {}
        for _ in range(column_count):
            if offset + 2 > total:
                raise TransferError("truncated column name length")
            (name_length,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            name = payload[offset:offset + name_length].decode("utf-8")
            offset += name_length
            if offset + 8 > total:
                raise TransferError("truncated block length")
            (block_length,) = struct.unpack_from("<Q", payload, offset)
            offset += 8
            block_bytes = payload[offset:offset + block_length]
            if len(block_bytes) != block_length:
                raise TransferError("truncated column block")
            offset += block_length
            chunk[name] = ColumnBlock.from_bytes(block_bytes).values()
        chunks.append(chunk)
    return chunks


def validate_frame(frame: bytes) -> None:
    """Structurally validate that ``frame`` is exactly one intact wire frame.

    Walks the length-prefixed layout without decompressing any block, so a
    receiver can reject a torn (truncated or trailing-garbage) frame at
    ``send_chunk`` time — before staging it — for the cost of a few struct
    reads.  Raises :class:`TransferError` on any structural defect.
    """
    total = len(frame)
    if total < 4:
        raise TransferError(f"torn frame: {total} bytes is shorter than a frame header")
    (column_count,) = struct.unpack_from("<I", frame, 0)
    if column_count == 0 or column_count > 10_000:
        raise TransferError(f"torn frame: implausible column count {column_count}")
    offset = 4
    for _ in range(column_count):
        if offset + 2 > total:
            raise TransferError("torn frame: truncated column name length")
        (name_length,) = struct.unpack_from("<H", frame, offset)
        offset += 2 + name_length
        if offset + 8 > total:
            raise TransferError("torn frame: truncated block length")
        (block_length,) = struct.unpack_from("<Q", frame, offset)
        offset += 8 + block_length
        if offset > total:
            raise TransferError("torn frame: truncated column block")
    if offset != total:
        raise TransferError(f"torn frame: {total - offset} trailing bytes after last block")


def frames_to_matrix(payload: bytes, column_order: list[str]) -> np.ndarray:
    """Parse staged frames into a single float64 matrix (rows x columns).

    This is the "convert to an R object" step: the per-stream chunks are
    concatenated in arrival order and the requested columns become matrix
    columns in the caller's declared order.
    """
    chunks = decode_frames(payload)
    if not chunks:
        return np.empty((0, len(column_order)), dtype=np.float64)
    pieces = []
    for chunk in chunks:
        missing = [c for c in column_order if c not in chunk]
        if missing:
            raise TransferError(f"frame missing columns {missing}")
        matrix = np.column_stack([
            np.asarray(chunk[name], dtype=np.float64) for name in column_order
        ])
        pieces.append(matrix)
    return np.vstack(pieces)


def frames_to_columns(payload: bytes, column_order: list[str]) -> dict[str, np.ndarray]:
    """Parse staged frames into per-column arrays (mixed types allowed).

    The dframe variant of :func:`frames_to_matrix`: string columns stay
    object arrays instead of being forced into a float matrix.
    """
    chunks = decode_frames(payload)
    if not chunks:
        return {name: np.empty(0) for name in column_order}
    out: dict[str, list[np.ndarray]] = {name: [] for name in column_order}
    for chunk in chunks:
        missing = [c for c in column_order if c not in chunk]
        if missing:
            raise TransferError(f"frame missing columns {missing}")
        for name in column_order:
            out[name].append(np.asarray(chunk[name]))
    return {name: np.concatenate(pieces) for name, pieces in out.items()}
