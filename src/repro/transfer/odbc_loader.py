"""ODBC-based loading: the baselines of Figures 1, 12, and 13.

Two strategies, both built on :class:`repro.vertica.odbc.OdbcConnection`:

* :func:`load_via_single_odbc` — "a common scenario with customers": one R
  process, one connection, the whole table fetched in global row order and
  converted row-at-a-time.
* :func:`load_via_parallel_odbc` — the Distributed R ODBC mode: every R
  instance opens its own connection and requests its ``1/N``-th of the
  table's rows *by global row range*.  Each range spans all database nodes
  (locality is destroyed), and the flock of simultaneous scans contends on
  the per-node scan slots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TransferError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.darray import DArray
    from repro.dr.session import DRSession
    from repro.vertica.cluster import VerticaCluster

__all__ = ["load_via_single_odbc", "load_via_parallel_odbc"]


def _validate(cluster: "VerticaCluster", table_name: str, columns: list[str]) -> int:
    if not columns:
        raise TransferError("at least one column must be loaded")
    table = cluster.catalog.get_table(table_name)
    for column in columns:
        table.column(column)
    return table.row_count


def load_via_single_odbc(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
) -> "DArray":
    """Load a table through one ODBC connection into a 1-partition darray."""
    from repro.dr.darray import DArray

    total_rows = _validate(cluster, table_name, columns)
    connection = cluster.connect()
    try:
        data = connection.fetch_row_range(table_name, columns, 0, total_rows)
    finally:
        connection.close()
    matrix = (
        np.column_stack([np.asarray(data[c], dtype=np.float64) for c in columns])
        if total_rows
        else np.empty((0, len(columns)))
    )
    result = DArray(session, npartitions=1, worker_assignment=[0])
    result.fill_partition(0, matrix)
    session.telemetry.add("odbc_loads", 1)
    return result


def load_via_parallel_odbc(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    connections: int | None = None,
) -> "DArray":
    """Load a table through many concurrent ODBC connections.

    ``connections`` defaults to the session's total R instance count (the
    paper's 120- and 288-connection configurations).  Instance *i* fetches
    global rows ``[i*N/k, (i+1)*N/k)`` on its own connection; the resulting
    darray has one partition per connection, placed round-robin across
    workers — global row order, not segment locality.
    """
    from repro.dr.darray import DArray

    total_rows = _validate(cluster, table_name, columns)
    k = connections if connections is not None else session.total_instances
    if k < 1:
        raise TransferError("need at least one connection")
    boundaries = np.linspace(0, total_rows, k + 1).astype(int)
    worker_count = session.node_count
    assignment = [i % worker_count for i in range(k)]
    result = DArray(session, npartitions=k, worker_assignment=assignment)

    def fetch(index: int) -> int:
        start, stop = int(boundaries[index]), int(boundaries[index + 1])
        connection = cluster.connect()
        try:
            data = connection.fetch_row_range(table_name, columns, start, stop)
        finally:
            connection.close()
        rows = stop - start
        matrix = (
            np.column_stack([np.asarray(data[c], dtype=np.float64) for c in columns])
            if rows
            else np.empty((0, len(columns)))
        )
        result.fill_partition(index, matrix)
        return rows

    fetched = session.run_partition_tasks(
        [(assignment[i], fetch, i) for i in range(k)]
    )
    if sum(fetched) != total_rows:
        raise TransferError(
            f"parallel ODBC load fetched {sum(fetched)} of {total_rows} rows"
        )
    session.telemetry.add("odbc_loads", 1)
    session.telemetry.add("odbc_parallel_connections", k)
    return result
