"""Vertica Fast Transfer: the ``ExportToDistributedR`` UDF and its receiver.

The control flow mirrors §3.1 exactly:

1. ``db2darray`` (the Distributed R side) registers a :class:`TransferTarget`
   — the analog of workers listening on sockets — and issues **one** SQL
   query invoking ``ExportToDistributedR`` with the target handle, the
   partition-size hint, and the policy (Figure 4's three key arguments).
2. Vertica's planner fans the UDF out (``OVER (PARTITION BEST)``); each
   instance reads its slice of the *local* segment, buffers rows up to the
   size hint, encodes them as compressed column-block frames, and streams
   them to the worker chosen by the distribution policy.
3. Workers stage incoming frames in shm buffers; after the SQL query
   returns, :meth:`TransferTarget.finalize` converts each worker's staged
   bytes into numpy matrices and fills the (previously empty) darray
   partitions (§3.3's two-step receive).
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.errors import TransferError
from repro.faults.retry import RetryPolicy
from repro.obs.trace import add_to_current
from repro.storage.encoding import ColumnSchema, SqlType
from repro.transfer.policies import TransferPolicy
from repro.transfer.streams import (
    encode_frame,
    frames_to_columns,
    frames_to_matrix,
    validate_frame,
)
from repro.vertica.pipeline import concat_batches
from repro.vertica.udtf import TransformFunction, UdtfContext, UdtfSignature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.darray import DArray
    from repro.dr.dframe import DFrame
    from repro.dr.session import DRSession
    from repro.dr.worker import ShmBuffer

__all__ = ["TransferTarget", "ExportToDistributedR", "lookup_target"]

_TARGETS: dict[str, "TransferTarget"] = {}
_TARGETS_LOCK = threading.Lock()


def lookup_target(token: str) -> "TransferTarget":
    """Resolve a transfer-target handle (used by the UDF instances)."""
    with _TARGETS_LOCK:
        try:
            return _TARGETS[token]
        except KeyError:
            raise TransferError(f"no registered transfer target {token!r}") from None


class TransferTarget:
    """Receiver side of one VFT load: worker endpoints + staging buffers."""

    def __init__(
        self,
        session: "DRSession",
        policy: TransferPolicy,
        columns: list[str],
        sql_types: dict[str, SqlType],
        as_frame: bool = False,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.session = session
        self.policy = policy
        self.columns = list(columns)
        self.sql_types = dict(sql_types)
        self.as_frame = as_frame
        self.retry = retry if retry is not None else RetryPolicy()
        self.token = uuid.uuid4().hex
        self._lock = threading.Lock()
        # (worker, db_node, instance) -> ShmBuffer
        self._streams: dict[tuple[int, int, int], "ShmBuffer"] = {}
        # (worker, db_node, instance) -> frames staged so far on that stream.
        # Senders number frames per stream; a frame below the acked count was
        # already staged by an earlier attempt and is dropped as a duplicate,
        # which is what makes a retried transfer bit-identical.
        self._acked: dict[tuple[int, int, int], int] = {}
        self.rows_streamed = 0
        self.bytes_streamed = 0
        with _TARGETS_LOCK:
            _TARGETS[self.token] = self

    @property
    def worker_count(self) -> int:
        return len(self.session.workers)

    def acked_frames(self, worker_index: int, db_node: int, instance: int) -> int:
        """How many frames the stream has durably staged (the resend cursor)."""
        with self._lock:
            return self._acked.get((worker_index, db_node, instance), 0)

    def send_chunk(self, worker_index: int, db_node: int, instance: int,
                   frame: bytes, rows: int, seq: int | None = None) -> None:
        """Deliver one wire frame into the worker's shm staging buffer.

        ``seq`` is the sender's 0-based frame number on this stream.  A torn
        frame is rejected *before* staging (the ack cursor does not move, so
        the sender's resend carries the same ``seq``); a frame below the ack
        cursor is a duplicate from a retried attempt and is dropped.
        """
        if not 0 <= worker_index < self.worker_count:
            raise TransferError(f"no worker {worker_index} in transfer target")
        validate_frame(frame)
        key = (worker_index, db_node, instance)
        with self._lock:
            acked = self._acked.get(key, 0)
            if seq is not None and seq > acked:
                raise TransferError(
                    f"out-of-order frame {seq} on stream {key} (expected {acked})"
                )
            duplicate = seq is not None and seq < acked
            if not duplicate:
                buffer = self._streams.get(key)
                if buffer is None:
                    stream_id = f"vft/{self.token}/w{worker_index}/n{db_node}/i{instance}"
                    buffer = self.session.workers[worker_index].open_stream(stream_id)
                    self._streams[key] = buffer
                if seq is not None:
                    self._acked[key] = acked + 1
                self.rows_streamed += rows
                self.bytes_streamed += len(frame)
        if duplicate:
            self.session.telemetry.add("vft_frames_deduped")
            return
        buffer.append(frame)
        self.session.telemetry.add("vft_bytes_received", len(frame))
        self.session.telemetry.add("vft_rows_received", rows)
        self.session.telemetry.add("vft_frames_received")

    def finalize(self, db_node_count: int) -> "DArray | DFrame":
        """Convert staged bytes into a filled darray (or dframe).

        Returns the distributed object with one partition per database node
        (locality policy) or per worker (uniform policy); empty receivers
        still get a zero-row partition so partition counts are stable.
        """
        from repro.dr.darray import DArray
        from repro.dr.dframe import DFrame

        npartitions = self.policy.partition_count(db_node_count, self.worker_count)
        assignment = [
            min(self.policy.partition_for_worker(p), self.worker_count - 1)
            for p in range(npartitions)
        ]
        with self._lock:
            streams = dict(self._streams)

        # Group streams by receiving worker, in deterministic (node, instance)
        # order, and concatenate their staged payloads.
        payload_by_worker: dict[int, bytes] = {}
        for (worker_index, db_node, instance) in sorted(streams):
            stream = streams[(worker_index, db_node, instance)]
            chunk = self.session.workers[worker_index].close_stream(stream.stream_id)
            payload_by_worker[worker_index] = payload_by_worker.get(worker_index, b"") + chunk

        if self.as_frame:
            result = DFrame(self.session, npartitions, worker_assignment=assignment)
        else:
            result = DArray(self.session, npartitions=npartitions,
                            worker_assignment=assignment)

        # Each worker's staged bytes (possibly from several sender streams)
        # become exactly one partition under both built-in policies.
        for partition in range(npartitions):
            worker_index = assignment[partition]
            payload = payload_by_worker.pop(worker_index, b"")
            if self.as_frame:
                columns = frames_to_columns(payload, self.columns)
                if len(next(iter(columns.values()), np.empty(0))) == 0:
                    columns = {
                        name: np.empty(0, dtype=self.sql_types[name].numpy_dtype)
                        for name in self.columns
                    }
                result.fill_partition(partition, columns)
            else:
                matrix = frames_to_matrix(payload, self.columns)
                result.fill_partition(partition, matrix)
        if payload_by_worker:
            raise TransferError(
                f"streams arrived at unexpected workers: {sorted(payload_by_worker)}"
            )
        return result

    def unregister(self) -> None:
        with _TARGETS_LOCK:
            _TARGETS.pop(self.token, None)

    def __enter__(self) -> "TransferTarget":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unregister()


class ExportToDistributedR(TransformFunction):
    """The database-side UDF that streams local segment data to workers.

    ``USING PARAMETERS``:

    * ``target`` — handle of the registered :class:`TransferTarget`.
    * ``chunk_rows`` — the partition-size hint: how many rows to buffer
      before pushing a frame ("Partition sizes are used as hints by Vertica
      to determine how much data should be buffered before transferring to R
      instances", §3.1).
    * ``policy`` — informational; the authoritative policy object lives on
      the target.
    """

    name = "ExportToDistributedR"
    # Each invocation streams frames into live R worker sockets; replaying
    # a cached summary row would silently skip the transfer itself.
    cacheable = False

    def signature(self) -> UdtfSignature:
        # At least one exported column; 'target' must carry a registered
        # transfer-target token.  Columns of any SQL type can be exported.
        return UdtfSignature(
            min_args=1,
            required_parameters=frozenset({"target"}),
            known_parameters=frozenset({"target", "chunk_rows", "policy"}),
        )

    def output_schema(self, params: Mapping[str, object]) -> list[ColumnSchema]:
        return [
            ColumnSchema("node", SqlType.INTEGER),
            ColumnSchema("instance", SqlType.INTEGER),
            ColumnSchema("rows_sent", SqlType.INTEGER),
            ColumnSchema("bytes_sent", SqlType.INTEGER),
        ]

    @staticmethod
    def _setup(params: Mapping[str, Any]) -> tuple["TransferTarget", int]:
        token = params.get("target")
        if not token:
            raise TransferError("ExportToDistributedR requires a 'target' parameter")
        target = lookup_target(str(token))
        chunk_rows = int(params.get("chunk_rows", 65_536))
        if chunk_rows < 1:
            raise TransferError(f"chunk_rows must be positive, got {chunk_rows}")
        return target, chunk_rows

    def process(self, ctx: UdtfContext, args: dict[str, np.ndarray],
                params: Mapping[str, Any]) -> dict[str, np.ndarray]:
        target, chunk_rows = self._setup(params)
        sender = _FrameSender(ctx, target)
        columns = _target_columns(target, args)
        rows = len(next(iter(columns.values()))) if columns else 0
        for start in range(0, rows, chunk_rows):
            stop = min(start + chunk_rows, rows)
            sender.emit({name: columns[name][start:stop] for name in target.columns},
                        stop - start)
        return sender.summary(rows)

    def process_stream(self, ctx: UdtfContext, batches, params: Mapping[str, Any]
                       ) -> dict[str, np.ndarray]:
        """Streaming export: push a wire frame as each ``chunk_rows`` window
        of the instance's batch stream fills, instead of materializing the
        whole partition first.  Frame boundaries fall at the same row
        offsets as the eager path, so the wire bytes are identical; peak
        buffering is one ``chunk_rows`` window, not the instance's slice.
        """
        target, chunk_rows = self._setup(params)
        sender = _FrameSender(ctx, target)
        buffer: list[dict[str, np.ndarray]] = []
        buffered = 0
        total_rows = 0
        for batch in batches:
            columns = _target_columns(target, batch)
            rows = len(next(iter(columns.values()))) if columns else 0
            if not rows:
                continue
            total_rows += rows
            buffer.append(columns)
            buffered += rows
            while buffered >= chunk_rows:
                taken: list[dict[str, np.ndarray]] = []
                need = chunk_rows
                while need:
                    head = buffer[0]
                    head_rows = len(next(iter(head.values())))
                    if head_rows <= need:
                        taken.append(buffer.pop(0))
                        need -= head_rows
                    else:
                        taken.append({name: arr[:need] for name, arr in head.items()})
                        buffer[0] = {name: arr[need:] for name, arr in head.items()}
                        need = 0
                sender.emit(concat_batches(taken), chunk_rows)
                buffered -= chunk_rows
        if buffered:
            sender.emit(concat_batches(buffer), buffered)
        return sender.summary(total_rows)


def _target_columns(target: TransferTarget,
                    args: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Validate and order one batch's columns against the target's schema."""
    columns = {name: np.atleast_1d(np.asarray(arr)) for name, arr in args.items()}
    missing = [c for c in target.columns if c not in columns]
    if missing:
        raise TransferError(
            f"UDF received columns {sorted(columns)}, target expects {target.columns}"
        )
    return {name: columns[name] for name in target.columns}


class _FrameSender:
    """Encodes chunks as wire frames and routes them to workers, keeping the
    per-instance frame counter both execution modes share.

    Frames are numbered per destination stream; on a retried transfer the
    sender consults the receiver's ack cursor and resends only from the
    first unacked frame, so the staged bytes come out identical to a
    failure-free run (resend-from-last-acked).  Individual sends that fail
    with a transport-level :class:`TransferError` (torn frame, send
    timeout) are retried in place with bounded exponential backoff.
    """

    def __init__(self, ctx: UdtfContext, target: TransferTarget) -> None:
        self.ctx = ctx
        self.target = target
        self.chunk_index = 0
        self.total_bytes = 0
        # Per destination worker: the next frame number on this instance's
        # stream to that worker (streams are keyed by worker+node+instance).
        self._stream_seq: dict[int, int] = {}

    def emit(self, chunk: dict[str, np.ndarray], rows: int) -> None:
        ctx, target = self.ctx, self.target
        frame = encode_frame(chunk, target.sql_types, codec=ctx.cluster.codec)
        worker = target.policy.target_worker(
            ctx.node_index, ctx.instance_index, self.chunk_index, target.worker_count
        )
        self.chunk_index += 1
        seq = self._stream_seq.get(worker, 0)
        self._stream_seq[worker] = seq + 1
        if seq < target.acked_frames(worker, ctx.node_index, ctx.instance_index):
            # This frame survived an earlier attempt; skip the wire entirely.
            ctx.cluster.telemetry.add("vft_frames_deduped")
            return
        self._send_with_retry(worker, seq, frame, rows)
        ctx.cluster.telemetry.add("vft_bytes_sent", len(frame))
        ctx.cluster.telemetry.registry.histogram("vft_frame_bytes").observe(
            len(frame))
        # Ambient span here is this instance's udtf.instance span.
        add_to_current(vft_frames=1, vft_bytes=len(frame), vft_rows=rows)
        self.total_bytes += len(frame)

    def _send_with_retry(self, worker: int, seq: int, frame: bytes,
                         rows: int) -> None:
        """One frame onto the wire, retrying transport failures in place.

        Only :class:`TransferError` (torn frame rejected by the receiver,
        send exceeding the policy's timeout) is retried here — a node crash
        surfaces as :class:`~repro.faults.plan.InjectedFault` and must
        propagate so the whole-transfer retry in ``db2darray`` can re-read
        the segment from a buddy replica.
        """
        ctx, target = self.ctx, self.target
        policy = target.retry
        attempt = 0
        while True:
            wire = frame
            started = time.perf_counter()
            try:
                faults = ctx.cluster.faults
                if faults is not None:
                    perturbed = faults.perturb(
                        "vft.send_chunk", data=wire, node=ctx.node_index,
                        instance=ctx.instance_index, worker=worker, seq=seq,
                        attempt=attempt,
                    )
                    wire = perturbed if perturbed is not None else wire
                target.send_chunk(worker, ctx.node_index, ctx.instance_index,
                                  wire, rows, seq=seq)
                elapsed = time.perf_counter() - started
                if (policy.send_timeout is not None
                        and elapsed > policy.send_timeout):
                    raise TransferError(
                        f"send of frame {seq} to worker {worker} took "
                        f"{elapsed:.3f}s (timeout {policy.send_timeout}s)"
                    )
                return
            except TransferError as exc:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                ctx.cluster.telemetry.add("transfer_retries")
                with ctx.cluster.tracer.span(
                    "fault.recovered", mechanism="frame_resend", seq=seq,
                    worker=worker, attempt=attempt, error=str(exc)[:120],
                ):
                    pass
                policy.backoff(attempt)

    def summary(self, rows: int) -> dict[str, np.ndarray]:
        ctx = self.ctx
        ctx.cluster.telemetry.add("vft_rows_sent", rows)
        return {
            "node": np.asarray([ctx.node_index], dtype=np.int64),
            "instance": np.asarray([ctx.instance_index], dtype=np.int64),
            "rows_sent": np.asarray([rows], dtype=np.int64),
            "bytes_sent": np.asarray([self.total_bytes], dtype=np.int64),
        }
