"""Data transfer between the database and Distributed R: Vertica Fast
Transfer (the paper's contribution) and the ODBC baselines it replaces."""

from repro.transfer.db2darray import db2darray, db2darray_with_response, db2dframe
from repro.transfer.odbc_loader import load_via_parallel_odbc, load_via_single_odbc
from repro.transfer.policies import (
    LocalityPreserving,
    TransferPolicy,
    UniformDistribution,
    get_policy,
)
from repro.transfer.vft import ExportToDistributedR, TransferTarget

__all__ = [
    "db2darray",
    "db2dframe",
    "db2darray_with_response",
    "load_via_single_odbc",
    "load_via_parallel_odbc",
    "TransferPolicy",
    "LocalityPreserving",
    "UniformDistribution",
    "get_policy",
    "ExportToDistributedR",
    "TransferTarget",
]
