"""User-facing loaders: ``db2darray`` and ``db2dframe`` (Figure 3, line 5).

One function call hides the whole VFT machinery: register a receiver, issue
the single ``ExportToDistributedR`` SQL query, wait for the parallel streams,
and assemble the distributed data structure.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TransferError
from repro.storage.encoding import SqlType
from repro.transfer.policies import get_policy
from repro.transfer.vft import TransferTarget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.darray import DArray
    from repro.dr.dframe import DFrame
    from repro.dr.session import DRSession
    from repro.vertica.cluster import VerticaCluster

__all__ = ["db2darray", "db2dframe", "db2darray_with_response"]

_NUMERIC_TYPES = (SqlType.INTEGER, SqlType.FLOAT, SqlType.BOOLEAN)


def _table_types(cluster: "VerticaCluster", table_name: str,
                 columns: list[str]) -> dict[str, SqlType]:
    table = cluster.catalog.get_table(table_name)
    return {name: table.column(name).sql_type for name in columns}


def _run_transfer(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    policy_name: str,
    chunk_rows: int | None,
    where: str | None,
    as_frame: bool,
) -> "DArray | DFrame":
    if not columns:
        raise TransferError("at least one column must be transferred")
    cluster.install_standard_functions()
    sql_types = _table_types(cluster, table_name, columns)
    if not as_frame:
        non_numeric = [c for c, t in sql_types.items() if t not in _NUMERIC_TYPES]
        if non_numeric:
            raise TransferError(
                f"db2darray requires numeric columns; {non_numeric} are not "
                "(use db2dframe for mixed types)"
            )
    policy = get_policy(policy_name)
    policy.validate(cluster.node_count, session.node_count)

    if chunk_rows is None:
        # The paper's hint: table rows divided by the number of receiving R
        # instances, bounded to keep frames reasonably sized.
        total_rows = cluster.catalog.get_table(table_name).row_count
        instances = max(session.total_instances, 1)
        chunk_rows = int(np.clip(total_rows // instances or 1, 1_024, 262_144))

    target = TransferTarget(session, policy, columns, sql_types, as_frame=as_frame)
    try:
        where_clause = f" WHERE {where}" if where else ""
        query = (
            f"SELECT ExportToDistributedR({', '.join(columns)} "
            f"USING PARAMETERS target='{target.token}', chunk_rows={chunk_rows}, "
            f"policy='{policy.name}') OVER (PARTITION BEST) "
            f"FROM {table_name}{where_clause}"
        )
        # The Fig 14 breakdown, measured functionally: the SQL query is the
        # DB part (scan, decompress, re-encode, stream); finalize() is the
        # R part (parse staged bytes, build the distributed object).  The
        # cluster's "query" span and the finalize span both nest under one
        # vft.transfer span, so the same breakdown shows up in trace form.
        with session.tracer.span("vft.transfer", table=table_name,
                                 policy=policy.name) as span:
            db_start = time.perf_counter()
            result = cluster.sql(query)
            db_seconds = time.perf_counter() - db_start
            expected = int(np.sum(result.column("rows_sent"))) if len(result) else 0
            r_start = time.perf_counter()
            with session.tracer.span("vft.finalize"):
                loaded = target.finalize(cluster.node_count)
            r_seconds = time.perf_counter() - r_start
            span.set(rows_transferred=expected,
                     bytes_transferred=target.bytes_streamed,
                     db_seconds=db_seconds, r_seconds=r_seconds)
        session.telemetry.add("vft_db_seconds", db_seconds)
        session.telemetry.add("vft_r_seconds", r_seconds)
        session.telemetry.record_event(
            "vft_transfer", table=table_name, rows=expected,
            db_seconds=db_seconds, r_seconds=r_seconds, policy=policy.name,
        )
        actual = target.rows_streamed
        if actual != expected:
            raise TransferError(
                f"transfer incomplete: UDFs reported {expected} rows, "
                f"workers received {actual}"
            )
        return loaded
    finally:
        target.unregister()


def db2darray(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    policy: str = "locality",
    chunk_rows: int | None = None,
    where: str | None = None,
) -> "DArray":
    """Load numeric table columns into a distributed array via VFT.

    With ``policy="locality"`` the resulting partitions mirror the table's
    per-node segments (one partition per database node, unequal sizes);
    with ``policy="uniform"`` each worker receives an even share.
    """
    return _run_transfer(cluster, table_name, columns, session, policy,
                         chunk_rows, where, as_frame=False)


def db2dframe(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    policy: str = "locality",
    chunk_rows: int | None = None,
    where: str | None = None,
) -> "DFrame":
    """Load table columns (mixed types allowed) into a distributed frame."""
    return _run_transfer(cluster, table_name, columns, session, policy,
                         chunk_rows, where, as_frame=True)


def db2darray_with_response(
    cluster: "VerticaCluster",
    table_name: str,
    response_column: str,
    feature_columns: list[str],
    session: "DRSession",
    policy: str = "locality",
    chunk_rows: int | None = None,
    where: str | None = None,
) -> tuple["DArray", "DArray"]:
    """Load ``(Y, X)`` co-partitioned arrays in one transfer.

    This is Figure 3's ``data <- db2darray("mytable", list("def"),
    list("A","B"))`` pattern: the response and the features arrive together,
    are split worker-side, and stay co-located so ``hpdglm(Y, X)`` never
    moves data.
    """
    if response_column in feature_columns:
        raise TransferError("response column cannot also be a feature")
    combined = [response_column] + list(feature_columns)
    loaded = _run_transfer(cluster, table_name, combined, session, policy,
                           chunk_rows, where, as_frame=False)

    from repro.dr.darray import DArray

    assignment = [loaded.worker_of(i) for i in range(loaded.npartitions)]
    response = DArray(session, npartitions=loaded.npartitions,
                      worker_assignment=assignment)
    features = DArray(session, npartitions=loaded.npartitions,
                      worker_assignment=assignment)

    def split(index: int, combined_part: np.ndarray) -> None:
        response.fill_partition(index, combined_part[:, :1])
        features.fill_partition(index, combined_part[:, 1:])
        return None

    loaded.map_partitions(split)
    loaded.free()
    return response, features
