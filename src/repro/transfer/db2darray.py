"""User-facing loaders: ``db2darray`` and ``db2dframe`` (Figure 3, line 5).

One function call hides the whole VFT machinery: register a receiver, issue
the single ``ExportToDistributedR`` SQL query, wait for the parallel streams,
and assemble the distributed data structure.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ExecutionError, NodeDownError, TransferError
from repro.faults.plan import InjectedFault
from repro.faults.retry import RetryPolicy
from repro.storage.encoding import SqlType
from repro.transfer.policies import get_policy
from repro.transfer.vft import TransferTarget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dr.darray import DArray
    from repro.dr.dframe import DFrame
    from repro.dr.session import DRSession
    from repro.vertica.cluster import VerticaCluster

__all__ = ["db2darray", "db2dframe", "db2darray_with_response"]

_NUMERIC_TYPES = (SqlType.INTEGER, SqlType.FLOAT, SqlType.BOOLEAN)


def _table_types(cluster: "VerticaCluster", table_name: str,
                 columns: list[str]) -> dict[str, SqlType]:
    table = cluster.catalog.get_table(table_name)
    return {name: table.column(name).sql_type for name in columns}


def _run_transfer(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    policy_name: str,
    chunk_rows: int | None,
    where: str | None,
    as_frame: bool,
    retry: RetryPolicy | None = None,
) -> "DArray | DFrame":
    if not columns:
        raise TransferError("at least one column must be transferred")
    cluster.install_standard_functions()
    sql_types = _table_types(cluster, table_name, columns)
    if not as_frame:
        non_numeric = [c for c, t in sql_types.items() if t not in _NUMERIC_TYPES]
        if non_numeric:
            raise TransferError(
                f"db2darray requires numeric columns; {non_numeric} are not "
                "(use db2dframe for mixed types)"
            )
    policy = get_policy(policy_name)
    policy.validate(cluster.node_count, session.node_count)

    if chunk_rows is None:
        # The paper's hint: table rows divided by the number of receiving R
        # instances, bounded to keep frames reasonably sized.
        total_rows = cluster.catalog.get_table(table_name).row_count
        instances = max(session.total_instances, 1)
        chunk_rows = int(np.clip(total_rows // instances or 1, 1_024, 262_144))

    retry_policy = retry if retry is not None else RetryPolicy()
    target = TransferTarget(session, policy, columns, sql_types,
                            as_frame=as_frame, retry=retry_policy)
    try:
        # Whole-transfer retry: one attempt = one export query + finalize.
        # A failed attempt leaves already-staged frames in place; the next
        # attempt's senders consult the receiver's ack cursors and resend
        # only unstaged frames (and a crashed node's segment is re-read from
        # its buddy replica), so the retried darray is bit-identical to a
        # failure-free run.  NodeDownError (node *and* buddy gone) is not
        # retryable — it propagates immediately, before any darray exists.
        attempt = 1
        while True:
            try:
                return _transfer_attempt(cluster, session, target, table_name,
                                         policy.name, chunk_rows, where,
                                         attempt)
            except NodeDownError:
                raise
            except (TransferError, ExecutionError, InjectedFault) as exc:
                if attempt >= retry_policy.max_attempts:
                    raise
                session.telemetry.add("transfer_retries")
                with session.tracer.span(
                    "fault.recovered", mechanism="transfer_retry",
                    table=table_name, attempt=attempt, error=str(exc)[:120],
                ):
                    pass
                retry_policy.backoff(attempt)
                attempt += 1
    finally:
        target.unregister()


def _transfer_attempt(
    cluster: "VerticaCluster",
    session: "DRSession",
    target: TransferTarget,
    table_name: str,
    policy_name: str,
    chunk_rows: int,
    where: str | None,
    attempt: int,
) -> "DArray | DFrame":
    """One export-query + finalize attempt against an existing target."""
    where_clause = f" WHERE {where}" if where else ""
    query = (
        f"SELECT ExportToDistributedR({', '.join(target.columns)} "
        f"USING PARAMETERS target='{target.token}', chunk_rows={chunk_rows}, "
        f"policy='{policy_name}') OVER (PARTITION BEST) "
        f"FROM {table_name}{where_clause}"
    )
    # The Fig 14 breakdown, measured functionally: the SQL query is the
    # DB part (scan, decompress, re-encode, stream); finalize() is the
    # R part (parse staged bytes, build the distributed object).  The
    # cluster's "query" span and the finalize span both nest under one
    # vft.transfer span, so the same breakdown shows up in trace form.
    with session.tracer.span("vft.transfer", table=table_name,
                             policy=policy_name, attempt=attempt) as span:
        db_start = time.perf_counter()
        result = cluster.sql(query)
        db_seconds = time.perf_counter() - db_start
        expected = int(np.sum(result.column("rows_sent"))) if len(result) else 0
        # Completeness gate *before* finalize: a short transfer is retried
        # (senders resend unacked frames) without ever building a partial
        # darray or closing the staging streams.
        actual = target.rows_streamed
        if actual != expected:
            raise TransferError(
                f"transfer incomplete: UDFs reported {expected} rows, "
                f"workers received {actual}"
            )
        r_start = time.perf_counter()
        with session.tracer.span("vft.finalize"):
            loaded = target.finalize(cluster.node_count)
        r_seconds = time.perf_counter() - r_start
        span.set(rows_transferred=expected,
                 bytes_transferred=target.bytes_streamed,
                 db_seconds=db_seconds, r_seconds=r_seconds)
    session.telemetry.add("vft_db_seconds", db_seconds)
    session.telemetry.add("vft_r_seconds", r_seconds)
    session.telemetry.record_event(
        "vft_transfer", table=table_name, rows=expected,
        db_seconds=db_seconds, r_seconds=r_seconds, policy=policy_name,
    )
    return loaded


def db2darray(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    policy: str = "locality",
    chunk_rows: int | None = None,
    where: str | None = None,
    retry: RetryPolicy | None = None,
) -> "DArray":
    """Load numeric table columns into a distributed array via VFT.

    With ``policy="locality"`` the resulting partitions mirror the table's
    per-node segments (one partition per database node, unequal sizes);
    with ``policy="uniform"`` each worker receives an even share.
    ``retry`` tunes failure recovery (frame resends and whole-transfer
    re-attempts); the default policy retries up to 3 times.
    """
    return _run_transfer(cluster, table_name, columns, session, policy,
                         chunk_rows, where, as_frame=False, retry=retry)


def db2dframe(
    cluster: "VerticaCluster",
    table_name: str,
    columns: list[str],
    session: "DRSession",
    policy: str = "locality",
    chunk_rows: int | None = None,
    where: str | None = None,
    retry: RetryPolicy | None = None,
) -> "DFrame":
    """Load table columns (mixed types allowed) into a distributed frame."""
    return _run_transfer(cluster, table_name, columns, session, policy,
                         chunk_rows, where, as_frame=True, retry=retry)


def db2darray_with_response(
    cluster: "VerticaCluster",
    table_name: str,
    response_column: str,
    feature_columns: list[str],
    session: "DRSession",
    policy: str = "locality",
    chunk_rows: int | None = None,
    where: str | None = None,
    retry: RetryPolicy | None = None,
) -> tuple["DArray", "DArray"]:
    """Load ``(Y, X)`` co-partitioned arrays in one transfer.

    This is Figure 3's ``data <- db2darray("mytable", list("def"),
    list("A","B"))`` pattern: the response and the features arrive together,
    are split worker-side, and stay co-located so ``hpdglm(Y, X)`` never
    moves data.
    """
    if response_column in feature_columns:
        raise TransferError("response column cannot also be a feature")
    combined = [response_column] + list(feature_columns)
    loaded = _run_transfer(cluster, table_name, combined, session, policy,
                           chunk_rows, where, as_frame=False, retry=retry)

    from repro.dr.darray import DArray

    assignment = [loaded.worker_of(i) for i in range(loaded.npartitions)]
    response = DArray(session, npartitions=loaded.npartitions,
                      worker_assignment=assignment)
    features = DArray(session, npartitions=loaded.npartitions,
                      worker_assignment=assignment)

    def split(index: int, combined_part: np.ndarray) -> None:
        response.fill_partition(index, combined_part[:, :1])
        features.fill_partition(index, combined_part[:, 1:])
        return None

    loaded.map_partitions(split)
    loaded.free()
    return response, features
