"""Data distribution policies for Vertica Fast Transfer (§3.2).

A policy answers one question per outgoing chunk: *which Distributed R
worker receives it?*

* :class:`LocalityPreserving` (Figure 5) — one-to-one mapping between
  database nodes and workers: everything node *i* holds goes to worker *i*.
  Partition sizes then mirror the table's segmentation (skew included).
* :class:`UniformDistribution` (Figure 6) — each UDF instance sprinkles its
  chunks round-robin over *all* workers, so every worker ends up with
  roughly the same amount of data regardless of segmentation skew, and the
  policy works for any ratio of database nodes to workers.
"""

from __future__ import annotations

from repro.errors import TransferError

__all__ = ["TransferPolicy", "LocalityPreserving", "UniformDistribution", "get_policy"]


class TransferPolicy:
    """Strategy mapping outgoing chunks to receiving workers."""

    name = "abstract"

    def validate(self, db_node_count: int, worker_count: int) -> None:
        """Check the policy applies to this topology (may raise)."""

    def target_worker(self, db_node: int, instance_index: int, chunk_index: int,
                      worker_count: int) -> int:
        """Worker index that receives this chunk."""
        raise NotImplementedError

    def partition_count(self, db_node_count: int, worker_count: int) -> int:
        """How many darray partitions the load produces."""
        raise NotImplementedError

    def partition_for_worker(self, worker: int) -> int:
        """Which partition a worker's received data fills (1:1 for both
        built-in policies)."""
        return worker


class LocalityPreserving(TransferPolicy):
    """Figure 5: database node *i* streams only to worker *i*."""

    name = "locality"

    def validate(self, db_node_count: int, worker_count: int) -> None:
        if db_node_count != worker_count:
            raise TransferError(
                "the locality-preserving policy requires equal node counts: "
                f"{db_node_count} database nodes vs {worker_count} workers "
                "(use the uniform policy otherwise)"
            )

    def target_worker(self, db_node: int, instance_index: int, chunk_index: int,
                      worker_count: int) -> int:
        return db_node

    def partition_count(self, db_node_count: int, worker_count: int) -> int:
        return db_node_count


class UniformDistribution(TransferPolicy):
    """Figure 6: each UDF instance round-robins chunks over all workers."""

    name = "uniform"

    def target_worker(self, db_node: int, instance_index: int, chunk_index: int,
                      worker_count: int) -> int:
        # Offset by the (globally unique) instance index so concurrent
        # senders interleave rather than all starting at worker 0.
        return (instance_index + chunk_index) % worker_count

    def partition_count(self, db_node_count: int, worker_count: int) -> int:
        return worker_count


_POLICIES = {
    LocalityPreserving.name: LocalityPreserving,
    UniformDistribution.name: UniformDistribution,
}


def get_policy(name: str) -> TransferPolicy:
    """Resolve a policy by name (``"locality"`` or ``"uniform"``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise TransferError(
            f"unknown transfer policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
