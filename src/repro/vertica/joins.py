"""Hash equi-joins for the SQL layer.

Supports ``FROM a [alias] [INNER|LEFT] JOIN b [alias] ON <cond>`` where the
condition contains at least one cross-table equality (further conjuncts are
applied as residual filters).  The initiator gathers both inputs and builds
a classic hash join: factorize both sides' keys into shared integer codes,
sort the build side, and probe with ``searchsorted`` — fully vectorized.

Column naming in the joined batch: every column appears under its qualified
key (``alias.column``); columns whose bare name is unambiguous across the
two inputs also appear under the bare name, matching SQL resolution rules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SqlAnalysisError
from repro.vertica import expressions
from repro.vertica.models import R_MODELS_TABLE_NAME
from repro.vertica.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster
    from repro.vertica.txn.epochs import Snapshot

__all__ = ["materialize_join"]


def materialize_join(cluster: "VerticaCluster", stmt: ast.Select,
                     snapshot: "Snapshot | None" = None,
                     ) -> tuple[dict[str, np.ndarray], list[str]]:
    """Execute the join of ``stmt`` and return (batch, star column order).

    The batch maps qualified (and unambiguous bare) column keys to aligned
    arrays; the column order lists the qualified output names for
    ``SELECT *`` expansion (left columns then right columns).  Both sides
    read at the same ``snapshot`` (epochs come from one shared clock).
    """
    join = stmt.join
    left_name, right_name = stmt.table, join.table
    for name in (left_name, right_name):
        if name.lower() == R_MODELS_TABLE_NAME:
            raise SqlAnalysisError("R_Models cannot participate in joins")
    left_alias = stmt.table_alias or left_name
    right_alias = join.alias or right_name
    if left_alias == right_alias:
        raise SqlAnalysisError(
            f"both join inputs are named {left_alias!r}; use distinct aliases"
        )

    left_table = cluster.catalog.get_table(left_name)
    right_table = cluster.catalog.get_table(right_name)
    left_columns = set(left_table.column_names)
    right_columns = set(right_table.column_names)

    needed_left, needed_right = _resolve_references(
        stmt, left_alias, right_alias, left_columns, right_columns)

    # SELECT * needs every column from both sides.
    if stmt.select_star:
        needed_left = set(left_columns)
        needed_right = set(right_columns)

    # Always scan the key columns too.
    equalities, residual = _split_condition(
        join.condition, left_alias, right_alias, left_columns, right_columns)
    for left_expr, right_expr in equalities:
        needed_left |= _bare_columns(left_expr)
        needed_right |= _bare_columns(right_expr)
    for conj in residual:
        extra_left, extra_right = _classify_columns(
            conj, left_alias, right_alias, left_columns, right_columns)
        needed_left |= extra_left
        needed_right |= extra_right

    left_data = left_table.scan_all(
        sorted(needed_left) or [left_table.column_names[0]], snapshot=snapshot)
    right_data = right_table.scan_all(
        sorted(needed_right) or [right_table.column_names[0]], snapshot=snapshot)
    cluster.telemetry.add("join_rows_scanned",
                          _rows(left_data) + _rows(right_data))

    left_env = _side_env(left_data, left_alias)
    right_env = _side_env(right_data, right_alias)
    left_key_codes, right_key_codes = _composite_codes(
        [np.atleast_1d(np.asarray(expressions.evaluate(e, left_env)))
         for e, _ in equalities],
        [np.atleast_1d(np.asarray(expressions.evaluate(e, right_env)))
         for _, e in equalities],
    )

    left_index, right_index, matched = _hash_join(
        left_key_codes, right_key_codes, join.kind)
    cluster.telemetry.add("join_rows_produced", len(left_index))

    batch: dict[str, np.ndarray] = {}
    star_order: list[str] = []
    for column in sorted(needed_left):
        values = np.atleast_1d(np.asarray(left_data[column]))[left_index]
        batch[f"{left_alias}.{column}"] = values
    for column in sorted(needed_right):
        source = np.atleast_1d(np.asarray(right_data[column]))
        if len(source) == 0 and len(right_index):
            # LEFT JOIN against an empty right side: every output row is
            # unmatched; fabricate a placeholder column to null out below.
            values = np.zeros(len(right_index), dtype=source.dtype) \
                if source.dtype != object \
                else np.full(len(right_index), None, dtype=object)
        else:
            values = source[right_index]
        if join.kind == "left" and not matched.all():
            values = _null_out(values, ~matched)
        batch[f"{right_alias}.{column}"] = values
    if stmt.select_star:
        star_order = ([f"{left_alias}.{c}" for c in left_table.column_names]
                      + [f"{right_alias}.{c}" for c in right_table.column_names])
    # Unambiguous bare names resolve without qualification.
    for column in needed_left:
        if column not in right_columns:
            batch[column] = batch[f"{left_alias}.{column}"]
    for column in needed_right:
        if column not in left_columns:
            batch[column] = batch[f"{right_alias}.{column}"]

    # Residual (non-equality) join conjuncts filter the joined rows; for a
    # LEFT join they only apply to matched rows (unmatched rows survive).
    for conj in residual:
        mask = np.atleast_1d(
            np.asarray(expressions.evaluate(conj, batch), dtype=bool))
        if join.kind == "left":
            mask = mask | ~matched
        batch = {key: arr[mask] for key, arr in batch.items()}
        matched = matched[mask]
    return batch, star_order


def _rows(data: dict[str, np.ndarray]) -> int:
    for arr in data.values():
        return len(np.atleast_1d(arr))
    return 0


def _side_env(data: dict[str, np.ndarray], alias: str) -> dict[str, np.ndarray]:
    env = {name: np.atleast_1d(np.asarray(arr)) for name, arr in data.items()}
    env.update({f"{alias}.{name}": arr for name, arr in env.items()
                if "." not in name})
    return env


def _bare_columns(expr: ast.Expr) -> set[str]:
    return {node.name for node in expr.walk() if isinstance(node, ast.ColumnRef)}


def _resolve_references(stmt, left_alias, right_alias, left_columns,
                        right_columns) -> tuple[set[str], set[str]]:
    """Classify every column reference in the statement to a side."""
    sources: list[ast.Expr] = [item.expr for item in stmt.items]
    if stmt.where is not None:
        sources.append(stmt.where)
    sources.extend(stmt.group_by)
    if stmt.having is not None:
        sources.append(stmt.having)
    sources.extend(order.expr for order in stmt.order_by)

    needed_left: set[str] = set()
    needed_right: set[str] = set()
    for expr in sources:
        extra_left, extra_right = _classify_columns(
            expr, left_alias, right_alias, left_columns, right_columns)
        needed_left |= extra_left
        needed_right |= extra_right
    return needed_left, needed_right


def _classify_columns(expr, left_alias, right_alias, left_columns,
                      right_columns) -> tuple[set[str], set[str]]:
    needed_left: set[str] = set()
    needed_right: set[str] = set()
    for node in expr.walk():
        if not isinstance(node, ast.ColumnRef):
            continue
        if node.qualifier == left_alias:
            if node.name not in left_columns:
                raise SqlAnalysisError(
                    f"{left_alias!r} has no column {node.name!r}")
            needed_left.add(node.name)
        elif node.qualifier == right_alias:
            if node.name not in right_columns:
                raise SqlAnalysisError(
                    f"{right_alias!r} has no column {node.name!r}")
            needed_right.add(node.name)
        elif node.qualifier is not None:
            raise SqlAnalysisError(
                f"unknown table qualifier {node.qualifier!r} "
                f"(inputs: {left_alias!r}, {right_alias!r})"
            )
        else:
            in_left = node.name in left_columns
            in_right = node.name in right_columns
            if in_left and in_right:
                raise SqlAnalysisError(
                    f"column {node.name!r} is ambiguous; qualify it with "
                    f"{left_alias!r} or {right_alias!r}"
                )
            if in_left:
                needed_left.add(node.name)
            elif in_right:
                needed_right.add(node.name)
            else:
                raise SqlAnalysisError(
                    f"unknown column {node.name!r} in join query")
    return needed_left, needed_right


def _split_condition(condition, left_alias, right_alias, left_columns,
                     right_columns):
    """Separate cross-table equality conjuncts from residual predicates.

    Returns ``(equalities, residual)`` where each equality is an
    ``(left_expr, right_expr)`` pair oriented left-side-first.
    """
    equalities: list[tuple[ast.Expr, ast.Expr]] = []
    residual: list[ast.Expr] = []
    for conj in _conjuncts(condition):
        oriented = _orient_equality(conj, left_alias, right_alias,
                                    left_columns, right_columns)
        if oriented is not None:
            equalities.append(oriented)
        else:
            residual.append(conj)
    if not equalities:
        raise SqlAnalysisError(
            "join condition must include at least one cross-table equality "
            "(e.g. ON a.key = b.key)"
        )
    return equalities, residual


def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _orient_equality(expr, left_alias, right_alias, left_columns,
                     right_columns):
    if not (isinstance(expr, ast.BinaryOp) and expr.op == "="):
        return None

    def side_of(sub: ast.Expr) -> str | None:
        lefts, rights = _classify_columns(
            sub, left_alias, right_alias, left_columns, right_columns)
        if lefts and not rights:
            return "left"
        if rights and not lefts:
            return "right"
        return None

    first, second = side_of(expr.left), side_of(expr.right)
    if first == "left" and second == "right":
        return (expr.left, expr.right)
    if first == "right" and second == "left":
        return (expr.right, expr.left)
    return None


def _composite_codes(left_keys: list[np.ndarray], right_keys: list[np.ndarray]):
    """Factorize multi-column keys into comparable integer codes."""
    left_rows = len(left_keys[0]) if left_keys else 0
    right_rows = len(right_keys[0]) if right_keys else 0
    left_combined = np.zeros(left_rows, dtype=np.int64)
    right_combined = np.zeros(right_rows, dtype=np.int64)
    for left_arr, right_arr in zip(left_keys, right_keys):
        left_side = np.asarray(left_arr)
        right_side = np.asarray(right_arr)
        if (left_side.dtype.kind in "biuf" and right_side.dtype.kind in "biuf"):
            # Numeric keys compare numerically (int 5 joins float 5.0).
            both = np.concatenate([
                left_side.astype(np.float64), right_side.astype(np.float64)
            ])
        else:
            both = np.concatenate([
                left_side.astype(object), right_side.astype(object)
            ]).astype(str)
        _, inverse = np.unique(both, return_inverse=True)
        cardinality = int(inverse.max()) + 1 if len(inverse) else 1
        left_combined = left_combined * cardinality + inverse[:left_rows]
        right_combined = right_combined * cardinality + inverse[left_rows:]
    return (left_combined, right_combined)


def _hash_join(left_codes: np.ndarray, right_codes: np.ndarray, kind: str):
    """Match rows by code; returns (left_index, right_index, matched_mask)."""
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = ends - starts
    if kind == "left":
        effective = np.maximum(counts, 1)  # unmatched rows appear once
    else:
        effective = counts
    left_index = np.repeat(np.arange(len(left_codes)), effective)
    total = int(effective.sum())
    offsets = np.repeat(np.cumsum(effective) - effective, effective)
    within = np.arange(total) - offsets
    matched_row = np.repeat(counts > 0, effective)
    probe = np.repeat(starts, effective) + within
    probe = np.clip(probe, 0, max(len(order) - 1, 0))
    right_index = order[probe] if len(order) else np.zeros(total, dtype=np.int64)
    return left_index, right_index, matched_row


def _null_out(values: np.ndarray, null_mask: np.ndarray) -> np.ndarray:
    """Null the unmatched rows of a LEFT join's right-side column."""
    values = np.atleast_1d(values)
    if values.dtype == object:
        out = values.copy()
        out[null_mask] = None
        return out
    out = values.astype(np.float64, copy=True)
    out[null_mask] = np.nan
    return out
