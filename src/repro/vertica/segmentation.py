"""Table segmentation schemes.

A segmentation scheme decides, per inserted row, which database node's
segment stores it.  The paper's transfer policies are all about this
placement: *locality preserving* transfer ships each node's segment to the
co-located worker, so skewed segmentation directly produces skewed Distributed
R partitions (the motivation for the *uniform distribution* policy).

Schemes:

* :class:`HashSegmentation` — Vertica's ``SEGMENTED BY HASH(col) ALL NODES``.
* :class:`RoundRobinSegmentation` — even spread regardless of content.
* :class:`SkewedSegmentation` — deliberately uneven placement (weights per
  node); used by the ablation benchmarks to create stragglers.
* :class:`Unsegmented` — the whole table on one node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatalogError

__all__ = [
    "SegmentationScheme",
    "HashSegmentation",
    "RoundRobinSegmentation",
    "SkewedSegmentation",
    "Unsegmented",
    "hash64",
]


def hash64(values: np.ndarray) -> np.ndarray:
    """Vectorized 64-bit mix hash (splitmix64 finalizer) over a column.

    Integers and booleans hash their value; floats hash their bit pattern;
    object (varchar) columns hash per-value via Python's stable string hash
    surrogate (FNV-1a over UTF-8) so results are process-independent.
    """
    arr = np.asarray(values)
    if arr.dtype == object:
        return np.asarray([_fnv1a(str(v)) for v in arr], dtype=np.uint64)
    if arr.dtype.kind == "f":
        bits = arr.astype(np.float64).view(np.uint64)
    else:
        bits = arr.astype(np.int64).view(np.uint64)
    x = bits.copy()
    x += np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def _fnv1a(text: str) -> int:
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


class SegmentationScheme:
    """Maps each inserted row to a node index in ``[0, node_count)``."""

    def assign(self, batch: dict[str, np.ndarray], row_count: int,
               start_rowid: int, node_count: int) -> np.ndarray:
        """Return an int array of node indices, one per row."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class HashSegmentation(SegmentationScheme):
    """``SEGMENTED BY HASH(column) ALL NODES``."""

    column: str

    def assign(self, batch, row_count, start_rowid, node_count):
        if self.column not in batch:
            raise CatalogError(
                f"segmentation column {self.column!r} missing from inserted batch"
            )
        return (hash64(batch[self.column]) % np.uint64(node_count)).astype(np.int64)

    def describe(self) -> str:
        return f"hash({self.column})"


@dataclass(frozen=True)
class RoundRobinSegmentation(SegmentationScheme):
    """Row *i* goes to node ``i % node_count`` (by global row id)."""

    def assign(self, batch, row_count, start_rowid, node_count):
        rowids = np.arange(start_rowid, start_rowid + row_count, dtype=np.int64)
        return rowids % node_count

    def describe(self) -> str:
        return "round-robin"


@dataclass(frozen=True)
class SkewedSegmentation(SegmentationScheme):
    """Places rows proportionally to per-node ``weights``.

    Deterministic: the global row id is hashed to a uniform value which is
    then bucketed by the cumulative weights.  ``weights=(4, 1, 1)`` puts
    roughly 2/3 of rows on node 0 — enough to make stragglers visible.
    """

    weights: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.weights or any(w <= 0 for w in self.weights):
            raise CatalogError("skewed segmentation requires positive weights")

    def assign(self, batch, row_count, start_rowid, node_count):
        if len(self.weights) != node_count:
            raise CatalogError(
                f"{len(self.weights)} weights but {node_count} nodes"
            )
        rowids = np.arange(start_rowid, start_rowid + row_count, dtype=np.int64)
        uniform = hash64(rowids).astype(np.float64) / float(2**64)
        cumulative = np.cumsum(self.weights) / float(sum(self.weights))
        return np.searchsorted(cumulative, uniform, side="right").astype(np.int64)

    def describe(self) -> str:
        return f"skewed{self.weights}"


@dataclass(frozen=True)
class Unsegmented(SegmentationScheme):
    """Entire table on a single node (Vertica's UNSEGMENTED projections)."""

    node: int = 0

    def assign(self, batch, row_count, start_rowid, node_count):
        if not 0 <= self.node < node_count:
            raise CatalogError(
                f"unsegmented node {self.node} out of range for {node_count} nodes"
            )
        return np.full(row_count, self.node, dtype=np.int64)

    def describe(self) -> str:
        return f"unsegmented(node {self.node})"
