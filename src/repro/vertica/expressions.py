"""Vectorized expression evaluation over column batches.

The executor hands this module a *batch*: a dict mapping column names to
1-D numpy arrays of equal length.  Expressions evaluate to numpy arrays
(broadcasting scalars), which keeps WHERE filters and projections fast enough
to process millions of rows per node — the property the in-database
prediction experiments (Figs 15/16) rely on.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import SqlAnalysisError
from repro.vertica.sql import ast

__all__ = ["evaluate", "columns_referenced", "register_scalar_function",
           "scalar_function_names"]

_SCALAR_FUNCTIONS: dict[str, Callable[..., np.ndarray]] = {}


def register_scalar_function(name: str, fn: Callable[..., np.ndarray]) -> None:
    """Register a scalar SQL function callable with numpy array arguments."""
    _SCALAR_FUNCTIONS[name.lower()] = fn


def scalar_function_names() -> list[str]:
    return sorted(_SCALAR_FUNCTIONS)


def _with_float(fn: Callable[[np.ndarray], np.ndarray]) -> Callable[..., np.ndarray]:
    return lambda x: fn(np.asarray(x, dtype=np.float64))


register_scalar_function("abs", np.abs)
register_scalar_function("sqrt", _with_float(np.sqrt))
register_scalar_function("exp", _with_float(np.exp))
register_scalar_function("ln", _with_float(np.log))
register_scalar_function("log", _with_float(np.log10))
register_scalar_function("floor", _with_float(np.floor))
register_scalar_function("ceil", _with_float(np.ceil))
register_scalar_function("ceiling", _with_float(np.ceil))
register_scalar_function("sign", _with_float(np.sign))
register_scalar_function("power", lambda x, y: np.power(
    np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)))
register_scalar_function("mod", lambda x, y: np.mod(x, y))
register_scalar_function("round", lambda x, d=0: np.round(
    np.asarray(x, dtype=np.float64), int(np.asarray(d).flat[0]) if np.ndim(d) else int(d)))
register_scalar_function("is_null", lambda x: _is_null(x))
register_scalar_function("coalesce", lambda *xs: _coalesce(*xs))
register_scalar_function("least", lambda *xs: _fold_pairwise(np.minimum, xs))
register_scalar_function("greatest", lambda *xs: _fold_pairwise(np.maximum, xs))


def _fold_pairwise(fn: Callable, xs: tuple) -> np.ndarray:
    if not xs:
        raise SqlAnalysisError("least/greatest require at least one argument")
    result = np.asarray(xs[0])
    for candidate in xs[1:]:
        result = fn(result, np.asarray(candidate))
    return result
register_scalar_function("upper", lambda x: _string_map(x, str.upper))
register_scalar_function("lower", lambda x: _string_map(x, str.lower))
register_scalar_function("length", lambda x: np.asarray(
    [len(v) if v is not None else 0 for v in np.asarray(x, dtype=object)], dtype=np.int64))


def _is_null(x: Any) -> np.ndarray:
    arr = np.asarray(x)
    if arr.dtype == object:
        return np.asarray([v is None for v in arr], dtype=bool)
    if arr.dtype.kind == "f":
        return np.isnan(arr)
    return np.zeros(arr.shape, dtype=bool)


def _coalesce(*xs: Any) -> np.ndarray:
    if not xs:
        raise SqlAnalysisError("coalesce() requires at least one argument")
    result = np.asarray(xs[0])
    for candidate in xs[1:]:
        mask = _is_null(result)
        if not mask.any():
            break
        result = np.where(mask, np.asarray(candidate), result)
    return result


def _string_map(x: Any, fn: Callable[[str], str]) -> np.ndarray:
    arr = np.asarray(x, dtype=object)
    return np.asarray([None if v is None else fn(str(v)) for v in arr], dtype=object)


def columns_referenced(expr: ast.Expr) -> set[str]:
    """Set of column keys (``name`` or ``qualifier.name``) an expression reads."""
    return {node.key for node in expr.walk() if isinstance(node, ast.ColumnRef)}


def evaluate(expr: ast.Expr, batch: Mapping[str, np.ndarray]) -> np.ndarray:
    """Evaluate ``expr`` over ``batch``; returns an array broadcast to the
    batch's row count (scalar literals become 0-d arrays the caller may
    broadcast)."""
    if isinstance(expr, ast.Literal):
        return np.asarray(expr.value) if expr.value is not None else np.asarray(np.nan)
    if isinstance(expr, ast.ColumnRef):
        try:
            return batch[expr.key]
        except KeyError:
            known = sorted(batch)
            raise SqlAnalysisError(
                f"unknown column {expr.key!r}; available: {known}"
            ) from None
    if isinstance(expr, ast.UnaryOp):
        operand = evaluate(expr.operand, batch)
        if expr.op == "-":
            return -np.asarray(operand)
        if expr.op == "NOT":
            return ~np.asarray(operand, dtype=bool)
        raise SqlAnalysisError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, batch)
    if isinstance(expr, ast.FunctionCall):
        try:
            fn = _SCALAR_FUNCTIONS[expr.name]
        except KeyError:
            raise SqlAnalysisError(f"unknown function {expr.name!r}") from None
        args = [evaluate(arg, batch) for arg in expr.args]
        return np.asarray(fn(*args))
    if isinstance(expr, ast.InList):
        operand = np.atleast_1d(np.asarray(evaluate(expr.operand, batch)))
        result = np.zeros(operand.shape, dtype=bool)
        for value in expr.values:
            if value is None:
                continue
            result |= np.asarray(_compare(operand, value, "eq"))
        return result
    if isinstance(expr, ast.LikeMatch):
        operand = np.atleast_1d(
            np.asarray(evaluate(expr.operand, batch), dtype=object))
        regex = _like_to_regex(expr.pattern)
        return np.asarray(
            [v is not None and regex.fullmatch(str(v)) is not None
             for v in operand],
            dtype=bool,
        )
    if isinstance(expr, ast.AggregateCall):
        raise SqlAnalysisError(
            f"aggregate {expr.name} used outside an aggregation context"
        )
    if isinstance(expr, ast.Star):
        raise SqlAnalysisError("'*' is not a scalar expression")
    raise SqlAnalysisError(f"cannot evaluate expression node {type(expr).__name__}")


@lru_cache(maxsize=256)
def _like_to_regex(pattern: str) -> "re.Pattern":
    """Translate a SQL LIKE pattern (%% any run, _ one char) to a regex."""
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("".join(parts), flags=re.DOTALL)


def _binary(expr: ast.BinaryOp, batch: Mapping[str, np.ndarray]) -> np.ndarray:
    op = expr.op
    if op in ("AND", "OR"):
        left = np.asarray(evaluate(expr.left, batch), dtype=bool)
        right = np.asarray(evaluate(expr.right, batch), dtype=bool)
        return left & right if op == "AND" else left | right
    left = evaluate(expr.left, batch)
    right = evaluate(expr.right, batch)
    if op == "||":
        l = np.atleast_1d(np.asarray(left, dtype=object))
        r = np.atleast_1d(np.asarray(right, dtype=object))
        l, r = np.broadcast_arrays(l, r)
        return np.asarray([f"{a}{b}" for a, b in zip(l, r)], dtype=object)
    if op == "+":
        return np.add(left, right)
    if op == "-":
        return np.subtract(left, right)
    if op == "*":
        return np.multiply(left, right)
    if op == "/":
        return np.divide(np.asarray(left, dtype=np.float64), right)
    if op == "%":
        return np.mod(left, right)
    if op == "=":
        return _compare(left, right, "eq")
    if op == "<>":
        return ~_compare(left, right, "eq")
    if op == "<":
        return _compare(left, right, "lt")
    if op == "<=":
        return _compare(left, right, "le")
    if op == ">":
        return _compare(left, right, "gt")
    if op == ">=":
        return _compare(left, right, "ge")
    raise SqlAnalysisError(f"unknown operator {op!r}")


_COMPARATORS = {
    "eq": np.equal,
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
}


def _compare(left: Any, right: Any, kind: str) -> np.ndarray:
    l, r = np.asarray(left), np.asarray(right)
    if l.dtype == object or r.dtype == object:
        l = np.atleast_1d(l.astype(object))
        r = np.atleast_1d(r.astype(object))
        l, r = np.broadcast_arrays(l, r)
        py = {"eq": lambda a, b: a == b, "lt": lambda a, b: a < b,
              "le": lambda a, b: a <= b, "gt": lambda a, b: a > b,
              "ge": lambda a, b: a >= b}[kind]
        return np.asarray([
            False if a is None or b is None else py(a, b) for a, b in zip(l, r)
        ], dtype=bool)
    return np.asarray(_COMPARATORS[kind](l, r), dtype=bool)
