"""Vectorized, node-parallel query execution.

Executes the three plan shapes from :mod:`repro.vertica.planner`:

* **Scan** — each node filters and projects its segment on a thread pool;
  the initiator concatenates, orders, and limits.
* **Aggregate** — classic two-phase MPP aggregation: nodes compute partial
  states per group, the initiator merges and evaluates the final
  expressions (AVG becomes sum/count, etc.).
* **UDTF** — the fan-out engine behind ``ExportToDistributedR`` and the
  prediction functions: ``PARTITION NODES`` runs one instance per node on
  its local segment, ``PARTITION BEST`` splits each node's local data into
  planner-chosen chunks, and ``PARTITION BY`` hash-shuffles rows so equal
  keys land in one instance (charging cross-node traffic to telemetry).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.errors import ExecutionError, SqlAnalysisError
from repro.vertica import expressions
from repro.vertica.planner import AggregatePlan, ScanPlan, UdtfPlan, plan_select
from repro.vertica.segmentation import hash64
from repro.vertica.sql import ast
from repro.vertica.udtf import UdtfContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["ResultSet", "QueryExecutor"]


class ResultSet:
    """Columnar query result with row-oriented accessors."""

    def __init__(self, column_names: list[str], columns: dict[str, np.ndarray]) -> None:
        self.column_names = list(column_names)
        self._columns = {
            name: np.atleast_1d(np.asarray(columns[name])) for name in column_names
        }
        lengths = {len(arr) for arr in self._columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged result columns: {lengths}")
        self._length = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutionError(
                f"result has no column {name!r}; columns: {self.column_names}"
            ) from None

    def as_arrays(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    def rows(self) -> list[tuple]:
        """Materialize as a list of row tuples (column order preserved)."""
        arrays = [self._columns[name] for name in self.column_names]
        return [tuple(arr[i] for arr in arrays) for i in range(self._length)]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if self._length != 1 or len(self.column_names) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {self._length}x{len(self.column_names)}"
            )
        return self._columns[self.column_names[0]][0]


class QueryExecutor:
    """Executes parsed statements against a cluster."""

    def __init__(self, cluster: "VerticaCluster") -> None:
        self.cluster = cluster

    # -- statement dispatch ---------------------------------------------------

    def execute(self, stmt: ast.Statement, user: str = "dbadmin") -> ResultSet:
        if isinstance(stmt, ast.Select):
            return self._execute_select(stmt, user)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create(stmt)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.DropTable):
            self.cluster.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
            return ResultSet(["status"], {"status": np.asarray(["DROP TABLE"], dtype=object)})
        if isinstance(stmt, ast.Explain):
            return self._execute_explain(stmt.query)
        raise ExecutionError(f"unsupported statement type {type(stmt).__name__}")

    def _execute_explain(self, stmt: ast.Select) -> ResultSet:
        """Describe the physical plan as one text row per plan step."""
        stmt = self._resolve_aliases(stmt)
        lines: list[str] = []

        def scan_line(table_name: str) -> str:
            if table_name.lower() == "r_models":
                return "SCAN catalog table R_Models"
            table = self.cluster.catalog.get_table(table_name)
            counts = table.segment_row_counts()
            return (f"SCAN {table.name} [{table.row_count} rows, "
                    f"{table.node_count} segments {counts}, "
                    f"{table.segmentation.describe()}]")

        if stmt.join is not None:
            left_alias = stmt.table_alias or stmt.table
            right_alias = stmt.join.alias or stmt.join.table
            lines.append(scan_line(stmt.table) + f" AS {left_alias}")
            lines.append(scan_line(stmt.join.table) + f" AS {right_alias}")
            lines.append(
                f"HASH {stmt.join.kind.upper()} JOIN ON {stmt.join.condition}"
            )
        elif stmt.table is not None:
            lines.append(scan_line(stmt.table))
        if stmt.where is not None:
            lines.append(f"FILTER {stmt.where}")
        if stmt.udtf is not None:
            fanout = {
                ast.PartitionKind.BEST: "planner-chosen instances per node",
                ast.PartitionKind.NODES: "one instance per node",
                ast.PartitionKind.BY_COLUMN: "hash-partitioned by key",
            }[stmt.udtf.partition.kind]
            lines.append(f"UDTF {stmt.udtf.name} [{fanout}]")
        elif stmt.group_by or _has_aggregates(stmt):
            keys = ", ".join(map(str, stmt.group_by)) or "<global>"
            lines.append(f"AGGREGATE partial per node, merge on initiator "
                         f"[group by {keys}]")
        if not stmt.udtf:
            projections = ("*" if stmt.select_star
                           else ", ".join(i.output_name for i in stmt.items))
            lines.append(f"PROJECT {projections}")
        if stmt.order_by:
            keys = ", ".join(
                f"{o.expr} {'ASC' if o.ascending else 'DESC'}"
                for o in stmt.order_by)
            lines.append(f"SORT {keys}")
        if stmt.limit is not None:
            lines.append(f"LIMIT {stmt.limit}")
        return ResultSet(["plan"], {"plan": np.asarray(lines, dtype=object)})

    def _execute_create(self, stmt: ast.CreateTable) -> ResultSet:
        from repro.storage.encoding import ColumnSchema, SqlType
        from repro.vertica.segmentation import HashSegmentation, RoundRobinSegmentation, Unsegmented

        schema = [
            ColumnSchema(col.name, SqlType.from_sql_name(col.type_name))
            for col in stmt.columns
        ]
        if stmt.segmentation is None:
            segmentation = RoundRobinSegmentation()
        elif stmt.segmentation.kind == "hash":
            segmentation = HashSegmentation(stmt.segmentation.column)
        else:
            segmentation = Unsegmented()
        self.cluster.create_table(stmt.name, schema, segmentation=segmentation)
        return ResultSet(["status"], {"status": np.asarray(["CREATE TABLE"], dtype=object)})

    def _execute_insert(self, stmt: ast.Insert) -> ResultSet:
        table = self.cluster.catalog.get_table(stmt.table)
        inserted = table.insert_rows(stmt.rows)
        return ResultSet(["count"], {"count": np.asarray([inserted], dtype=np.int64)})

    # -- SELECT ---------------------------------------------------------------

    def _execute_select(self, stmt: ast.Select, user: str) -> ResultSet:
        stmt = self._resolve_aliases(stmt)
        if stmt.join is not None:
            return self._execute_join_select(stmt)
        plan = plan_select(stmt)
        if isinstance(plan, UdtfPlan):
            return self._execute_udtf(plan, user)
        if isinstance(plan, AggregatePlan):
            return self._execute_aggregate(plan)
        return self._execute_scan(plan)

    def _execute_join_select(self, stmt: ast.Select) -> ResultSet:
        """Joined SELECT: materialize the hash join, then run the normal
        scan/aggregate pipeline over the single joined batch."""
        from repro.vertica.joins import materialize_join

        if stmt.udtf is not None:
            raise SqlAnalysisError("UDTF calls over joins are not supported")
        batch, star_columns = materialize_join(self.cluster, stmt)
        if stmt.where is not None:
            mask = np.atleast_1d(
                np.asarray(expressions.evaluate(stmt.where, batch), dtype=bool))
            batch = {key: arr[mask] for key, arr in batch.items()}
            stmt.where = None
        plan = plan_select(stmt)
        if isinstance(plan, AggregatePlan):
            return self._execute_aggregate(plan, batches=[batch])
        return self._execute_scan(plan, batches=[batch], star_columns=star_columns)

    def _resolve_aliases(self, stmt: ast.Select) -> ast.Select:
        """Let GROUP BY / HAVING / ORDER BY reference select-list aliases.

        A real table column of the same name wins over an alias, matching
        standard SQL resolution.
        """
        alias_map = {
            item.alias: item.expr for item in stmt.items if item.alias is not None
        }
        if not alias_map or stmt.table is None:
            return stmt
        table_columns = set(self.cluster.table_columns(stmt.table))
        if stmt.join is not None:
            table_columns |= set(self.cluster.table_columns(stmt.join.table))

        def substitute(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ColumnRef):
                if (expr.qualifier is None and expr.name in alias_map
                        and expr.name not in table_columns):
                    return alias_map[expr.name]
                return expr
            if isinstance(expr, ast.BinaryOp):
                return ast.BinaryOp(expr.op, substitute(expr.left), substitute(expr.right))
            if isinstance(expr, ast.UnaryOp):
                return ast.UnaryOp(expr.op, substitute(expr.operand))
            if isinstance(expr, ast.FunctionCall):
                return ast.FunctionCall(expr.name, tuple(substitute(a) for a in expr.args))
            if isinstance(expr, ast.AggregateCall):
                arg = None if expr.arg is None else substitute(expr.arg)
                return ast.AggregateCall(expr.name, arg, expr.distinct)
            return expr

        stmt.group_by = [substitute(e) for e in stmt.group_by]
        if stmt.having is not None:
            stmt.having = substitute(stmt.having)
        stmt.order_by = [
            ast.OrderItem(substitute(o.expr), o.ascending) for o in stmt.order_by
        ]
        return stmt

    def _table_batches(
        self, table_name: str, columns_needed: set[str], where: ast.Expr | None
    ) -> list[dict[str, np.ndarray]]:
        """Scan per-node batches in parallel, applying the WHERE filter.

        Range constraints extracted from the WHERE clause push down to the
        scan as zone-map envelopes, so row groups the predicate excludes are
        never decompressed; the exact filter still runs afterwards.
        """
        from repro.vertica.pruning import extract_column_ranges

        ranges = extract_column_ranges(where)
        batches = self.cluster.scan_table_per_node(table_name, columns_needed,
                                                   ranges=ranges or None)
        if where is None:
            return batches
        filtered = []
        for batch in batches:
            mask = np.atleast_1d(
                np.asarray(expressions.evaluate(where, batch), dtype=bool)
            )
            if mask.shape == (1,) and _batch_rows(batch) != 1:
                mask = np.broadcast_to(mask, (_batch_rows(batch),))
            filtered.append({name: arr[mask] for name, arr in batch.items()})
        return filtered

    def _execute_scan(self, plan: ScanPlan,
                      batches: list[dict[str, np.ndarray]] | None = None,
                      star_columns: list[str] | None = None) -> ResultSet:
        if plan.select_star:
            table_columns = star_columns or self.cluster.table_columns(plan.table)
            items = [ast.SelectItem(ast.ColumnRef(name)) for name in table_columns]
            needed = set(table_columns) | plan.columns_needed
        else:
            items = plan.items
            needed = set(plan.columns_needed)
        if batches is None:
            batches = self._table_batches(plan.table, needed, plan.where)
        names = [item.output_name for item in items]
        outputs: dict[str, list[np.ndarray]] = {name: [] for name in names}
        order_values: list[list[np.ndarray]] = [[] for _ in plan.order_by]
        for batch in batches:
            rows = _batch_rows(batch)
            for item, name in zip(items, names):
                value = np.asarray(expressions.evaluate(item.expr, batch))
                outputs[name].append(_broadcast_rows(value, rows))
            for i, order in enumerate(plan.order_by):
                value = np.asarray(expressions.evaluate(order.expr, batch))
                order_values[i].append(_broadcast_rows(value, rows))
        columns = {
            name: np.concatenate(chunks) if chunks else np.empty(0)
            for name, chunks in outputs.items()
        }
        if plan.distinct:
            keep = _distinct_indices([columns[name] for name in names])
            columns = {name: arr[keep] for name, arr in columns.items()}
            for i in range(len(order_values)):
                order_values[i] = [np.concatenate(order_values[i])[keep]] \
                    if order_values[i] else order_values[i]
        if plan.order_by:
            keys = [np.concatenate(vals) for vals in order_values]
            index = _sort_index(keys, [o.ascending for o in plan.order_by])
            columns = {name: arr[index] for name, arr in columns.items()}
        if plan.limit is not None:
            columns = {name: arr[: plan.limit] for name, arr in columns.items()}
        return ResultSet(names, columns)

    # -- aggregation ------------------------------------------------------------

    def _execute_aggregate(self, plan: AggregatePlan,
                           batches: list[dict[str, np.ndarray]] | None = None
                           ) -> ResultSet:
        if batches is None:
            batches = self._table_batches(plan.table, plan.columns_needed,
                                          plan.where)
        merged: dict[tuple, list[_AggState]] = {}
        for batch in batches:
            for key, states in self._partial_aggregate(plan, batch).items():
                if key not in merged:
                    merged[key] = states
                else:
                    for existing, incoming in zip(merged[key], states):
                        existing.merge(incoming)
        if not plan.group_by and not merged:
            # Global aggregate over zero rows still yields one row.
            merged[()] = [_AggState(agg) for agg in plan.aggregates]

        group_keys = sorted(merged.keys(), key=_sort_key_tuple)
        env: dict[str, np.ndarray] = {}
        for i, expr in enumerate(plan.group_by):
            env[_group_alias(i)] = np.asarray(
                [key[i] for key in group_keys],
                dtype=object if any(isinstance(k[i], str) for k in group_keys) else None,
            )
        for j, agg in enumerate(plan.aggregates):
            env[_agg_alias(j)] = np.asarray(
                [merged[key][j].finalize() for key in group_keys]
            )

        rewritten_items = [
            ast.SelectItem(_rewrite(item.expr, plan), item.output_name)
            for item in plan.items
        ]
        names = [item.output_name for item in plan.items]
        columns = {}
        rows = len(group_keys)
        for item, name in zip(rewritten_items, names):
            value = np.asarray(expressions.evaluate(item.expr, env))
            columns[name] = _broadcast_rows(value, rows)

        if plan.having is not None:
            mask = np.atleast_1d(np.asarray(
                expressions.evaluate(_rewrite(plan.having, plan), env), dtype=bool
            ))
            mask = _broadcast_rows(mask, rows).astype(bool)
            columns = {name: arr[mask] for name, arr in columns.items()}
            env = {name: arr[mask] for name, arr in env.items()}
            rows = int(mask.sum())

        if plan.order_by:
            keys = []
            for order in plan.order_by:
                value = np.asarray(
                    expressions.evaluate(_rewrite(order.expr, plan), env)
                )
                keys.append(_broadcast_rows(value, rows))
            index = _sort_index(keys, [o.ascending for o in plan.order_by])
            columns = {name: arr[index] for name, arr in columns.items()}
        if plan.limit is not None:
            columns = {name: arr[: plan.limit] for name, arr in columns.items()}
        return ResultSet(names, columns)

    def _partial_aggregate(
        self, plan: AggregatePlan, batch: dict[str, np.ndarray]
    ) -> dict[tuple, list["_AggState"]]:
        rows = _batch_rows(batch)
        if plan.group_by:
            key_arrays = [
                _broadcast_rows(np.asarray(expressions.evaluate(e, batch)), rows)
                for e in plan.group_by
            ]
            group_keys, inverse = _factorize(key_arrays)
        else:
            group_keys, inverse = [()], np.zeros(rows, dtype=np.int64)

        agg_inputs = []
        for agg in plan.aggregates:
            if agg.arg is None:
                agg_inputs.append(None)
            else:
                value = np.asarray(expressions.evaluate(agg.arg, batch))
                agg_inputs.append(_broadcast_rows(value, rows))

        partials: dict[tuple, list[_AggState]] = {}
        for g, key in enumerate(group_keys):
            mask = inverse == g
            states = []
            for agg, values in zip(plan.aggregates, agg_inputs):
                state = _AggState(agg)
                state.update(None if values is None else values[mask], int(mask.sum()))
                states.append(state)
            partials[key] = states
        return partials

    # -- UDTF fan-out -----------------------------------------------------------

    def _execute_udtf(self, plan: UdtfPlan, user: str) -> ResultSet:
        # Built-in transfer/prediction functions install on first use.
        if not self.cluster.catalog.has_udtf(plan.udtf.name):
            self.cluster.install_standard_functions()
        udtf = self.cluster.catalog.get_udtf(plan.udtf.name)
        node_count = self.cluster.node_count
        batches = self._table_batches(plan.table, plan.columns_needed, plan.where)
        arg_batches = [
            self._bind_args(plan.udtf.args, batch) for batch in batches
        ]

        kind = plan.udtf.partition.kind
        if kind is ast.PartitionKind.NODES:
            assignments = [(node, args) for node, args in enumerate(arg_batches)]
        elif kind is ast.PartitionKind.BEST:
            assignments = []
            for node, args in enumerate(arg_batches):
                rowgroups = self.cluster.node_rowgroup_count(plan.table, node)
                instances = self.cluster.nodes[node].best_udtf_parallelism(rowgroups)
                assignments.extend(
                    (node, chunk) for chunk in _split_args(args, instances)
                )
        else:  # PARTITION BY expr: hash-shuffle keys across the cluster
            assignments = self._shuffle_by_key(plan, batches, arg_batches, node_count)

        self.cluster.telemetry.add("udtf_instances", len(assignments))
        results: list[dict[str, np.ndarray] | None] = [None] * len(assignments)

        def run_instance(index: int) -> None:
            node, args = assignments[index]
            ctx = UdtfContext(
                cluster=self.cluster,
                node_index=node,
                instance_index=index,
                instance_count=len(assignments),
                session_user=user,
            )
            output = udtf.process(ctx, args, dict(plan.udtf.parameters))
            udtf.validate_output(output)
            results[index] = output

        max_workers = max(1, min(len(assignments), self.cluster.executor_threads))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            list(pool.map(run_instance, range(len(assignments))))

        outputs = [r for r in results if r]
        if not outputs:
            declared = udtf.output_schema(dict(plan.udtf.parameters))
            if declared:
                return ResultSet(
                    [c.name for c in declared],
                    {c.name: np.empty(0, dtype=c.numpy_dtype) for c in declared},
                )
            return ResultSet([], {})
        names = list(outputs[0].keys())
        columns = {
            name: np.concatenate([np.atleast_1d(np.asarray(o[name])) for o in outputs])
            for name in names
        }
        return ResultSet(names, columns)

    def _bind_args(
        self, args: tuple[ast.Expr, ...], batch: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        rows = _batch_rows(batch)
        bound: dict[str, np.ndarray] = {}
        for position, arg in enumerate(args):
            if isinstance(arg, ast.ColumnRef):
                name = arg.name
            else:
                name = f"arg{position}"
            if name in bound:
                name = f"arg{position}"
            value = np.asarray(expressions.evaluate(arg, batch))
            bound[name] = _broadcast_rows(value, rows)
        return bound

    def _shuffle_by_key(self, plan, batches, arg_batches, node_count):
        """PARTITION BY: route each key's rows to one owning instance."""
        total_instances = node_count
        buckets: list[list[dict[str, np.ndarray]]] = [[] for _ in range(total_instances)]
        for node, (batch, args) in enumerate(zip(batches, arg_batches)):
            rows = _batch_rows(batch)
            keys = _broadcast_rows(
                np.asarray(expressions.evaluate(plan.udtf.partition.expr, batch)), rows
            )
            destination = (hash64(keys) % np.uint64(total_instances)).astype(np.int64)
            for instance in range(total_instances):
                mask = destination == instance
                if not mask.any():
                    continue
                chunk = {name: arr[mask] for name, arr in args.items()}
                if instance != node:
                    moved = sum(arr.nbytes if hasattr(arr, "nbytes") else 0
                                for arr in chunk.values())
                    self.cluster.telemetry.add("shuffle_bytes", moved)
                buckets[instance].append(chunk)
        assignments = []
        for instance, chunks in enumerate(buckets):
            if not chunks:
                continue
            merged = {
                name: np.concatenate([c[name] for c in chunks])
                for name in chunks[0]
            }
            assignments.append((instance % node_count, merged))
        return assignments


# -- aggregation state --------------------------------------------------------


class _AggState:
    """Mergeable partial state for one aggregate call."""

    def __init__(self, call: ast.AggregateCall) -> None:
        self.call = call
        self.count = 0
        self.total = 0.0
        self.minimum: Any = None
        self.maximum: Any = None
        self.distinct: set | None = set() if call.distinct else None

    def update(self, values: np.ndarray | None, row_count: int) -> None:
        name = self.call.name
        if name == "COUNT" and self.call.arg is None:
            self.count += row_count
            return
        if values is None:
            raise SqlAnalysisError(f"{name} requires an argument")
        values = np.atleast_1d(values)
        if self.distinct is not None:
            self.distinct.update(values.tolist())
            return
        self.count += len(values)
        if name in ("SUM", "AVG"):
            if len(values):
                self.total += float(np.sum(values.astype(np.float64)))
        elif name == "MIN":
            if len(values):
                candidate = values.min()
                self.minimum = candidate if self.minimum is None else min(self.minimum, candidate)
        elif name == "MAX":
            if len(values):
                candidate = values.max()
                self.maximum = candidate if self.maximum is None else max(self.maximum, candidate)
        elif name != "COUNT":
            raise SqlAnalysisError(f"unknown aggregate {name}")

    def merge(self, other: "_AggState") -> None:
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = other.minimum if self.minimum is None else min(
                self.minimum, other.minimum)
        if other.maximum is not None:
            self.maximum = other.maximum if self.maximum is None else max(
                self.maximum, other.maximum)
        if self.distinct is not None and other.distinct is not None:
            self.distinct |= other.distinct

    def finalize(self) -> Any:
        name = self.call.name
        if self.distinct is not None:
            if name == "COUNT":
                return len(self.distinct)
            if name == "SUM":
                return float(sum(self.distinct)) if self.distinct else None
            if name == "AVG":
                return float(sum(self.distinct)) / len(self.distinct) if self.distinct else None
            raise SqlAnalysisError(f"DISTINCT not supported for {name}")
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total if self.count else None
        if name == "AVG":
            return self.total / self.count if self.count else None
        if name == "MIN":
            return self.minimum
        if name == "MAX":
            return self.maximum
        raise SqlAnalysisError(f"unknown aggregate {name}")


# -- small helpers ------------------------------------------------------------


def _split_args(args: dict[str, np.ndarray], instances: int
                ) -> list[dict[str, np.ndarray]]:
    """Split bound argument arrays into contiguous per-instance chunks."""
    rows = _batch_rows(args)
    instances = max(1, min(instances, rows)) if rows else 1
    boundaries = np.linspace(0, rows, instances + 1).astype(int)
    chunks = []
    for i in range(instances):
        start, stop = int(boundaries[i]), int(boundaries[i + 1])
        chunks.append({name: arr[start:stop] for name, arr in args.items()})
    return chunks


def _distinct_indices(columns: list[np.ndarray]) -> np.ndarray:
    """Indices of the first occurrence of each distinct row (stable)."""
    if not columns:
        return np.arange(0)
    rows = len(columns[0])
    seen: dict[tuple, None] = {}
    keep: list[int] = []
    for i in range(rows):
        key = tuple(
            arr[i].item() if isinstance(arr[i], np.generic) else arr[i]
            for arr in columns
        )
        if key not in seen:
            seen[key] = None
            keep.append(i)
    return np.asarray(keep, dtype=np.int64)


def _has_aggregates(stmt: ast.Select) -> bool:
    sources = [item.expr for item in stmt.items]
    if stmt.having is not None:
        sources.append(stmt.having)
    return any(
        isinstance(node, ast.AggregateCall)
        for expr in sources for node in expr.walk()
    )


def _batch_rows(batch: Mapping[str, np.ndarray]) -> int:
    for arr in batch.values():
        return len(np.atleast_1d(arr))
    return 0


def _broadcast_rows(value: np.ndarray, rows: int) -> np.ndarray:
    value = np.atleast_1d(value)
    if len(value) == rows:
        return value
    if len(value) == 1:
        return np.broadcast_to(value, (rows,)).copy()
    raise ExecutionError(f"cannot broadcast length {len(value)} to {rows} rows")


def _sort_index(keys: list[np.ndarray], ascending: list[bool]) -> np.ndarray:
    """Stable multi-key sort honoring per-key direction."""
    if not keys:
        return np.arange(0)
    index = np.arange(len(keys[0]))
    # Apply keys from least to most significant for a stable composite sort.
    for key, asc in reversed(list(zip(keys, ascending))):
        current = key[index]
        if asc:
            order = np.argsort(current, kind="stable")
        else:
            # Stable descending: naively reversing an ascending argsort
            # would also reverse ties, so sort the reversed array and map
            # the positions back.
            reverse_order = np.argsort(current[::-1], kind="stable")
            order = (len(current) - 1 - reverse_order)[::-1]
        index = index[order]
    return index


def _factorize(key_arrays: list[np.ndarray]) -> tuple[list[tuple], np.ndarray]:
    """Group rows by composite key; returns (unique keys, inverse indices)."""
    codes = []
    uniques = []
    for arr in key_arrays:
        unique_vals, inverse = np.unique(np.asarray(arr), return_inverse=True)
        codes.append(inverse.astype(np.int64))
        uniques.append(unique_vals)
    combined = codes[0].copy()
    for code, unique_vals in zip(codes[1:], uniques[1:]):
        combined = combined * len(unique_vals) + code
    unique_combined, inverse = np.unique(combined, return_inverse=True)
    keys: list[tuple] = []
    for combo in unique_combined:
        parts = []
        remaining = int(combo)
        for unique_vals in reversed(uniques[1:]):
            remaining, digit = divmod(remaining, len(unique_vals))
            parts.append(unique_vals[digit])
        parts.append(uniques[0][remaining])
        keys.append(tuple(_to_python(v) for v in reversed(parts)))
    return keys, inverse


def _to_python(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


def _sort_key_tuple(key: tuple) -> tuple:
    """Sort group keys robustly across mixed types."""
    return tuple(
        (0, v) if isinstance(v, (int, float)) and not isinstance(v, bool)
        else (1, str(v))
        for v in key
    )


def _group_alias(index: int) -> str:
    return f"__group_{index}"


def _agg_alias(index: int) -> str:
    return f"__agg_{index}"


def _rewrite(expr: ast.Expr, plan: AggregatePlan) -> ast.Expr:
    """Replace aggregate calls / group expressions with their result aliases."""
    for j, agg in enumerate(plan.aggregates):
        if expr == agg:
            return ast.ColumnRef(_agg_alias(j))
    for i, group_expr in enumerate(plan.group_by):
        if expr == group_expr:
            return ast.ColumnRef(_group_alias(i))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _rewrite(expr.left, plan), _rewrite(expr.right, plan))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, plan))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name, tuple(_rewrite(a, plan) for a in expr.args))
    if isinstance(expr, ast.ColumnRef):
        raise SqlAnalysisError(
            f"column {expr.name!r} must appear in GROUP BY or inside an aggregate"
        )
    return expr
