"""Vectorized, node-parallel query execution.

Executes the three plan shapes from :mod:`repro.vertica.planner`:

* **Scan** — each node filters and projects its segment on a thread pool;
  the initiator concatenates, orders, and limits.
* **Aggregate** — classic two-phase MPP aggregation: nodes compute partial
  states per group, the initiator merges and evaluates the final
  expressions (AVG becomes sum/count, etc.).
* **UDTF** — the fan-out engine behind ``ExportToDistributedR`` and the
  prediction functions: ``PARTITION NODES`` runs one instance per node on
  its local segment, ``PARTITION BEST`` splits each node's local data into
  planner-chosen chunks, and ``PARTITION BY`` hash-shuffles rows so equal
  keys land in one instance (charging cross-node traffic to telemetry).
"""

from __future__ import annotations

import dataclasses
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

from repro.errors import ExecutionError, SqlAnalysisError
from repro.obs.trace import Span
from repro.vertica import expressions
from repro.vertica.models import R_MODELS_TABLE_NAME
from repro.vertica.pipeline import (
    BatchQueue,
    PipelineCancelled,
    batch_nbytes,
)
from repro.vertica.planner import (
    AggregatePlan,
    ScanPlan,
    UdtfPlan,
    instance_boundaries,
    plan_select,
)
from repro.vertica.segmentation import hash64
from repro.vertica.sql import ast
from repro.vertica.sql.analyzer import ClusterProvider, ResolvedQuery, check
from repro.vertica.txn.mutations import execute_delete, execute_update
from repro.vertica.udtf import UdtfContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster
    from repro.vertica.txn.epochs import Snapshot

__all__ = ["ResultSet", "QueryExecutor"]


class ResultSet:
    """Columnar query result with row-oriented accessors."""

    def __init__(self, column_names: list[str], columns: dict[str, np.ndarray]) -> None:
        self.column_names = list(column_names)
        self._columns = {
            name: np.atleast_1d(np.asarray(columns[name])) for name in column_names
        }
        lengths = {len(arr) for arr in self._columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged result columns: {lengths}")
        self._length = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutionError(
                f"result has no column {name!r}; columns: {self.column_names}"
            ) from None

    def as_arrays(self) -> dict[str, np.ndarray]:
        return dict(self._columns)

    def rows(self) -> list[tuple]:
        """Materialize as a list of row tuples (column order preserved).

        Each column converts in one ``tolist()`` pass (numpy scalars become
        Python scalars wholesale) instead of a per-element Python loop, so
        materializing large results doesn't dominate benchmark harness time.
        """
        if not self.column_names:
            return []
        lists = [self._columns[name].tolist() for name in self.column_names]
        return list(zip(*lists))

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if self._length != 1 or len(self.column_names) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {self._length}x{len(self.column_names)}"
            )
        return self._columns[self.column_names[0]][0]


class QueryExecutor:
    """Executes parsed statements against a cluster."""

    def __init__(self, cluster: "VerticaCluster") -> None:
        self.cluster = cluster

    # -- statement dispatch ---------------------------------------------------

    def execute(self, stmt: ast.Statement, user: str = "dbadmin",
                resolved: ResolvedQuery | None = None) -> ResultSet:
        """Dispatch one parsed statement.

        ``resolved`` lets a prepared-statement cache (the serving layer's
        plan cache) supply a prior semantic analysis of the *same* statement
        text and skip the re-analysis; plain callers leave it ``None``.
        """
        if resolved is None:
            resolved = self._analyze(stmt)
        if isinstance(stmt, ast.Select):
            return self._execute_select(stmt, user, resolved)
        if isinstance(stmt, ast.CreateTable):
            return self._execute_create(stmt, resolved)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.Delete):
            deleted = execute_delete(self.cluster, stmt)
            return ResultSet(["count"],
                             {"count": np.asarray([deleted], dtype=np.int64)})
        if isinstance(stmt, ast.Update):
            updated = execute_update(self.cluster, stmt)
            return ResultSet(["count"],
                             {"count": np.asarray([updated], dtype=np.int64)})
        if isinstance(stmt, ast.DropTable):
            self.cluster.catalog.drop_table(stmt.name, if_exists=stmt.if_exists)
            return ResultSet(["status"], {"status": np.asarray(["DROP TABLE"], dtype=object)})
        if isinstance(stmt, ast.RefreshModel):
            from repro.deploy.refresh import refresh_model

            result = refresh_model(self.cluster, stmt.name, user=user)
            status = f"REFRESH MODEL ({result.strategy})"
            return ResultSet(["status"], {"status": np.asarray([status], dtype=object)})
        if isinstance(stmt, ast.CreateSample):
            from repro.aqp import build_sample

            record = build_sample(
                self.cluster, stmt.name, stmt.table, stmt.rate,
                strata_column=stmt.strata_column, seed=stmt.seed, user=user)
            status = f"CREATE SAMPLE ({record.sample_rows} rows)"
            return ResultSet(["status"], {"status": np.asarray([status], dtype=object)})
        if isinstance(stmt, ast.DropSample):
            from repro.aqp import drop_sample

            if not (stmt.if_exists and not self.cluster.aqp.exists(stmt.name)):
                drop_sample(self.cluster, stmt.name, user=user)
            return ResultSet(["status"], {"status": np.asarray(["DROP SAMPLE"], dtype=object)})
        if isinstance(stmt, ast.ShowSamples):
            return self._execute_show_samples()
        if isinstance(stmt, ast.Explain):
            return self._execute_explain(stmt.query)
        if isinstance(stmt, ast.Profile):
            return self._execute_profile(stmt.query, user, resolved)
        raise ExecutionError(f"unsupported statement type {type(stmt).__name__}")

    def analyze(self, stmt: ast.Statement) -> ResolvedQuery:
        """Public semantic-analysis entry point (prepared statements)."""
        return self._analyze(stmt)

    def _analyze(self, stmt: ast.Statement) -> ResolvedQuery:
        """Static semantic analysis: reject malformed statements before any
        snapshot resolves or scan starts (raises a typed ``SemanticError``
        carrying ``SAxxx`` diagnostics with source offsets)."""
        query = stmt.query if isinstance(stmt, (ast.Explain, ast.Profile)) else stmt
        if isinstance(query, ast.Select) and query.udtf is not None \
                and not self.cluster.catalog.has_udtf(query.udtf.name):
            # Built-in transfer/prediction functions install on first use,
            # so the analyzer binds against the same registry the UDTF
            # executor would see.
            self.cluster.install_standard_functions()
        return check(stmt, ClusterProvider(self.cluster))

    def _execute_profile(self, stmt: ast.Select, user: str,
                         resolved: ResolvedQuery | None = None) -> ResultSet:
        """Execute the query, return its operator span tree instead of rows.

        Vertica's PROFILE analogue: per-operator wall time, rows, bytes,
        and any peak-inflight watermarks, rendered as one indented text row
        per span.  The ``rows``/``bytes`` columns are subtree totals, so
        the root row reconciles with the ``rows_scanned``/``bytes_scanned``
        counter deltas for the same query.
        """
        with self.cluster.tracer.span("query") as span:
            result = self._execute_select(stmt, user, resolved)
            span.set(result_rows=len(result))
        return _render_profile(span)

    def _execute_explain(self, stmt: ast.Select) -> ResultSet:
        """Describe the physical plan as one text row per plan step."""
        stmt = self._resolve_aliases(stmt)
        lines: list[str] = []

        def scan_line(table_name: str) -> str:
            if table_name.lower() == "r_models":
                return "SCAN catalog table R_Models"
            table = self.cluster.catalog.get_table(table_name)
            counts = table.segment_row_counts()
            return (f"SCAN {table.name} [{table.row_count} rows, "
                    f"{table.node_count} segments {counts}, "
                    f"{table.segmentation.describe()}]")

        if stmt.join is not None:
            left_alias = stmt.table_alias or stmt.table
            right_alias = stmt.join.alias or stmt.join.table
            lines.append(scan_line(stmt.table) + f" AS {left_alias}")
            lines.append(scan_line(stmt.join.table) + f" AS {right_alias}")
            lines.append(
                f"HASH {stmt.join.kind.upper()} JOIN ON {stmt.join.condition}"
            )
        elif stmt.table is not None:
            lines.append(scan_line(stmt.table))
        if stmt.where is not None:
            lines.append(f"FILTER {stmt.where}")
        if stmt.udtf is not None:
            fanout = {
                ast.PartitionKind.BEST: "planner-chosen instances per node",
                ast.PartitionKind.NODES: "one instance per node",
                ast.PartitionKind.BY_COLUMN: "hash-partitioned by key",
            }[stmt.udtf.partition.kind]
            lines.append(f"UDTF {stmt.udtf.name} [{fanout}]")
        elif stmt.group_by or _has_aggregates(stmt):
            keys = ", ".join(map(str, stmt.group_by)) or "<global>"
            lines.append(f"AGGREGATE partial per node, merge on initiator "
                         f"[group by {keys}]")
        if not stmt.udtf:
            projections = ("*" if stmt.select_star
                           else ", ".join(i.output_name for i in stmt.items))
            lines.append(f"PROJECT {projections}")
        if stmt.order_by:
            keys = ", ".join(
                f"{o.expr} {'ASC' if o.ascending else 'DESC'}"
                for o in stmt.order_by)
            lines.append(f"SORT {keys}")
        if stmt.limit is not None:
            lines.append(f"LIMIT {stmt.limit}")
        return ResultSet(["plan"], {"plan": np.asarray(lines, dtype=object)})

    def _execute_create(self, stmt: ast.CreateTable,
                        resolved: ResolvedQuery | None = None) -> ResultSet:
        from repro.storage.encoding import ColumnSchema, SqlType
        from repro.vertica.segmentation import HashSegmentation, RoundRobinSegmentation, Unsegmented

        # The analyzer already resolved the column types (SA210 rejected
        # unknown names); reuse them instead of re-parsing the type strings.
        if resolved is not None and resolved.create_types is not None:
            types = resolved.create_types
        else:
            types = [SqlType.from_sql_name(col.type_name) for col in stmt.columns]
        schema = [
            ColumnSchema(col.name, sql_type)
            for col, sql_type in zip(stmt.columns, types)
        ]
        if stmt.segmentation is None:
            segmentation = RoundRobinSegmentation()
        elif stmt.segmentation.kind == "hash":
            segmentation = HashSegmentation(stmt.segmentation.column)
        else:
            segmentation = Unsegmented()
        self.cluster.create_table(stmt.name, schema, segmentation=segmentation)
        return ResultSet(["status"], {"status": np.asarray(["CREATE TABLE"], dtype=object)})

    def _execute_insert(self, stmt: ast.Insert) -> ResultSet:
        table = self.cluster.catalog.get_table(stmt.table)
        inserted = table.insert_rows(stmt.rows)
        # Trickle inserts land in the WOS; hint the Tuple Mover so moveout
        # flushes them once the size/age thresholds trip.
        self.cluster.tuple_mover.notify()
        return ResultSet(["count"], {"count": np.asarray([inserted], dtype=np.int64)})

    def _execute_show_samples(self) -> ResultSet:
        """``SHOW SAMPLES``: one provenance row per registered sample."""
        records = self.cluster.aqp.records()
        columns = {
            "sample": np.asarray([r.name for r in records], dtype=object),
            "base_table": np.asarray(
                [r.base_table for r in records], dtype=object),
            "kind": np.asarray([r.kind for r in records], dtype=object),
            "rate": np.asarray([r.rate for r in records], dtype=np.float64),
            "strata_column": np.asarray(
                [r.strata_column or "" for r in records], dtype=object),
            "commit_epoch": np.asarray(
                [r.commit_epoch for r in records], dtype=np.int64),
            "base_rows": np.asarray(
                [r.base_rows for r in records], dtype=np.int64),
            "sample_rows": np.asarray(
                [r.sample_rows for r in records], dtype=np.int64),
            "owner": np.asarray([r.owner for r in records], dtype=object),
        }
        return ResultSet(list(columns), columns)

    # -- SELECT ---------------------------------------------------------------

    def _execute_select(self, stmt: ast.Select, user: str,
                        resolved: ResolvedQuery | None = None) -> ResultSet:
        stmt = self._resolve_aliases(stmt)
        # One snapshot per statement, resolved before any scan starts:
        # every node scan (eager or streaming) reads the same epoch.
        snapshot = self._statement_snapshot(stmt)
        if stmt.within_error is not None:
            return self._execute_within(stmt, user, snapshot, resolved)
        tracer = self.cluster.tracer
        if stmt.join is not None:
            with tracer.span("join", table=stmt.table or ""):
                return self._execute_join_select(stmt, snapshot)
        plan = plan_select(stmt, resolved=resolved)
        if isinstance(plan, UdtfPlan):
            with tracer.span("udtf", function=plan.udtf.name,
                             table=plan.table or "") as span:
                result = self._execute_udtf(plan, user, snapshot)
                span.set(result_rows=len(result))
                return result
        if isinstance(plan, AggregatePlan):
            with tracer.span("aggregate", table=plan.table or ""):
                return self._execute_aggregate(plan, snapshot=snapshot)
        with tracer.span("scan", table=plan.table or ""):
            return self._execute_scan(plan, snapshot=snapshot)

    def _execute_within(self, stmt: ast.Select, user: str,
                        snapshot: "Snapshot | None",
                        resolved: ResolvedQuery | None = None) -> ResultSet:
        """``WITHIN n% ERROR``: answer from a sample or fall back to exact.

        Both paths return the same four-column shape so callers (and the
        serving result cache) see one stable schema; the exact fallback is
        a degenerate CI of zero width with ``sample_fraction`` 1.0.
        """
        from repro.aqp import answer_within
        from repro.aqp.rewrite import RESULT_COLUMNS

        answer = answer_within(self.cluster, stmt, user, snapshot=snapshot)
        if answer is not None:
            return ResultSet(list(RESULT_COLUMNS), {
                "estimate": np.asarray([answer.estimate], dtype=np.float64),
                "ci_low": np.asarray([answer.ci_low], dtype=np.float64),
                "ci_high": np.asarray([answer.ci_high], dtype=np.float64),
                "sample_fraction": np.asarray(
                    [answer.sample_fraction], dtype=np.float64),
            })
        exact = dataclasses.replace(stmt, within_error=None, confidence=None)
        value = self._execute_select(exact, user, resolved).scalar()
        point = float(value) if value is not None else float("nan")
        arr = np.asarray([point], dtype=np.float64)
        return ResultSet(list(RESULT_COLUMNS), {
            "estimate": arr,
            "ci_low": arr.copy(),
            "ci_high": arr.copy(),
            "sample_fraction": np.asarray([1.0], dtype=np.float64),
        })

    def _statement_snapshot(self, stmt: ast.Select) -> "Snapshot | None":
        """Resolve the statement's read snapshot (``AT EPOCH`` or latest)."""
        if stmt.table is None or stmt.table.lower() == R_MODELS_TABLE_NAME:
            if stmt.at_epoch is not None:
                raise SqlAnalysisError(
                    "AT EPOCH requires a FROM over a regular table")
            return None
        table = self.cluster.catalog.get_table(stmt.table)
        return table.resolve_snapshot(stmt.at_epoch)

    def _execute_join_select(self, stmt: ast.Select,
                             snapshot: "Snapshot | None" = None) -> ResultSet:
        """Joined SELECT: materialize the hash join, then run the normal
        scan/aggregate pipeline over the single joined batch."""
        from repro.vertica.joins import materialize_join

        if stmt.udtf is not None:
            raise SqlAnalysisError("UDTF calls over joins are not supported")
        batch, star_columns = materialize_join(self.cluster, stmt,
                                               snapshot=snapshot)
        if stmt.where is not None:
            mask = np.atleast_1d(
                np.asarray(expressions.evaluate(stmt.where, batch), dtype=bool))
            batch = {key: arr[mask] for key, arr in batch.items()}
            stmt.where = None
        plan = plan_select(stmt)
        if isinstance(plan, AggregatePlan):
            return self._execute_aggregate(plan, batches=[batch])
        return self._execute_scan(plan, batches=[batch], star_columns=star_columns)

    def _resolve_aliases(self, stmt: ast.Select) -> ast.Select:
        """Let GROUP BY / HAVING / ORDER BY reference select-list aliases.

        A real table column of the same name wins over an alias, matching
        standard SQL resolution.
        """
        alias_map = {
            item.alias: item.expr for item in stmt.items if item.alias is not None
        }
        if not alias_map or stmt.table is None:
            return stmt
        table_columns = set(self.cluster.table_columns(stmt.table))
        if stmt.join is not None:
            table_columns |= set(self.cluster.table_columns(stmt.join.table))

        def substitute(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ColumnRef):
                if (expr.qualifier is None and expr.name in alias_map
                        and expr.name not in table_columns):
                    return alias_map[expr.name]
                return expr
            if isinstance(expr, ast.BinaryOp):
                return ast.BinaryOp(expr.op, substitute(expr.left), substitute(expr.right))
            if isinstance(expr, ast.UnaryOp):
                return ast.UnaryOp(expr.op, substitute(expr.operand))
            if isinstance(expr, ast.FunctionCall):
                return ast.FunctionCall(expr.name, tuple(substitute(a) for a in expr.args))
            if isinstance(expr, ast.AggregateCall):
                arg = None if expr.arg is None else substitute(expr.arg)
                return ast.AggregateCall(expr.name, arg, expr.distinct)
            return expr

        stmt.group_by = [substitute(e) for e in stmt.group_by]
        if stmt.having is not None:
            stmt.having = substitute(stmt.having)
        stmt.order_by = [
            ast.OrderItem(substitute(o.expr), o.ascending) for o in stmt.order_by
        ]
        return stmt

    def _streaming(self, table_name: str | None) -> bool:
        """Whether the streaming pipeline handles this table's scan."""
        return (self.cluster.pipeline.streaming and table_name is not None)

    def _scan_ranges(self, where: ast.Expr | None):
        from repro.vertica.pruning import extract_column_ranges

        return extract_column_ranges(where) or None

    def _table_batches(
        self, table_name: str, columns_needed: set[str], where: ast.Expr | None,
        snapshot: "Snapshot | None" = None,
    ) -> list[dict[str, np.ndarray]]:
        """Scan per-node batches in parallel, applying the WHERE filter.

        Range constraints extracted from the WHERE clause push down to the
        scan as zone-map envelopes, so row groups the predicate excludes are
        never decompressed; the exact filter still runs afterwards.  This is
        the eager (materialize-per-node) source; the streaming pipeline
        pulls from :meth:`VerticaCluster.stream_table_per_node` instead.
        """
        batches = self.cluster.scan_table_per_node(
            table_name, columns_needed, ranges=self._scan_ranges(where),
            snapshot=snapshot)
        if where is None:
            return batches
        return [_apply_where(where, batch) for batch in batches]

    def _node_sources(self, plan, columns_needed: set[str],
                      snapshot: "Snapshot | None" = None) -> list:
        """Per-node streaming batch sources honoring zone-map pushdown."""
        return self.cluster.stream_table_per_node(
            plan.table, columns_needed, ranges=self._scan_ranges(plan.where),
            snapshot=snapshot)

    def _execute_scan(self, plan: ScanPlan,
                      batches: list[dict[str, np.ndarray]] | None = None,
                      star_columns: list[str] | None = None,
                      snapshot: "Snapshot | None" = None) -> ResultSet:
        if plan.select_star:
            table_columns = star_columns or self.cluster.table_columns(plan.table)
            items = [ast.SelectItem(ast.ColumnRef(name)) for name in table_columns]
            needed = set(table_columns) | plan.columns_needed
        else:
            items = plan.items
            needed = set(plan.columns_needed)
        names = [item.output_name for item in items]
        if batches is None and self._streaming(plan.table):
            return self._execute_scan_streaming(plan, items, names, needed,
                                                snapshot)
        if batches is None:
            batches = self._table_batches(plan.table, needed, plan.where,
                                          snapshot)
        outputs: dict[str, list[np.ndarray]] = {name: [] for name in names}
        order_values: list[list[np.ndarray]] = [[] for _ in plan.order_by]
        for batch in batches:
            projected, order_vals = _project_batch(items, names, plan.order_by, batch)
            for name in names:
                outputs[name].append(projected[name])
            for i, value in enumerate(order_vals):
                order_values[i].append(value)
        return self._finish_scan(plan, items, names, needed, outputs, order_values)

    def _execute_scan_streaming(self, plan: ScanPlan, items, names: list[str],
                                needed: set[str],
                                snapshot: "Snapshot | None" = None) -> ResultSet:
        """Pull rowgroup-granular batches per node, filter and project each
        batch as it streams past, and keep only the projection (plus a
        bounded top-k window under ``ORDER BY ... LIMIT``) in memory."""
        sources = self._node_sources(plan, needed, snapshot)
        ascending = [o.ascending for o in plan.order_by]
        use_topk = bool(plan.order_by) and plan.limit is not None \
            and not plan.distinct
        early_limit = (plan.limit if plan.limit is not None
                       and not plan.order_by and not plan.distinct else None)
        tracer = self.cluster.tracer
        # Pool threads don't inherit the ambient span; capture it here and
        # attach each node's span explicitly.
        parent = tracer.current()

        def scan_node(node: int) -> tuple[dict[str, list], list[list]]:
            out_chunks: dict[str, list[np.ndarray]] = {name: [] for name in names}
            order_chunks: list[list[np.ndarray]] = [[] for _ in plan.order_by]
            topk = _TopK(names, plan.limit, ascending) if use_topk else None
            produced = 0
            with tracer.span("scan.node", parent=parent, node=node):
                stream = sources[node]()
                try:
                    for batch in stream:
                        batch = _apply_where(plan.where, batch)
                        projected, order_vals = _project_batch(
                            items, names, plan.order_by, batch)
                        if topk is not None:
                            topk.add(projected, order_vals)
                            continue
                        for name in names:
                            out_chunks[name].append(projected[name])
                        for i, value in enumerate(order_vals):
                            order_chunks[i].append(value)
                        produced += _batch_rows(projected)
                        if early_limit is not None and produced >= early_limit:
                            break  # LIMIT without ORDER BY: stop pulling early
                finally:
                    close = getattr(stream, "close", None)
                    if close is not None:
                        close()
            if topk is not None:
                return topk.finish()
            return out_chunks, order_chunks

        max_workers = max(1, min(len(sources), self.cluster.executor_threads))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            per_node = list(pool.map(scan_node, range(len(sources))))

        outputs: dict[str, list[np.ndarray]] = {name: [] for name in names}
        order_values: list[list[np.ndarray]] = [[] for _ in plan.order_by]
        for out_chunks, order_chunks in per_node:  # merge in node order
            for name in names:
                outputs[name].extend(out_chunks[name])
            for i, chunks in enumerate(order_chunks):
                order_values[i].extend(chunks)
        return self._finish_scan(plan, items, names, needed, outputs, order_values)

    def _finish_scan(self, plan: ScanPlan, items, names: list[str],
                     needed: set[str],
                     outputs: dict[str, list[np.ndarray]],
                     order_values: list[list[np.ndarray]]) -> ResultSet:
        """Initiator tail shared by both modes: distinct, sort, limit."""
        if not any(outputs.values()):
            # No batches survived pruning/filtering: derive empty columns
            # from the table schema / expression types instead of collapsing
            # every output to float64.
            return ResultSet(names, self._typed_empty_outputs(plan, items, needed))
        columns = {name: np.concatenate(chunks) for name, chunks in outputs.items()}
        if plan.distinct:
            keep = _distinct_indices([columns[name] for name in names])
            columns = {name: arr[keep] for name, arr in columns.items()}
            for i in range(len(order_values)):
                order_values[i] = [np.concatenate(order_values[i])[keep]] \
                    if order_values[i] else order_values[i]
        if plan.order_by:
            keys = [np.concatenate(vals) for vals in order_values]
            index = _sort_index(keys, [o.ascending for o in plan.order_by])
            columns = {name: arr[index] for name, arr in columns.items()}
        if plan.limit is not None:
            columns = {name: arr[: plan.limit] for name, arr in columns.items()}
        return ResultSet(names, columns)

    def _typed_empty_outputs(self, plan: ScanPlan, items,
                             needed: set[str]) -> dict[str, np.ndarray]:
        """Zero-row projections with dtypes inferred from the table schema
        by evaluating each select expression over a schema-typed empty
        batch (mirroring what :meth:`_execute_udtf` does via the declared
        UDTF output schema)."""
        base = self.cluster.typed_empty_batch(plan.table, needed)
        out: dict[str, np.ndarray] = {}
        for item in items:
            value = np.atleast_1d(
                np.asarray(expressions.evaluate(item.expr, base)))
            out[item.output_name] = value[:0]
        return out

    # -- aggregation ------------------------------------------------------------

    def _execute_aggregate(self, plan: AggregatePlan,
                           batches: list[dict[str, np.ndarray]] | None = None,
                           snapshot: "Snapshot | None" = None,
                           ) -> ResultSet:
        if batches is None and self._streaming(plan.table):
            merged = self._aggregate_streaming(plan, snapshot)
        else:
            if batches is None:
                batches = self._table_batches(plan.table, plan.columns_needed,
                                              plan.where, snapshot)
            merged = {}
            for batch in batches:
                _merge_partials(merged, self._partial_aggregate(plan, batch))
        return self._finalize_aggregate(plan, merged)

    def _aggregate_streaming(self, plan: AggregatePlan,
                             snapshot: "Snapshot | None" = None
                             ) -> dict[tuple, list["_AggState"]]:
        """Fold each node's batches into partial states as they stream past;
        only O(groups) state is held per node, never the node's segment."""
        sources = self._node_sources(plan, plan.columns_needed, snapshot)
        tracer = self.cluster.tracer
        parent = tracer.current()

        def fold_node(node: int) -> dict[tuple, list[_AggState]]:
            local: dict[tuple, list[_AggState]] = {}
            with tracer.span("aggregate.node", parent=parent, node=node):
                stream = sources[node]()
                try:
                    for batch in stream:
                        batch = _apply_where(plan.where, batch)
                        if not _batch_rows(batch):
                            continue
                        _merge_partials(local,
                                        self._partial_aggregate(plan, batch))
                finally:
                    close = getattr(stream, "close", None)
                    if close is not None:
                        close()
            return local

        max_workers = max(1, min(len(sources), self.cluster.executor_threads))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            per_node = list(pool.map(fold_node, range(len(sources))))
        merged: dict[tuple, list[_AggState]] = {}
        for local in per_node:  # merge in node index order
            _merge_partials(merged, local)
        return merged

    def _finalize_aggregate(self, plan: AggregatePlan,
                            merged: dict[tuple, list["_AggState"]]) -> ResultSet:
        """Initiator tail shared by both modes: finalize states, project,
        HAVING, order, limit."""
        if not plan.group_by and not merged:
            # Global aggregate over zero rows still yields one row.
            merged[()] = [_AggState(agg) for agg in plan.aggregates]

        group_keys = sorted(merged.keys(), key=_sort_key_tuple)
        env: dict[str, np.ndarray] = {}
        for i, expr in enumerate(plan.group_by):
            env[_group_alias(i)] = np.asarray(
                [key[i] for key in group_keys],
                dtype=object if any(isinstance(k[i], str) for k in group_keys) else None,
            )
        for j, agg in enumerate(plan.aggregates):
            env[_agg_alias(j)] = np.asarray(
                [merged[key][j].finalize() for key in group_keys]
            )

        rewritten_items = [
            ast.SelectItem(_rewrite(item.expr, plan), item.output_name)
            for item in plan.items
        ]
        names = [item.output_name for item in plan.items]
        columns = {}
        rows = len(group_keys)
        for item, name in zip(rewritten_items, names):
            value = np.asarray(expressions.evaluate(item.expr, env))
            columns[name] = _broadcast_rows(value, rows)

        if plan.having is not None:
            mask = np.atleast_1d(np.asarray(
                expressions.evaluate(_rewrite(plan.having, plan), env), dtype=bool
            ))
            mask = _broadcast_rows(mask, rows).astype(bool)
            columns = {name: arr[mask] for name, arr in columns.items()}
            env = {name: arr[mask] for name, arr in env.items()}
            rows = int(mask.sum())

        if plan.order_by:
            keys = []
            for order in plan.order_by:
                value = np.asarray(
                    expressions.evaluate(_rewrite(order.expr, plan), env)
                )
                keys.append(_broadcast_rows(value, rows))
            index = _sort_index(keys, [o.ascending for o in plan.order_by])
            columns = {name: arr[index] for name, arr in columns.items()}
        if plan.limit is not None:
            columns = {name: arr[: plan.limit] for name, arr in columns.items()}
        return ResultSet(names, columns)

    def _partial_aggregate(
        self, plan: AggregatePlan, batch: dict[str, np.ndarray]
    ) -> dict[tuple, list["_AggState"]]:
        rows = _batch_rows(batch)
        if plan.group_by:
            key_arrays = [
                _broadcast_rows(np.asarray(expressions.evaluate(e, batch)), rows)
                for e in plan.group_by
            ]
            group_keys, inverse = _factorize(key_arrays)
        else:
            group_keys, inverse = [()], np.zeros(rows, dtype=np.int64)

        agg_inputs = []
        for agg in plan.aggregates:
            if agg.arg is None:
                agg_inputs.append(None)
            else:
                value = np.asarray(expressions.evaluate(agg.arg, batch))
                agg_inputs.append(_broadcast_rows(value, rows))

        partials: dict[tuple, list[_AggState]] = {}
        for g, key in enumerate(group_keys):
            mask = inverse == g
            states = []
            for agg, values in zip(plan.aggregates, agg_inputs):
                state = _AggState(agg)
                state.update(None if values is None else values[mask], int(mask.sum()))
                states.append(state)
            partials[key] = states
        return partials

    # -- UDTF fan-out -----------------------------------------------------------

    def _execute_udtf(self, plan: UdtfPlan, user: str,
                      snapshot: "Snapshot | None" = None) -> ResultSet:
        # Built-in transfer/prediction functions install on first use.
        if not self.cluster.catalog.has_udtf(plan.udtf.name):
            self.cluster.install_standard_functions()
        udtf = self.cluster.catalog.get_udtf(plan.udtf.name)
        node_count = self.cluster.node_count
        if (self._streaming(plan.table)
                and plan.table.lower() != R_MODELS_TABLE_NAME):
            # R_Models is a tiny virtual catalog table with no per-node
            # segments to fan out over; it stays on the materialized path.
            return self._execute_udtf_streaming(plan, udtf, user, snapshot)
        batches = self._table_batches(plan.table, plan.columns_needed,
                                      plan.where, snapshot)
        arg_batches = [
            self._bind_args(plan.udtf.args, batch) for batch in batches
        ]

        kind = plan.udtf.partition.kind
        if kind is ast.PartitionKind.NODES:
            assignments = [(node, args) for node, args in enumerate(arg_batches)]
        elif kind is ast.PartitionKind.BEST:
            assignments = []
            for node, args in enumerate(arg_batches):
                rowgroups = self.cluster.node_rowgroup_count(plan.table, node)
                instances = self.cluster.nodes[node].best_udtf_parallelism(rowgroups)
                assignments.extend(
                    (node, chunk) for chunk in _split_args(args, instances)
                )
        else:  # PARTITION BY expr: hash-shuffle keys across the cluster
            assignments = self._shuffle_by_key(plan, batches, arg_batches, node_count)

        self.cluster.telemetry.add("udtf_instances", len(assignments))
        results: list[dict[str, np.ndarray] | None] = [None] * len(assignments)
        tracer = self.cluster.tracer
        parent = tracer.current()

        def run_instance(index: int) -> None:
            node, args = assignments[index]
            ctx = UdtfContext(
                cluster=self.cluster,
                node_index=node,
                instance_index=index,
                instance_count=len(assignments),
                session_user=user,
            )
            with tracer.span("udtf.instance", parent=parent, node=node,
                             instance=index) as span:
                if self.cluster.faults is not None:
                    self.cluster.faults.perturb("udtf.instance", node=node,
                                                instance=index)
                output = udtf.process(ctx, args, dict(plan.udtf.parameters))
                udtf.validate_output(output)
                span.set(rows_in=_batch_rows(args),
                         rows_out=_batch_rows(output))
            results[index] = output

        max_workers = max(1, min(len(assignments), self.cluster.executor_threads))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            list(pool.map(run_instance, range(len(assignments))))

        return self._collect_udtf_outputs(udtf, plan, results)

    def _execute_udtf_streaming(self, plan: UdtfPlan, udtf, user: str,
                                snapshot: "Snapshot | None" = None) -> ResultSet:
        """Backpressured UDTF fan-out for ``PARTITION NODES`` / ``BEST``.

        One producer thread per node streams rowgroup-granular batches into
        bounded per-instance :class:`BatchQueue`\\ s; each instance consumes
        its queue through :meth:`TransformFunction.process_stream`.  The
        queue depth bounds batches in flight, so a slow instance throttles
        the scan instead of the scan buffering the whole segment.

        Deadlock-freedom with fewer pool workers than instances: producers
        write (and close) queues in instance order, and the FIFO pool always
        has the earliest unfinished instance scheduled, so the queue a
        producer blocks on is always being drained.
        """
        kind = plan.udtf.partition.kind
        if kind is ast.PartitionKind.BY_COLUMN:
            return self._udtf_streaming_by_key(plan, udtf, user, snapshot)

        cluster = self.cluster
        config = cluster.pipeline
        sources = self._node_sources(plan, plan.columns_needed, snapshot)
        # Boundary math must count the rows the streams will actually
        # yield, so the counts resolve at the same snapshot as the scan.
        segment_rows = cluster.catalog.get_table(
            plan.table).segment_row_counts(snapshot)
        abort = threading.Event()

        # Node-major instance layout.  Boundaries cut each node's pre-filter
        # row positions (see planner.instance_boundaries): identical to the
        # eager splitter whenever no WHERE clause drops rows upstream.
        node_plans: list[tuple[int, list[int], list[BatchQueue]]] = []
        slots: list[tuple[int, BatchQueue]] = []
        for node in range(len(sources)):
            if kind is ast.PartitionKind.NODES:
                boundaries = [0, segment_rows[node]]
            else:  # PARTITION BEST
                rowgroups = cluster.node_rowgroup_count(plan.table, node)
                nominal = cluster.nodes[node].best_udtf_parallelism(rowgroups)
                boundaries = instance_boundaries(segment_rows[node], nominal)
            queues = [BatchQueue(config.queue_depth, cluster.telemetry, abort,
                                 stall_timeout=config.stall_timeout_seconds)
                      for _ in range(len(boundaries) - 1)]
            node_plans.append((node, boundaries, queues))
            slots.extend((node, queue) for queue in queues)

        cluster.telemetry.add("udtf_instances", len(slots))
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        tracer = cluster.tracer
        parent = tracer.current()

        def record_error(exc: BaseException) -> None:
            with errors_lock:
                errors.append(exc)
            abort.set()

        def produce(node: int, boundaries: list[int],
                    queues: list[BatchQueue]) -> None:
            with tracer.span("udtf.producer", parent=parent, node=node):
                _produce(node, boundaries, queues)

        def _produce(node: int, boundaries: list[int],
                     queues: list[BatchQueue]) -> None:
            cursor = 0    # first queue not yet closed
            position = 0  # row offset within this node's (pruned) stream
            stream = sources[node]()
            try:
                for batch in stream:
                    rows = _batch_rows(batch)
                    start, end = position, position + rows
                    while cursor < len(queues) and boundaries[cursor + 1] <= start:
                        queues[cursor].close()
                        cursor += 1
                    for i in range(cursor, len(queues)):
                        if boundaries[i] >= end:
                            break
                        lo = max(boundaries[i], start)
                        hi = min(boundaries[i + 1], end)
                        if lo >= hi:
                            continue
                        piece = {name: arr[lo - start:hi - start]
                                 for name, arr in batch.items()}
                        piece = _apply_where(plan.where, piece)
                        if _batch_rows(piece):
                            queues[i].put(self._bind_args(plan.udtf.args, piece))
                    position = end
            except PipelineCancelled:
                pass
            except BaseException as exc:  # reprolint: ignore[exception-hygiene] -- recorded, re-raised after teardown
                record_error(exc)
                for queue in queues[cursor:]:
                    queue.fail(exc)
                return
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
            for queue in queues[cursor:]:
                queue.close()

        results: list[dict[str, np.ndarray] | None] = [None] * len(slots)

        def run_instance(index: int) -> None:
            node, queue = slots[index]
            ctx = UdtfContext(
                cluster=cluster,
                node_index=node,
                instance_index=index,
                instance_count=len(slots),
                session_user=user,
            )
            params = dict(plan.udtf.parameters)
            try:
                with tracer.span("udtf.instance", parent=parent, node=node,
                                 instance=index) as span:
                    if cluster.faults is not None:
                        cluster.faults.perturb("udtf.instance", node=node,
                                               instance=index)
                    stream = iter(queue)
                    try:
                        first = next(stream)
                    except StopIteration:
                        # Zero surviving batches: run the instance over typed
                        # empty args, exactly like the eager splitter hands an
                        # empty chunk to process().
                        empty = self._bind_args(
                            plan.udtf.args,
                            cluster.typed_empty_batch(plan.table,
                                                      plan.columns_needed))
                        output = udtf.process(ctx, empty, params)
                    else:
                        output = udtf.process_stream(
                            ctx, _chain_one(first, stream), params)
                        for _ in stream:  # drain anything the UDTF didn't pull
                            pass
                    udtf.validate_output(output)
                    span.set(rows_in=queue.total_rows,
                             bytes_in=queue.total_bytes,
                             rows_out=_batch_rows(output),
                             backpressure_s=queue.blocked_seconds)
                    results[index] = output
            except PipelineCancelled:
                pass
            except BaseException as exc:  # reprolint: ignore[exception-hygiene] -- recorded, re-raised after teardown
                record_error(exc)

        producers = [
            threading.Thread(target=produce, args=entry)
            for entry in node_plans
        ]
        for thread in producers:
            thread.start()
        max_workers = max(1, min(len(slots), cluster.executor_threads))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            list(pool.map(run_instance, range(len(slots))))
        for thread in producers:
            thread.join()
        if errors:
            raise errors[0]
        return self._collect_udtf_outputs(udtf, plan, results)

    def _udtf_streaming_by_key(self, plan: UdtfPlan, udtf, user: str,
                               snapshot: "Snapshot | None" = None) -> ResultSet:
        """``PARTITION BY`` streaming: hash-route rows batch by batch.

        Producers route each filtered batch's rows to per-``(instance,
        node)`` queues; each instance consumes its node queues in node index
        order, reproducing the eager bucket concatenation order.  Every
        consumer must be schedulable at once (producers interleave writes
        across all instances' queues), hence ``max_workers = instances``.
        """
        cluster = self.cluster
        config = cluster.pipeline
        telemetry = cluster.telemetry
        node_count = cluster.node_count
        sources = self._node_sources(plan, plan.columns_needed, snapshot)
        abort = threading.Event()
        queues = {
            (instance, node): BatchQueue(config.queue_depth, telemetry, abort,
                                         stall_timeout=config.stall_timeout_seconds)
            for instance in range(node_count)
            for node in range(len(sources))
        }
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        tracer = cluster.tracer
        parent = tracer.current()

        def record_error(exc: BaseException) -> None:
            with errors_lock:
                errors.append(exc)
            abort.set()

        def produce(node: int) -> None:
            with tracer.span("udtf.producer", parent=parent, node=node):
                _produce(node)

        def _produce(node: int) -> None:
            own = [queues[(instance, node)] for instance in range(node_count)]
            stream = sources[node]()
            try:
                for batch in stream:
                    batch = _apply_where(plan.where, batch)
                    rows = _batch_rows(batch)
                    if not rows:
                        continue
                    args = self._bind_args(plan.udtf.args, batch)
                    keys = _broadcast_rows(
                        np.asarray(expressions.evaluate(
                            plan.udtf.partition.expr, batch)), rows)
                    destination = (hash64(keys)
                                   % np.uint64(node_count)).astype(np.int64)
                    for instance in range(node_count):
                        mask = destination == instance
                        if not mask.any():
                            continue
                        chunk = {name: arr[mask] for name, arr in args.items()}
                        if instance != node:
                            telemetry.add("shuffle_bytes", batch_nbytes(chunk))
                        own[instance].put(chunk)
            except PipelineCancelled:
                pass
            except BaseException as exc:  # reprolint: ignore[exception-hygiene] -- recorded, re-raised after teardown
                record_error(exc)
                for queue in own:
                    queue.fail(exc)
                return
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
            for queue in own:
                queue.close()

        results: list[dict[str, np.ndarray] | None] = [None] * node_count
        live = [False] * node_count

        def run_instance(instance: int) -> None:
            ctx = UdtfContext(
                cluster=cluster,
                node_index=instance % node_count,
                instance_index=instance,
                instance_count=node_count,
                session_user=user,
            )
            params = dict(plan.udtf.parameters)
            node_queues = [queues[(instance, node)]
                           for node in range(len(sources))]

            def batches() -> Iterator[dict[str, np.ndarray]]:
                for queue in node_queues:
                    yield from queue

            try:
                with tracer.span("udtf.instance", parent=parent,
                                 instance=instance) as span:
                    stream = batches()
                    try:
                        first = next(stream)
                    except StopIteration:
                        return  # empty bucket: the eager path skips it too
                    live[instance] = True
                    output = udtf.process_stream(
                        ctx, _chain_one(first, stream), params)
                    for _ in stream:  # drain anything the UDTF didn't pull
                        pass
                    udtf.validate_output(output)
                    span.set(
                        rows_in=sum(q.total_rows for q in node_queues),
                        bytes_in=sum(q.total_bytes for q in node_queues),
                        rows_out=_batch_rows(output))
                    results[instance] = output
            except PipelineCancelled:
                pass
            except BaseException as exc:  # reprolint: ignore[exception-hygiene] -- recorded, re-raised after teardown
                record_error(exc)

        producers = [
            threading.Thread(target=produce, args=(node,))
            for node in range(len(sources))
        ]
        for thread in producers:
            thread.start()
        with ThreadPoolExecutor(max_workers=node_count) as pool:
            list(pool.map(run_instance, range(node_count)))
        for thread in producers:
            thread.join()
        telemetry.add("udtf_instances", sum(live))
        if errors:
            raise errors[0]
        return self._collect_udtf_outputs(udtf, plan, results)

    def _collect_udtf_outputs(
        self, udtf, plan: UdtfPlan,
        results: list[dict[str, np.ndarray] | None],
    ) -> ResultSet:
        """Concatenate instance outputs in instance-index order."""
        outputs = [r for r in results if r]
        if not outputs:
            declared = udtf.output_schema(dict(plan.udtf.parameters))
            if declared:
                return ResultSet(
                    [c.name for c in declared],
                    {c.name: np.empty(0, dtype=c.numpy_dtype) for c in declared},
                )
            return ResultSet([], {})
        names = list(outputs[0].keys())
        columns = {
            name: np.concatenate([np.atleast_1d(np.asarray(o[name])) for o in outputs])
            for name in names
        }
        return ResultSet(names, columns)

    def _bind_args(
        self, args: tuple[ast.Expr, ...], batch: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        rows = _batch_rows(batch)
        bound: dict[str, np.ndarray] = {}
        for position, arg in enumerate(args):
            if isinstance(arg, ast.ColumnRef):
                name = arg.name
            else:
                name = f"arg{position}"
            if name in bound:
                name = f"arg{position}"
            value = np.asarray(expressions.evaluate(arg, batch))
            bound[name] = _broadcast_rows(value, rows)
        return bound

    def _shuffle_by_key(self, plan, batches, arg_batches, node_count):
        """PARTITION BY: route each key's rows to one owning instance."""
        total_instances = node_count
        buckets: list[list[dict[str, np.ndarray]]] = [[] for _ in range(total_instances)]
        for node, (batch, args) in enumerate(zip(batches, arg_batches)):
            rows = _batch_rows(batch)
            keys = _broadcast_rows(
                np.asarray(expressions.evaluate(plan.udtf.partition.expr, batch)), rows
            )
            destination = (hash64(keys) % np.uint64(total_instances)).astype(np.int64)
            for instance in range(total_instances):
                mask = destination == instance
                if not mask.any():
                    continue
                chunk = {name: arr[mask] for name, arr in args.items()}
                if instance != node:
                    moved = sum(arr.nbytes if hasattr(arr, "nbytes") else 0
                                for arr in chunk.values())
                    self.cluster.telemetry.add("shuffle_bytes", moved)
                buckets[instance].append(chunk)
        assignments = []
        for instance, chunks in enumerate(buckets):
            if not chunks:
                continue
            merged = {
                name: np.concatenate([c[name] for c in chunks])
                for name in chunks[0]
            }
            assignments.append((instance % node_count, merged))
        return assignments


# -- aggregation state --------------------------------------------------------


class _AggState:
    """Mergeable partial state for one aggregate call."""

    def __init__(self, call: ast.AggregateCall) -> None:
        self.call = call
        self.count = 0
        self.total = 0.0
        self.minimum: Any = None
        self.maximum: Any = None
        self.distinct: set | None = set() if call.distinct else None

    def update(self, values: np.ndarray | None, row_count: int) -> None:
        name = self.call.name
        if name == "COUNT" and self.call.arg is None:
            self.count += row_count
            return
        if values is None:
            raise SqlAnalysisError(f"{name} requires an argument")
        values = np.atleast_1d(values)
        if self.distinct is not None:
            self.distinct.update(values.tolist())
            return
        self.count += len(values)
        if name in ("SUM", "AVG"):
            if len(values):
                self.total += float(np.sum(values.astype(np.float64)))
        elif name == "MIN":
            if len(values):
                candidate = values.min()
                self.minimum = candidate if self.minimum is None else min(self.minimum, candidate)
        elif name == "MAX":
            if len(values):
                candidate = values.max()
                self.maximum = candidate if self.maximum is None else max(self.maximum, candidate)
        elif name != "COUNT":
            raise SqlAnalysisError(f"unknown aggregate {name}")

    def merge(self, other: "_AggState") -> None:
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            self.minimum = other.minimum if self.minimum is None else min(
                self.minimum, other.minimum)
        if other.maximum is not None:
            self.maximum = other.maximum if self.maximum is None else max(
                self.maximum, other.maximum)
        if self.distinct is not None and other.distinct is not None:
            self.distinct |= other.distinct

    def finalize(self) -> Any:
        name = self.call.name
        if self.distinct is not None:
            if name == "COUNT":
                return len(self.distinct)
            if name == "SUM":
                return float(sum(self.distinct)) if self.distinct else None
            if name == "AVG":
                return float(sum(self.distinct)) / len(self.distinct) if self.distinct else None
            raise SqlAnalysisError(f"DISTINCT not supported for {name}")
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total if self.count else None
        if name == "AVG":
            return self.total / self.count if self.count else None
        if name == "MIN":
            return self.minimum
        if name == "MAX":
            return self.maximum
        raise SqlAnalysisError(f"unknown aggregate {name}")


# -- streaming helpers --------------------------------------------------------


def _apply_where(where: ast.Expr | None,
                 batch: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Filter one batch by the WHERE predicate (pass-through when absent)."""
    if where is None:
        return batch
    mask = np.atleast_1d(
        np.asarray(expressions.evaluate(where, batch), dtype=bool)
    )
    if mask.shape == (1,) and _batch_rows(batch) != 1:
        mask = np.broadcast_to(mask, (_batch_rows(batch),))
    return {name: arr[mask] for name, arr in batch.items()}


def _project_batch(
    items: list[ast.SelectItem], names: list[str],
    order_by: list[ast.OrderItem], batch: dict[str, np.ndarray],
) -> tuple[dict[str, np.ndarray], list[np.ndarray]]:
    """Evaluate the select list (and ORDER BY keys) over one batch."""
    rows = _batch_rows(batch)
    projected: dict[str, np.ndarray] = {}
    for item, name in zip(items, names):
        value = np.asarray(expressions.evaluate(item.expr, batch))
        projected[name] = _broadcast_rows(value, rows)
    order_vals = []
    for order in order_by:
        value = np.asarray(expressions.evaluate(order.expr, batch))
        order_vals.append(_broadcast_rows(value, rows))
    return projected, order_vals


def _merge_partials(
    merged: dict[tuple, list["_AggState"]],
    partials: dict[tuple, list["_AggState"]],
) -> None:
    """Merge per-group partial aggregate states into ``merged`` in place."""
    for key, states in partials.items():
        if key not in merged:
            merged[key] = states
        else:
            for existing, incoming in zip(merged[key], states):
                existing.merge(incoming)


def _chain_one(first: dict[str, np.ndarray],
               rest: Iterator[dict[str, np.ndarray]]
               ) -> Iterator[dict[str, np.ndarray]]:
    """Re-attach a probed first batch to the remainder of its stream."""
    yield first
    yield from rest


class _TopK:
    """Bounded accumulator for ``ORDER BY ... LIMIT`` under streaming.

    Buffers projected chunks and, when the buffer outgrows its threshold,
    trims to the ``limit`` best rows with the same stable multi-key sort the
    initiator applies.  A stable local trim is lossless: a row's stable rank
    among one node's rows never exceeds its global stable rank, so any row
    the global sort+limit keeps survives every local trim.  Tied rows stay
    in scan order throughout (stable sorts, chunks appended in scan order),
    so the initiator's final stable sort reproduces the eager ordering
    bit for bit.
    """

    def __init__(self, names: list[str], limit: int,
                 ascending: list[bool]) -> None:
        self.names = names
        self.limit = limit
        self.ascending = ascending
        self.out_chunks: dict[str, list[np.ndarray]] = {n: [] for n in names}
        self.order_chunks: list[list[np.ndarray]] = [[] for _ in ascending]
        self.buffered = 0
        self.threshold = max(4 * limit, 8_192)

    def add(self, projected: dict[str, np.ndarray],
            order_vals: list[np.ndarray]) -> None:
        for name in self.names:
            self.out_chunks[name].append(projected[name])
        for i, value in enumerate(order_vals):
            self.order_chunks[i].append(value)
        self.buffered += _batch_rows(projected)
        if self.buffered > self.threshold:
            self._trim()

    def _trim(self) -> None:
        keys = [np.concatenate(chunks) for chunks in self.order_chunks]
        index = _sort_index(keys, self.ascending)[: self.limit]
        for name in self.names:
            merged = np.concatenate(self.out_chunks[name])
            self.out_chunks[name] = [merged[index]]
        self.order_chunks = [[key[index]] for key in keys]
        self.buffered = len(index)

    def finish(self) -> tuple[dict[str, list[np.ndarray]],
                              list[list[np.ndarray]]]:
        return self.out_chunks, self.order_chunks


# -- PROFILE rendering --------------------------------------------------------


def _render_profile(root: Span) -> ResultSet:
    """Render a finished span tree as the PROFILE result set.

    One row per span, depth-first, with the tree shown by indentation in
    the ``operator`` column.  ``rows``/``bytes`` are subtree totals (a
    parent aggregates its children), ``wall_ms`` is the span's own wall
    time, and ``detail`` carries the remaining attributes (node/instance
    indices, peak-inflight watermarks, backpressure time, errors).
    """
    operators: list[str] = []
    wall_ms: list[float] = []
    rows_col: list[float] = []
    bytes_col: list[float] = []
    detail: list[str] = []

    def visit(span: Span, depth: int) -> None:
        operators.append("  " * depth + span.name)
        wall_ms.append(span.duration * 1e3)
        rows_col.append(span.total("rows"))
        bytes_col.append(span.total("bytes"))
        extras = {
            key: value for key, value in span.attributes.items()
            if key not in ("rows", "bytes")
        }
        if span.error is not None:
            extras["error"] = span.error
        detail.append(", ".join(
            f"{key}={value:.6g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in sorted(extras.items())
        ))
        for child in list(span.children):
            visit(child, depth + 1)

    visit(root, 0)
    return ResultSet(
        ["operator", "wall_ms", "rows", "bytes", "detail"],
        {
            "operator": np.asarray(operators, dtype=object),
            "wall_ms": np.asarray(wall_ms, dtype=np.float64),
            "rows": np.asarray(rows_col, dtype=np.float64),
            "bytes": np.asarray(bytes_col, dtype=np.float64),
            "detail": np.asarray(detail, dtype=object),
        },
    )


# -- small helpers ------------------------------------------------------------


def _split_args(args: dict[str, np.ndarray], instances: int
                ) -> list[dict[str, np.ndarray]]:
    """Split bound argument arrays into contiguous per-instance chunks."""
    boundaries = instance_boundaries(_batch_rows(args), instances)
    return [
        {name: arr[start:stop] for name, arr in args.items()}
        for start, stop in zip(boundaries, boundaries[1:])
    ]


def _distinct_indices(columns: list[np.ndarray]) -> np.ndarray:
    """Indices of the first occurrence of each distinct row (stable)."""
    if not columns:
        return np.arange(0)
    rows = len(columns[0])
    seen: dict[tuple, None] = {}
    keep: list[int] = []
    for i in range(rows):
        key = tuple(
            arr[i].item() if isinstance(arr[i], np.generic) else arr[i]
            for arr in columns
        )
        if key not in seen:
            seen[key] = None
            keep.append(i)
    return np.asarray(keep, dtype=np.int64)


def _has_aggregates(stmt: ast.Select) -> bool:
    sources = [item.expr for item in stmt.items]
    if stmt.having is not None:
        sources.append(stmt.having)
    return any(
        isinstance(node, ast.AggregateCall)
        for expr in sources for node in expr.walk()
    )


def _batch_rows(batch: Mapping[str, np.ndarray]) -> int:
    for arr in batch.values():
        return len(np.atleast_1d(arr))
    return 0


def _broadcast_rows(value: np.ndarray, rows: int) -> np.ndarray:
    value = np.atleast_1d(value)
    if len(value) == rows:
        return value
    if len(value) == 1:
        return np.broadcast_to(value, (rows,)).copy()
    raise ExecutionError(f"cannot broadcast length {len(value)} to {rows} rows")


def _sort_index(keys: list[np.ndarray], ascending: list[bool]) -> np.ndarray:
    """Stable multi-key sort honoring per-key direction."""
    if not keys:
        return np.arange(0)
    index = np.arange(len(keys[0]))
    # Apply keys from least to most significant for a stable composite sort.
    for key, asc in reversed(list(zip(keys, ascending))):
        current = key[index]
        if asc:
            order = np.argsort(current, kind="stable")
        else:
            # Stable descending: naively reversing an ascending argsort
            # would also reverse ties, so sort the reversed array and map
            # the positions back.
            reverse_order = np.argsort(current[::-1], kind="stable")
            order = (len(current) - 1 - reverse_order)[::-1]
        index = index[order]
    return index


def _factorize(key_arrays: list[np.ndarray]) -> tuple[list[tuple], np.ndarray]:
    """Group rows by composite key; returns (unique keys, inverse indices)."""
    codes = []
    uniques = []
    for arr in key_arrays:
        unique_vals, inverse = np.unique(np.asarray(arr), return_inverse=True)
        codes.append(inverse.astype(np.int64))
        uniques.append(unique_vals)
    combined = codes[0].copy()
    for code, unique_vals in zip(codes[1:], uniques[1:]):
        combined = combined * len(unique_vals) + code
    unique_combined, inverse = np.unique(combined, return_inverse=True)
    keys: list[tuple] = []
    for combo in unique_combined:
        parts = []
        remaining = int(combo)
        for unique_vals in reversed(uniques[1:]):
            remaining, digit = divmod(remaining, len(unique_vals))
            parts.append(unique_vals[digit])
        parts.append(uniques[0][remaining])
        keys.append(tuple(_to_python(v) for v in reversed(parts)))
    return keys, inverse


def _to_python(value: Any) -> Any:
    if isinstance(value, np.generic):
        return value.item()
    return value


def _sort_key_tuple(key: tuple) -> tuple:
    """Sort group keys robustly across mixed types."""
    return tuple(
        (0, v) if isinstance(v, (int, float)) and not isinstance(v, bool)
        else (1, str(v))
        for v in key
    )


def _group_alias(index: int) -> str:
    return f"__group_{index}"


def _agg_alias(index: int) -> str:
    return f"__agg_{index}"


def _rewrite(expr: ast.Expr, plan: AggregatePlan) -> ast.Expr:
    """Replace aggregate calls / group expressions with their result aliases."""
    for j, agg in enumerate(plan.aggregates):
        if expr == agg:
            return ast.ColumnRef(_agg_alias(j))
    for i, group_expr in enumerate(plan.group_by):
        if expr == group_expr:
            return ast.ColumnRef(_group_alias(i))
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _rewrite(expr.left, plan), _rewrite(expr.right, plan))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _rewrite(expr.operand, plan))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(expr.name, tuple(_rewrite(a, plan) for a in expr.args))
    if isinstance(expr, ast.ColumnRef):
        raise SqlAnalysisError(
            f"column {expr.name!r} must appear in GROUP BY or inside an aggregate"
        )
    return expr
