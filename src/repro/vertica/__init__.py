"""The Vertica analog: a multi-node, disk-based, columnar MPP database with
a SQL subset, transform UDFs, an internal DFS, and the R_Models catalog."""

from repro.vertica.cluster import VerticaCluster
from repro.vertica.copy_load import copy_from_csv, write_csv
from repro.vertica.dfs import DistributedFileSystem
from repro.vertica.executor import ResultSet
from repro.vertica.models import ModelRecord, Privilege, RModelsCatalog
from repro.vertica.node import DatabaseNode, NodeResources
from repro.vertica.odbc import OdbcConnection
from repro.vertica.pipeline import PipelineConfig, RecordBatch
from repro.vertica.segmentation import (
    HashSegmentation,
    RoundRobinSegmentation,
    SegmentationScheme,
    SkewedSegmentation,
    Unsegmented,
)
from repro.vertica.table import Table
from repro.vertica.txn import EpochClock, Snapshot, TupleMover, TupleMoverConfig
from repro.vertica.udtf import FunctionBasedUdtf, TransformFunction, UdtfContext

__all__ = [
    "VerticaCluster",
    "copy_from_csv",
    "write_csv",
    "Table",
    "ResultSet",
    "OdbcConnection",
    "PipelineConfig",
    "RecordBatch",
    "DatabaseNode",
    "NodeResources",
    "DistributedFileSystem",
    "RModelsCatalog",
    "ModelRecord",
    "Privilege",
    "SegmentationScheme",
    "HashSegmentation",
    "RoundRobinSegmentation",
    "SkewedSegmentation",
    "Unsegmented",
    "TransformFunction",
    "FunctionBasedUdtf",
    "UdtfContext",
    "EpochClock",
    "Snapshot",
    "TupleMover",
    "TupleMoverConfig",
]
