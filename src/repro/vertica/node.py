"""Database nodes: per-node resources the planner respects.

A node models the paper's per-server resource envelope — the query planner
"takes into account resource availability, such as CPU and memory usage, to
determine the optimal number of UDF instances to spawn" (§3.1), and ODBC
result serving contends on a bounded pool of concurrent scan slots (the
mechanism by which hundreds of simultaneous connections overwhelm Vertica).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ResourceError

__all__ = ["NodeResources", "DatabaseNode"]


@dataclass
class NodeResources:
    """Static resource envelope of one database server."""

    cores: int = 8
    memory_bytes: int = 16 * 2**30
    scan_slots: int = 4  # concurrent table scans the node serves

    def __post_init__(self) -> None:
        if self.cores < 1 or self.memory_bytes < 1 or self.scan_slots < 1:
            raise ResourceError("node resources must all be positive")


class DatabaseNode:
    """One Vertica node: identity, resources, and live utilization."""

    def __init__(self, index: int, resources: NodeResources | None = None) -> None:
        self.index = index
        self.name = f"v_node{index:04d}"
        self.resources = resources or NodeResources()
        self._scan_semaphore = threading.BoundedSemaphore(self.resources.scan_slots)
        self._lock = threading.Lock()
        self._reserved_cores = 0
        self.peak_scan_wait_depth = 0
        self._waiting_scans = 0
        self._down = False

    # -- liveness ------------------------------------------------------------

    @property
    def is_down(self) -> bool:
        with self._lock:
            return self._down

    def fail(self) -> None:
        """Mark the node as failed (scans must fail over to replicas)."""
        with self._lock:
            self._down = True

    def recover(self) -> None:
        with self._lock:
            self._down = False

    # -- scan slots (bounded concurrent scans) ------------------------------

    def acquire_scan_slot(self) -> None:
        """Block until a scan slot is free; tracks queueing depth."""
        with self._lock:
            self._waiting_scans += 1
            self.peak_scan_wait_depth = max(
                self.peak_scan_wait_depth, self._waiting_scans
            )
        self._scan_semaphore.acquire()
        with self._lock:
            self._waiting_scans -= 1

    def release_scan_slot(self) -> None:
        self._scan_semaphore.release()

    # -- core reservations (UDF fan-out sizing) -----------------------------

    def reserve_cores(self, count: int) -> int:
        """Reserve up to ``count`` cores; returns how many were granted."""
        if count < 0:
            raise ResourceError("cannot reserve a negative core count")
        with self._lock:
            available = self.resources.cores - self._reserved_cores
            granted = min(count, max(available, 0))
            self._reserved_cores += granted
            return granted

    def release_cores(self, count: int) -> None:
        with self._lock:
            if count > self._reserved_cores:
                raise ResourceError("releasing more cores than were reserved")
            self._reserved_cores -= count

    @property
    def available_cores(self) -> int:
        with self._lock:
            return self.resources.cores - self._reserved_cores

    def best_udtf_parallelism(self, rowgroups: int) -> int:
        """PARTITION BEST fan-out: bounded by free cores and available work."""
        cores = max(self.available_cores, 1)
        return max(1, min(cores, rowgroups if rowgroups > 0 else 1))
