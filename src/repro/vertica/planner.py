"""Query planning: classify statements and size UDTF fan-out.

The planner turns a parsed :class:`~repro.vertica.sql.ast.Select` into one of
three physical plan shapes — plain scan, two-phase aggregate, or UDTF
fan-out — and decides the per-node instance counts for ``PARTITION BEST``
("The Vertica query planner starts many parallel instances of user-defined
functions. The amount of parallelism is dependent on resources available and
how the input table is partitioned", §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SqlAnalysisError
from repro.vertica.expressions import columns_referenced
from repro.vertica.sql import ast

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.sql.analyzer import ResolvedQuery

__all__ = ["ScanPlan", "AggregatePlan", "UdtfPlan", "plan_select",
           "instance_boundaries"]


def instance_boundaries(rows: int, instances: int) -> list[int]:
    """Contiguous per-instance row offsets for ``PARTITION BEST`` fan-out.

    Returns ``instances + 1`` monotonically increasing boundaries over
    ``[0, rows]`` (clamping the instance count to the available rows).  Both
    execution modes cut a node's rows at these offsets — the eager splitter
    slices materialized argument arrays, the streaming router slices batches
    as they flow past — so the two pipelines hand identical row ranges to
    identical instance indices.
    """
    instances = max(1, min(instances, rows)) if rows else 1
    return [int(b) for b in np.linspace(0, rows, instances + 1)]


@dataclass
class ScanPlan:
    """Filter + project + optional order/limit, no grouping."""

    table: str
    items: list[ast.SelectItem]
    select_star: bool
    where: ast.Expr | None
    order_by: list[ast.OrderItem]
    limit: int | None
    distinct: bool = False
    columns_needed: set[str] = field(default_factory=set)


@dataclass
class AggregatePlan:
    """Two-phase aggregation: per-node partials merged on the initiator."""

    table: str
    items: list[ast.SelectItem]
    group_by: list[ast.Expr]
    aggregates: list[ast.AggregateCall]
    where: ast.Expr | None
    having: ast.Expr | None
    order_by: list[ast.OrderItem]
    limit: int | None
    columns_needed: set[str] = field(default_factory=set)


@dataclass
class UdtfPlan:
    """Transform-function fan-out over a partitioning of the table."""

    table: str
    udtf: ast.UdtfCall
    where: ast.Expr | None
    columns_needed: set[str] = field(default_factory=set)


def plan_select(stmt: ast.Select,
                resolved: "ResolvedQuery | None" = None
                ) -> ScanPlan | AggregatePlan | UdtfPlan:
    """Classify and validate a SELECT statement.

    ``resolved`` is the analyzer's annotation for this statement; when
    present its pre-computed projection set replaces the per-clause column
    walks below (the validation raises stay, for callers that plan without
    analyzing first).
    """
    if stmt.table is None:
        raise SqlAnalysisError("SELECT without FROM is not supported")
    precomputed = (set(resolved.columns_needed)
                   if resolved is not None else None)

    if stmt.udtf is not None:
        if stmt.group_by or stmt.having or stmt.order_by or stmt.limit is not None:
            raise SqlAnalysisError(
                "UDTF queries do not support GROUP BY / HAVING / ORDER BY / LIMIT"
            )
        if precomputed is not None:
            return UdtfPlan(stmt.table, stmt.udtf, stmt.where, precomputed)
        needed: set[str] = set()
        for arg in stmt.udtf.args:
            needed |= columns_referenced(arg)
        if stmt.udtf.partition.expr is not None:
            needed |= columns_referenced(stmt.udtf.partition.expr)
        if stmt.where is not None:
            needed |= columns_referenced(stmt.where)
        return UdtfPlan(stmt.table, stmt.udtf, stmt.where, needed)

    if stmt.distinct and (stmt.group_by or _has_any_aggregate(stmt)):
        raise SqlAnalysisError("SELECT DISTINCT cannot combine with GROUP BY")
    aggregates = _collect_aggregates(stmt)
    if aggregates or stmt.group_by:
        if stmt.select_star:
            raise SqlAnalysisError("SELECT * cannot be combined with aggregation")
        if precomputed is not None:
            needed = precomputed
        else:
            needed = set()
            for item in stmt.items:
                needed |= columns_referenced(item.expr)
            for expr in stmt.group_by:
                needed |= columns_referenced(expr)
            if stmt.where is not None:
                needed |= columns_referenced(stmt.where)
            if stmt.having is not None:
                needed |= columns_referenced(stmt.having)
            for order in stmt.order_by:
                needed |= columns_referenced(order.expr)
        return AggregatePlan(
            table=stmt.table,
            items=stmt.items,
            group_by=list(stmt.group_by),
            aggregates=aggregates,
            where=stmt.where,
            having=stmt.having,
            order_by=list(stmt.order_by),
            limit=stmt.limit,
            columns_needed=needed,
        )

    if stmt.having is not None:
        raise SqlAnalysisError("HAVING requires GROUP BY or aggregates")
    if precomputed is not None:
        needed = precomputed
    else:
        needed = set()
        for item in stmt.items:
            needed |= columns_referenced(item.expr)
        if stmt.where is not None:
            needed |= columns_referenced(stmt.where)
        for order in stmt.order_by:
            needed |= columns_referenced(order.expr)
    return ScanPlan(
        table=stmt.table,
        items=stmt.items,
        select_star=stmt.select_star,
        where=stmt.where,
        order_by=list(stmt.order_by),
        limit=stmt.limit,
        distinct=stmt.distinct,
        columns_needed=needed,
    )


def _has_any_aggregate(stmt: ast.Select) -> bool:
    return any(
        isinstance(node, ast.AggregateCall)
        for item in stmt.items for node in item.expr.walk()
    )


def _collect_aggregates(stmt: ast.Select) -> list[ast.AggregateCall]:
    """All distinct aggregate calls in the select list and HAVING clause."""
    seen: dict[ast.AggregateCall, None] = {}
    sources = [item.expr for item in stmt.items]
    if stmt.having is not None:
        sources.append(stmt.having)
    for expr in sources:
        for node in expr.walk():
            if isinstance(node, ast.AggregateCall):
                nested = node.arg is not None and any(
                    isinstance(descendant, ast.AggregateCall)
                    for descendant in node.arg.walk()
                )
                if nested:
                    raise SqlAnalysisError("nested aggregates are not allowed")
                seen.setdefault(node)
    return list(seen)
