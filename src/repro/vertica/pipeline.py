"""Streaming batch pipeline: rowgroup-granular dataflow with backpressure.

The paper's transfer engine streams column blocks from database segments to
analytics workers in parallel; materializing a whole segment before the
first filter or frame defeats that.  This module provides the shared
vocabulary for the streaming executor:

* :class:`RecordBatch` — an immutable-ish columnar batch (dict of equal
  length 1-D arrays) with cheap slicing and byte accounting.
* :class:`PipelineConfig` — the knobs: ``mode`` (``"streaming"`` or the
  sanctioned ``"eager"`` fallback), ``batch_rows`` (granularity of batches
  pulled out of row groups), ``queue_depth`` (bound on batches queued per
  UDTF instance — the backpressure window).
* :class:`BatchQueue` — a bounded, cancellable queue connecting per-node
  scan producers to UDTF instances; producers block when a consumer falls
  behind, so peak in-flight bytes stay O(queue_depth * batch) instead of
  O(segment).

Telemetry (all recorded on the cluster's :class:`~repro.vertica.telemetry
.Telemetry`):

* ``batches_scanned`` — batches emitted by streaming (and eager) sources;
* ``peak_batch_bytes`` — largest single batch observed;
* ``rows_streamed`` — rows delivered through the streaming source;
* ``pipeline_inflight_bytes_now`` / ``_peak`` — live (produced but not yet
  consumed) batch bytes; the eager path records its full materialization
  here, which is exactly the number the streaming pipeline drives down;
* ``pipeline_inflight_batches_now`` / ``_peak`` — same, in batch counts.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.obs.trace import add_to_current

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.telemetry import Telemetry

__all__ = [
    "PipelineConfig",
    "RecordBatch",
    "BatchQueue",
    "PipelineCancelled",
    "INFLIGHT_BYTES_GAUGE",
    "INFLIGHT_BATCHES_GAUGE",
    "batch_nbytes",
    "rechunk",
    "concat_batches",
]

INFLIGHT_BYTES_GAUGE = "pipeline_inflight_bytes"
INFLIGHT_BATCHES_GAUGE = "pipeline_inflight_batches"


@dataclass(frozen=True)
class PipelineConfig:
    """Execution-pipeline knobs, held by :class:`VerticaCluster`.

    ``mode="streaming"`` (the default) pulls rowgroup-granular batches
    through composable operators; ``mode="eager"`` restores the historical
    materialize-everything path (kept so parity can be asserted test by
    test and as an escape hatch).
    """

    mode: str = "streaming"
    batch_rows: int = 8_192
    queue_depth: int = 4
    #: Seconds a producer/consumer may stay blocked on a batch queue before
    #: the wait is declared a stall and raised as a clean ExecutionError
    #: instead of hanging the query.  ``None`` (default) disables the check.
    stall_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("streaming", "eager"):
            raise ExecutionError(
                f"pipeline mode must be 'streaming' or 'eager', got {self.mode!r}"
            )
        if self.batch_rows < 1:
            raise ExecutionError(f"batch_rows must be positive, got {self.batch_rows}")
        if self.queue_depth < 1:
            raise ExecutionError(f"queue_depth must be positive, got {self.queue_depth}")
        if self.stall_timeout_seconds is not None and self.stall_timeout_seconds <= 0:
            raise ExecutionError(
                f"stall_timeout_seconds must be positive, got {self.stall_timeout_seconds}"
            )

    @property
    def streaming(self) -> bool:
        return self.mode == "streaming"


class RecordBatch:
    """One columnar batch: equal-length 1-D arrays keyed by column name."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        self.columns = {name: np.atleast_1d(np.asarray(arr))
                        for name, arr in columns.items()}
        lengths = {len(arr) for arr in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged record batch: {lengths}")
        self.rows = lengths.pop() if lengths else 0

    @property
    def nbytes(self) -> int:
        return batch_nbytes(self.columns)

    def slice(self, start: int, stop: int) -> "RecordBatch":
        return RecordBatch(
            {name: arr[start:stop] for name, arr in self.columns.items()}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordBatch(rows={self.rows}, columns={sorted(self.columns)})"


def batch_nbytes(columns: Mapping[str, np.ndarray]) -> int:
    """Approximate in-memory bytes of a batch dict (object arrays count
    pointer width only, matching how the shuffle path charges traffic)."""
    return sum(getattr(arr, "nbytes", 0) for arr in columns.values())


def rechunk(
    source: Iterator[dict[str, np.ndarray]], batch_rows: int
) -> Iterator[dict[str, np.ndarray]]:
    """Re-slice a stream of column dicts to at most ``batch_rows`` rows.

    Row groups are stored at load granularity (64 Ki rows by default); the
    pipeline's unit of flow control is smaller, so each decoded row group is
    sliced without copying (numpy views) before entering the dataflow.
    """
    for chunk in source:
        rows = len(next(iter(chunk.values()))) if chunk else 0
        if rows <= batch_rows:
            yield chunk
            continue
        for start in range(0, rows, batch_rows):
            stop = min(start + batch_rows, rows)
            yield {name: arr[start:stop] for name, arr in chunk.items()}


def concat_batches(
    batches: list[dict[str, np.ndarray]]
) -> dict[str, np.ndarray]:
    """Concatenate batch dicts (column-wise) in list order."""
    if not batches:
        return {}
    if len(batches) == 1:
        return batches[0]
    names = list(batches[0])
    return {
        name: np.concatenate([np.atleast_1d(np.asarray(b[name])) for b in batches])
        for name in names
    }


class PipelineCancelled(ExecutionError):
    """Raised inside producers/consumers when the pipeline is torn down."""


class _EndOfStream:
    __slots__ = ()


_END = _EndOfStream()


class BatchQueue:
    """A bounded producer/consumer queue of batch dicts with byte accounting.

    Producers block in :meth:`put` while the queue holds ``maxdepth``
    batches — that is the backpressure that keeps a fast scan from racing
    ahead of a slow UDTF instance.  The queue is cancellable via a shared
    abort :class:`threading.Event` so one failing instance unblocks every
    producer instead of deadlocking the thread pool.
    """

    def __init__(self, maxdepth: int, telemetry: "Telemetry | None" = None,
                 abort: threading.Event | None = None,
                 stall_timeout: float | None = None) -> None:
        if maxdepth < 1:
            raise ExecutionError(f"queue depth must be positive, got {maxdepth}")
        self.maxdepth = maxdepth
        self.telemetry = telemetry
        self.abort = abort or threading.Event()
        self.stall_timeout = stall_timeout
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._error: BaseException | None = None
        self.total_rows = 0
        self.total_bytes = 0
        self.total_batches = 0
        self.blocked_seconds = 0.0

    # -- producer side -----------------------------------------------------

    def put(self, batch: dict[str, np.ndarray], rows: int | None = None) -> None:
        """Enqueue one batch, blocking while the queue is full.

        Time spent blocked on a full queue is the backpressure the pipeline
        exists to apply; it accumulates on :attr:`blocked_seconds`, the
        ``pipeline_backpressure_seconds`` counter, and the producer's active
        span, so a slow consumer is visible in a PROFILE tree.
        """
        if rows is None:
            rows = len(next(iter(batch.values()))) if batch else 0
        nbytes = batch_nbytes(batch)
        blocked = 0.0
        with self._not_full:
            if len(self._items) >= self.maxdepth and not self.abort.is_set():
                wait_start = time.perf_counter()
                while (len(self._items) >= self.maxdepth
                        and not self.abort.is_set()):
                    self._not_full.wait(timeout=0.05)
                    if (self.stall_timeout is not None
                            and len(self._items) >= self.maxdepth
                            and not self.abort.is_set()
                            and time.perf_counter() - wait_start
                            > self.stall_timeout):
                        raise ExecutionError(
                            "pipeline stalled: producer blocked "
                            f"{time.perf_counter() - wait_start:.2f}s on a "
                            f"full queue (stall timeout {self.stall_timeout}s)"
                        )
                blocked = time.perf_counter() - wait_start
            if self.abort.is_set():
                raise PipelineCancelled("pipeline aborted while enqueueing")
            if self._closed:
                raise ExecutionError("put() on a closed BatchQueue")
            self._items.append((batch, rows, nbytes))
            self.total_rows += rows
            self.total_bytes += nbytes
            self.total_batches += 1
            self.blocked_seconds += blocked
            self._not_empty.notify()
        if blocked:
            add_to_current(backpressure_s=blocked)
        if self.telemetry is not None:
            if blocked:
                self.telemetry.add("pipeline_backpressure_seconds", blocked)
            self.telemetry.gauge_add(INFLIGHT_BYTES_GAUGE, nbytes)
            self.telemetry.gauge_add(INFLIGHT_BATCHES_GAUGE, 1)

    def close(self) -> None:
        """Signal end-of-stream; consumers drain remaining batches first."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def fail(self, error: BaseException) -> None:
        """Propagate a producer error to the consumer."""
        with self._not_empty:
            self._error = error
            self._closed = True
            self._not_empty.notify_all()

    # -- consumer side -----------------------------------------------------

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        while True:
            with self._not_empty:
                wait_start = None
                while not self._items and not self._closed \
                        and not self.abort.is_set():
                    if wait_start is None:
                        wait_start = time.perf_counter()
                    self._not_empty.wait(timeout=0.05)
                    if (self.stall_timeout is not None
                            and not self._items and not self._closed
                            and not self.abort.is_set()
                            and time.perf_counter() - wait_start
                            > self.stall_timeout):
                        raise ExecutionError(
                            "pipeline stalled: consumer waited "
                            f"{time.perf_counter() - wait_start:.2f}s for a "
                            f"batch (stall timeout {self.stall_timeout}s)"
                        )
                if self.abort.is_set() and not self._items:
                    raise PipelineCancelled("pipeline aborted while dequeueing")
                if self._items:
                    batch, _rows, nbytes = self._items.popleft()
                    self._not_full.notify()
                else:
                    if self._error is not None:
                        raise self._error
                    return
            if self.telemetry is not None:
                self.telemetry.gauge_add(INFLIGHT_BYTES_GAUGE, -nbytes)
                self.telemetry.gauge_add(INFLIGHT_BATCHES_GAUGE, -1)
            yield batch
