"""The database catalog: tables, registered transform functions, users.

A thin, thread-safe registry.  Model metadata lives in its own catalog table
(:mod:`repro.vertica.models`) because the paper gives ``R_Models`` a
queryable, table-like surface.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import CatalogError
from repro.storage.encoding import SqlType
from repro.vertica.txn.epochs import EpochClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.table import Table
    from repro.vertica.udtf import TransformFunction, UdtfSignature

__all__ = ["Catalog"]


class Catalog:
    """Registry of tables and transform functions for one cluster.

    The catalog also owns the cluster-global epoch clock: every table's
    commits and every statement's snapshots resolve against it, and
    catalog-level changes (``R_Models`` redeploys) stamp their own epochs
    from the same sequence so they serialize with data mutations.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tables: dict[str, "Table"] = {}
        self._udtfs: dict[str, "TransformFunction"] = {}
        # Bumped by every DDL change (table create/drop, UDTF registration)
        # so prepared-plan caches can discard analyses bound to stale schema.
        self._ddl_version = 0
        self.epochs = EpochClock()

    def ddl_version(self) -> int:
        """Monotonic counter of catalog shape changes (plan-cache key)."""
        with self._lock:
            return self._ddl_version

    # -- tables ---------------------------------------------------------

    def add_table(self, table: "Table") -> None:
        key = table.name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError(f"table {table.name!r} already exists")
            self._tables[key] = table
            self._ddl_version += 1

    def get_table(self, name: str) -> "Table":
        with self._lock:
            try:
                return self._tables[name.lower()]
            except KeyError:
                raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        with self._lock:
            existed = self._tables.pop(name.lower(), None) is not None
            if existed:
                self._ddl_version += 1
        if not existed and not if_exists:
            raise CatalogError(f"table {name!r} does not exist")
        return existed

    def table_types(self, name: str) -> dict[str, SqlType]:
        """Column name → SQL type for a registered table (analyzer binding)."""
        table = self.get_table(name)
        return {column.name: column.sql_type for column in table.user_schema}

    def table_names(self) -> list[str]:
        with self._lock:
            return sorted(t.name for t in self._tables.values())

    def tables(self) -> list["Table"]:
        """A point-in-time list of the registered tables (name order)."""
        with self._lock:
            return sorted(self._tables.values(), key=lambda t: t.name)

    # -- transform functions ---------------------------------------------

    def register_udtf(self, udtf: "TransformFunction", replace: bool = False) -> None:
        key = udtf.name.lower()
        with self._lock:
            if key in self._udtfs and not replace:
                raise CatalogError(f"transform function {udtf.name!r} already registered")
            self._udtfs[key] = udtf
            self._ddl_version += 1

    def get_udtf(self, name: str) -> "TransformFunction":
        with self._lock:
            try:
                return self._udtfs[name.lower()]
            except KeyError:
                raise CatalogError(
                    f"transform function {name!r} is not registered"
                ) from None

    def has_udtf(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._udtfs

    def udtf_signature(self, name: str) -> "UdtfSignature":
        """Declared calling convention of a registered transform function."""
        return self.get_udtf(name).signature()

    def udtf_names(self) -> list[str]:
        with self._lock:
            return sorted(self._udtfs)
