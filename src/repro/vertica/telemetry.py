"""Cluster telemetry: the classic counter facade over the typed registry.

Historically this was a flat thread-safe dict of string-keyed counters.
The real instruments now live in :class:`repro.obs.metrics.MetricsRegistry`
(declared Counter/Gauge/Histogram with units and descriptions — see
``docs/metrics_reference.md``); this class remains as a thin compatibility
shim so the dozens of ``telemetry.add("rows_scanned", n)`` call sites and
every ``telemetry.get(...)`` assertion keep working unchanged.  New code
should prefer the typed registry directly via :attr:`Telemetry.registry`.

The structured event log (``record_event``/``events``) stays here — events
are workload records for the perf model, not instruments.
"""

from __future__ import annotations

import threading

from ..obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Telemetry"]

_GAUGE_SUFFIXES = ("_now", "_peak")
_HISTOGRAM_SUFFIXES = ("_count", "_sum", "_min", "_max")


class Telemetry:
    """String-keyed facade over a :class:`MetricsRegistry` + event log."""

    def __init__(self, max_events: int = 10_000) -> None:
        self._lock = threading.Lock()
        self.registry = MetricsRegistry()
        self._events: list[tuple[str, dict]] = []
        self._max_events = max_events

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment ``counter`` by ``amount``.

        Routes to the instrument kind the name is declared as: counters
        accumulate, gauges shift their level, histograms observe a sample.
        Undeclared names become dynamic counters (old behaviour).
        """
        kind = self.registry.kind_of(counter)
        if kind == "gauge":
            self.registry.gauge(counter).add(amount)
        elif kind == "histogram":
            self.registry.histogram(counter).observe(amount)
        else:
            self.registry.counter(counter).add(amount)

    def get(self, counter: str) -> float:
        """Current value of ``counter`` (0.0 if never recorded).

        Accepts the legacy flat key space: bare counter names, gauge
        ``<name>_now``/``<name>_peak`` keys, and histogram
        ``<name>_{count,sum,min,max}`` keys.
        """
        instrument = self.registry.find(counter)
        if isinstance(instrument, Counter):
            return instrument.value
        if isinstance(instrument, Gauge):
            return instrument.peak if instrument.spec.watermark \
                else instrument.now
        if isinstance(instrument, Histogram):
            return instrument.stats()["sum"]
        for suffix in _GAUGE_SUFFIXES:
            if counter.endswith(suffix):
                base = self.registry.find(counter[: -len(suffix)])
                if isinstance(base, Gauge):
                    return base.now if suffix == "_now" else base.peak
        for suffix in _HISTOGRAM_SUFFIXES:
            if counter.endswith(suffix):
                base = self.registry.find(counter[: -len(suffix)])
                if isinstance(base, Histogram):
                    return base.stats()[suffix[1:]]
        return 0.0

    def observe_max(self, counter: str, value: float) -> None:
        """Record ``value`` into ``counter`` as a running maximum.

        ``<gauge>_peak`` names update the high-water mark of the underlying
        level gauge (the eager pipeline path records its whole-table peak on
        the same key the streaming path's gauge reports); other names become
        watermark gauges.
        """
        if counter.endswith("_peak"):
            base = counter[: -len("_peak")]
            if self.registry.kind_of(base) == "gauge":
                self.registry.gauge(base).observe_max(value)
                return
        self.registry.gauge(counter, watermark=True).observe_max(value)

    def gauge_add(self, gauge: str, delta: float) -> float:
        """Adjust a level gauge, tracking its high-water mark.

        Snapshots expose ``<gauge>_now`` (current level, clamped at 0) and
        ``<gauge>_peak`` (maximum level ever observed).  Returns the new
        level so producers can watermark it onto the active span.  The clamp
        means a ``reset()`` racing an in-flight stream can no longer leave
        the level permanently negative.
        """
        return self.registry.gauge(gauge).add(delta)

    def snapshot(self) -> dict[str, float]:
        """Flat copy of every recorded value, legacy key space."""
        return self.registry.snapshot()

    def record_event(self, kind: str, **fields) -> None:
        """Append a structured event (drops oldest beyond the cap)."""
        with self._lock:
            self._events.append((kind, fields))
            if len(self._events) > self._max_events:
                del self._events[: len(self._events) - self._max_events]

    def events(self, kind: str | None = None) -> list[tuple[str, dict]]:
        with self._lock:
            if kind is None:
                return list(self._events)
            return [e for e in self._events if e[0] == kind]

    def reset(self) -> None:
        self.registry.reset()
        with self._lock:
            self._events.clear()
