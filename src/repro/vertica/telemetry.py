"""Cluster telemetry: counters for bytes scanned, decompressed, shipped.

The functional layer records *what work happened* (rows, bytes, connections,
stream counts); the performance model consumes these counters to replay the
same workload at paper scale.  Counters are cheap (dict increments) and
thread-safe, because scans and UDF instances run on a thread pool.
"""

from __future__ import annotations

import threading
from collections import defaultdict

__all__ = ["Telemetry"]


class Telemetry:
    """Thread-safe named counters plus a bounded event log."""

    def __init__(self, max_events: int = 10_000) -> None:
        self._lock = threading.Lock()
        self._counters: defaultdict[str, float] = defaultdict(float)
        self._events: list[tuple[str, dict]] = []
        self._max_events = max_events

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment ``counter`` by ``amount``."""
        with self._lock:
            self._counters[counter] += amount

    def get(self, counter: str) -> float:
        """Current value of ``counter`` (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(counter, 0.0)

    def observe_max(self, counter: str, value: float) -> None:
        """Record ``value`` into ``counter`` as a running maximum."""
        with self._lock:
            if value > self._counters.get(counter, 0.0):
                self._counters[counter] = value

    def gauge_add(self, gauge: str, delta: float) -> None:
        """Adjust a level gauge, tracking its high-water mark.

        Maintains two counters: ``<gauge>_now`` (current level) and
        ``<gauge>_peak`` (the maximum level ever observed).  The streaming
        pipeline charges live batches here; the eager path records its full
        materialization, making the two directly comparable.
        """
        with self._lock:
            current = self._counters.get(f"{gauge}_now", 0.0) + delta
            self._counters[f"{gauge}_now"] = current
            if current > self._counters.get(f"{gauge}_peak", 0.0):
                self._counters[f"{gauge}_peak"] = current

    def snapshot(self) -> dict[str, float]:
        """Copy of all counters."""
        with self._lock:
            return dict(self._counters)

    def record_event(self, kind: str, **fields) -> None:
        """Append a structured event (drops oldest beyond the cap)."""
        with self._lock:
            self._events.append((kind, fields))
            if len(self._events) > self._max_events:
                del self._events[: len(self._events) - self._max_events]

    def events(self, kind: str | None = None) -> list[tuple[str, dict]]:
        with self._lock:
            if kind is None:
                return list(self._events)
            return [e for e in self._events if e[0] == kind]

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._events.clear()
