"""Zone-map predicate pushdown.

Column blocks carry min/max zone maps (:class:`repro.storage.column
.ColumnBlock`); this module turns a WHERE clause into per-column value
ranges so scans can skip entire row groups whose zone maps exclude the
predicate — the classic columnar-store optimization Vertica applies before
any block is decompressed.

Only *conservative* constraints are extracted: top-level AND conjuncts of
the forms ``col <op> literal`` / ``literal <op> col`` with numeric
literals, plus ``col IN (...)`` (as a min/max envelope).  Anything else —
OR branches, expressions over multiple columns, string comparisons — simply
contributes no constraint, so pruning never changes results, it only skips
work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vertica.sql import ast

__all__ = ["ColumnRange", "extract_column_ranges"]


@dataclass
class ColumnRange:
    """A conjunctive value envelope for one column: low <= col <= high."""

    low: float | None = None
    high: float | None = None

    def tighten_low(self, value: float) -> None:
        if self.low is None or value > self.low:
            self.low = value

    def tighten_high(self, value: float) -> None:
        if self.high is None or value < self.high:
            self.high = value


def extract_column_ranges(where: ast.Expr | None) -> dict[str, ColumnRange]:
    """Derive per-column ranges from the AND-conjuncts of a WHERE clause."""
    ranges: dict[str, ColumnRange] = {}
    if where is None:
        return ranges
    for conjunct in _conjuncts(where):
        _apply(conjunct, ranges)
    return ranges


def _conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _numeric_literal(expr: ast.Expr) -> float | None:
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return float(expr.value)
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _numeric_literal(expr.operand)
        return None if inner is None else -inner
    return None


def _bare_column(expr: ast.Expr) -> str | None:
    if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
        return expr.name
    return None


def _apply(conjunct: ast.Expr, ranges: dict[str, ColumnRange]) -> None:
    if isinstance(conjunct, ast.InList):
        column = _bare_column(conjunct.operand)
        if column is None:
            return
        values = [float(v) for v in conjunct.values
                  if isinstance(v, (int, float)) and not isinstance(v, bool)]
        if len(values) != len(conjunct.values) or not values:
            return
        entry = ranges.setdefault(column, ColumnRange())
        entry.tighten_low(min(values))
        entry.tighten_high(max(values))
        return
    if not isinstance(conjunct, ast.BinaryOp):
        return
    op = conjunct.op
    if op not in ("=", "<", "<=", ">", ">="):
        return
    column = _bare_column(conjunct.left)
    literal = _numeric_literal(conjunct.right)
    if column is None or literal is None:
        # Try the mirrored orientation: literal <op> column.
        column = _bare_column(conjunct.right)
        literal = _numeric_literal(conjunct.left)
        if column is None or literal is None:
            return
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
    entry = ranges.setdefault(column, ColumnRange())
    if op == "=":
        entry.tighten_low(literal)
        entry.tighten_high(literal)
    elif op in ("<", "<="):
        entry.tighten_high(literal)
    else:  # > or >=
        entry.tighten_low(literal)
