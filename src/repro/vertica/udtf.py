"""User-defined transform function (UDTF) framework.

Vertica's integration points in the paper are all transform functions:
``ExportToDistributedR`` starts VFT streams, ``KmeansPredict`` / ``GlmPredict``
score tables, and "users have the flexibility to create their own prediction
functions for custom models and register them with Vertica" (§5).

A transform function receives one *partition* of input rows (as column
arrays) plus the ``USING PARAMETERS`` dict, and emits output column arrays.
The executor fans instances out across nodes according to the query's
``OVER (PARTITION ...)`` clause and merges their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

import numpy as np

from repro.errors import ExecutionError
from repro.storage.encoding import ColumnSchema
from repro.vertica.pipeline import concat_batches

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["UdtfContext", "UdtfSignature", "TransformFunction", "FunctionBasedUdtf"]


@dataclass(frozen=True)
class UdtfSignature:
    """Statically declared calling convention of a transform function.

    Consumed by the SQL semantic analyzer (:mod:`repro.vertica.sql.analyzer`)
    to reject malformed calls before any instance is fanned out.  The default
    is fully permissive, so functions that do not declare a signature keep
    their runtime-checked behaviour.

    ``min_args``/``max_args`` bound the argument count (``None`` = unbounded);
    ``numeric_args`` requires every argument to be numeric (INTEGER, FLOAT,
    or BOOLEAN — the encodings the prediction functions stack into a float64
    feature matrix); ``required_parameters``/``known_parameters`` describe the
    ``USING PARAMETERS`` dict (``known_parameters=None`` accepts any name);
    ``model_parameter`` names the parameter holding an ``R_Models`` reference,
    checked against the deployed-model catalog at execution time.
    """

    min_args: int = 0
    max_args: int | None = None
    numeric_args: bool = False
    required_parameters: frozenset[str] = frozenset()
    known_parameters: frozenset[str] | None = None
    model_parameter: str | None = None


@dataclass
class UdtfContext:
    """Execution context handed to each UDTF instance.

    ``node_index``/``instance_index`` identify where this instance runs (the
    prediction functions use ``node_index`` to prefer the local DFS model
    replica); ``cluster`` exposes database services.
    """

    cluster: "VerticaCluster"
    node_index: int
    instance_index: int
    instance_count: int
    session_user: str = "dbadmin"

    def read_dfs(self, path: str) -> bytes:
        """Read a DFS file, preferring the replica on this node."""
        return self.cluster.dfs.read(path, from_node=self.node_index)


class TransformFunction:
    """Base class for transform functions.

    Subclasses set :attr:`name`, implement :meth:`process`, and may override
    :meth:`output_schema` to declare output columns (otherwise they are
    inferred from the first non-empty output batch).
    """

    name: str = ""

    # Whether invocations are pure functions of table contents and model
    # catalog state.  Functions with external side effects (e.g. streaming
    # frames to R workers) set this False so the serving result cache never
    # replays a stored result instead of re-running the effect.
    cacheable: bool = True

    def signature(self) -> UdtfSignature:
        """Declared calling convention; permissive unless overridden."""
        return UdtfSignature()

    def output_schema(self, params: Mapping[str, Any]) -> list[ColumnSchema] | None:
        """Declared output columns, or ``None`` to infer from outputs."""
        return None

    def process(
        self,
        ctx: UdtfContext,
        args: dict[str, np.ndarray],
        params: Mapping[str, Any],
    ) -> dict[str, np.ndarray] | None:
        """Consume one input partition; return output columns (or ``None``).

        ``args`` maps *argument position names* (``arg0``, ``arg1``, … or the
        source column names when arguments are plain column references) to
        equal-length arrays.
        """
        raise NotImplementedError

    def process_stream(
        self,
        ctx: UdtfContext,
        batches: Iterator[dict[str, np.ndarray]],
        params: Mapping[str, Any],
    ) -> dict[str, np.ndarray] | None:
        """Consume this instance's partition as a stream of input batches.

        The streaming executor feeds each instance from a bounded queue of
        rowgroup-granular batches.  The default materializes the stream and
        delegates to :meth:`process`, so existing functions run unchanged
        (with eager memory behaviour for that one instance); streaming-aware
        functions — the VFT exporter, the prediction functions — override
        this to bound their footprint to one batch.  Returns ``None`` when
        the stream yields no batches.
        """
        collected = list(batches)
        if not collected:
            return None
        return self.process(ctx, concat_batches(collected), params)

    def validate_output(self, output: dict[str, np.ndarray] | None) -> None:
        if output is None:
            return
        lengths = {name: len(np.atleast_1d(np.asarray(arr))) for name, arr in output.items()}
        if lengths and len(set(lengths.values())) != 1:
            raise ExecutionError(
                f"UDTF {self.name!r} produced ragged output columns: {lengths}"
            )


class FunctionBasedUdtf(TransformFunction):
    """Adapter wrapping a plain callable as a transform function."""

    def __init__(
        self,
        name: str,
        fn: Callable[[UdtfContext, dict[str, np.ndarray], Mapping[str, Any]],
                     dict[str, np.ndarray] | None],
        output_columns: list[ColumnSchema] | None = None,
    ) -> None:
        if not name:
            raise ExecutionError("transform function requires a name")
        self.name = name
        self._fn = fn
        self._output_columns = output_columns

    def output_schema(self, params: Mapping[str, Any]) -> list[ColumnSchema] | None:
        return self._output_columns

    def process(self, ctx, args, params):
        return self._fn(ctx, args, params)
