"""Vertica's internal distributed file system (DFS).

The paper stores serialized R models here rather than in tables: "models are
stored as binary blobs in Vertica's distributed file system … The DFS can
replicate files across nodes to ensure that they are available at all nodes"
(§5).  This module reproduces those semantics: named blobs, per-node replica
placement, checksums, reads that survive node failures, and the same
fault-tolerance guarantee as tables (data is available while at least one
replica's node is up).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DfsError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan
    from repro.obs.trace import Tracer
    from repro.vertica.telemetry import Telemetry

__all__ = ["DistributedFileSystem", "DfsFileInfo"]


@dataclass
class DfsFileInfo:
    """Metadata for one DFS file."""

    path: str
    size: int
    checksum: int
    replica_nodes: tuple[int, ...]
    version: int = 1
    attributes: dict[str, str] = field(default_factory=dict)


class DistributedFileSystem:
    """Replicated blob store spanning the cluster's nodes."""

    def __init__(self, node_count: int, replication: int = 2) -> None:
        if node_count < 1:
            raise DfsError("DFS requires at least one node")
        if replication < 1:
            raise DfsError("replication factor must be >= 1")
        self.node_count = node_count
        self.replication = min(replication, node_count)
        self._lock = threading.Lock()
        # blobs[node][path] -> bytes
        self._blobs: list[dict[str, bytes]] = [{} for _ in range(node_count)]
        self._meta: dict[str, DfsFileInfo] = {}
        self._down: set[int] = set()
        self._placement_cursor = 0
        # Wired up by the owning cluster so read-repair events surface
        # through the shared observability pipeline (None standalone).
        self.telemetry: "Telemetry | None" = None
        self.tracer: "Tracer | None" = None
        self.faults: "FaultPlan | None" = None

    # -- failure injection -------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Mark a node as down; its replicas become unreadable."""
        self._check_node(node)
        with self._lock:
            self._down.add(node)

    def recover_node(self, node: int) -> None:
        """Bring a failed node back and repair its replica set.

        Deletes and overwrites that happened while the node was down never
        reached it, so recovery must reconcile: orphaned blobs (path no
        longer in the catalog) and stale versions (checksum mismatch) are
        dropped, and files left under-replicated by writes during the
        outage are re-replicated onto this node from a checksum-correct
        peer.  After this returns, :meth:`total_bytes` again reflects
        exactly ``replication`` copies of every live file (node capacity
        permitting).
        """
        self._check_node(node)
        with self._lock:
            self._down.discard(node)
            self._repair_node_locked(node)

    def _repair_node_locked(self, node: int) -> None:
        """Reconcile one recovered node's blobs; caller holds ``_lock``."""
        blobs = self._blobs[node]
        for path in list(blobs):
            info = self._meta.get(path)
            if (info is None or node not in info.replica_nodes
                    or zlib.crc32(blobs[path]) != info.checksum):
                del blobs[path]
        for path, info in self._meta.items():
            if node in info.replica_nodes:
                continue
            if len(info.replica_nodes) >= self.replication:
                continue
            for peer in info.replica_nodes:
                if peer in self._down:
                    continue
                data = self._blobs[peer].get(path)
                if data is not None and zlib.crc32(data) == info.checksum:
                    blobs[path] = data
                    info.replica_nodes = info.replica_nodes + (node,)
                    break

    def lose_replica(self, path: str, node: int | None = None) -> int:
        """Drop one replica's bytes (the node stays up) — a lost/evicted
        blob, as injected by :data:`FaultKind.BLOB_LOSS`.  Returns the node
        that lost its copy; the next :meth:`read` heals it by read-repair.
        """
        with self._lock:
            info = self._meta.get(path)
            if info is None:
                raise DfsError(f"DFS file not found: {path!r}")
            candidates = (node,) if node is not None else info.replica_nodes
            for candidate in candidates:
                if self._blobs[candidate].pop(path, None) is not None:
                    return candidate
        raise DfsError(f"no replica of {path!r} holds bytes to lose")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.node_count:
            raise DfsError(f"node {node} out of range (cluster has {self.node_count})")

    # -- file operations -----------------------------------------------------

    def write(self, path: str, data: bytes, attributes: dict[str, str] | None = None,
              overwrite: bool = False) -> DfsFileInfo:
        """Store ``data`` under ``path``, replicated across live nodes."""
        if not path or path.startswith("/") is False and "//" in path:
            raise DfsError(f"invalid DFS path: {path!r}")
        if not isinstance(data, (bytes, bytearray)):
            raise DfsError("DFS stores bytes; serialize the object first")
        data = bytes(data)
        with self._lock:
            if path in self._meta and not overwrite:
                raise DfsError(f"DFS file already exists: {path!r}")
            live = [n for n in range(self.node_count) if n not in self._down]
            if len(live) < 1:
                raise DfsError("no live nodes to store the file")
            replicas = self._choose_replicas_locked(live)
            version = self._meta[path].version + 1 if path in self._meta else 1
            # Remove stale replicas from a previous version.  Down nodes
            # can't process the removal; their stale copies are reconciled
            # by the repair scan in recover_node.
            if path in self._meta:
                for node in self._meta[path].replica_nodes:
                    if node not in self._down:
                        self._blobs[node].pop(path, None)
            for node in replicas:
                self._blobs[node][path] = data
            info = DfsFileInfo(
                path=path,
                size=len(data),
                checksum=zlib.crc32(data),
                replica_nodes=tuple(replicas),
                version=version,
                attributes=dict(attributes or {}),
            )
            self._meta[path] = info
            return info

    def _choose_replicas_locked(self, live: list[int]) -> list[int]:
        """Round-robin placement across live nodes; caller holds ``_lock``."""
        count = min(self.replication, len(live))
        start = self._placement_cursor % len(live)
        self._placement_cursor += 1
        return [live[(start + i) % len(live)] for i in range(count)]

    def read(self, path: str, from_node: int | None = None) -> bytes:
        """Read a file, transparently falling over to a live replica.

        A read that touches a degraded replica set — a down node, a lost
        blob, or a checksum-corrupt copy — triggers *read-repair*: the
        first intact copy found is rewritten onto every reachable replica
        node and, if the file is still under-replicated, onto fresh live
        nodes.  Repairs count ``dfs_read_repairs`` and emit a
        ``fault.recovered`` span when the cluster has wired telemetry in.
        """
        faults = self.faults
        if faults is not None:
            # Before _lock: a BLOB_LOSS effect re-enters the DFS.
            faults.perturb("dfs.read", path=path)
        restored = 0
        with self._lock:
            info = self._meta.get(path)
            if info is None:
                raise DfsError(f"DFS file not found: {path!r}")
            candidates = list(info.replica_nodes)
            if from_node is not None and from_node in candidates:
                # Prefer the local replica when the caller runs on that node.
                candidates.remove(from_node)
                candidates.insert(0, from_node)
            data = None
            degraded = False
            corrupt = False
            for node in candidates:
                if node in self._down:
                    degraded = True
                    continue
                blob = self._blobs[node].get(path)
                if blob is None:
                    degraded = True
                    continue
                if zlib.crc32(blob) != info.checksum:
                    degraded = True
                    corrupt = True
                    continue
                data = blob
                break
            if data is None:
                if corrupt:
                    raise DfsError(
                        f"checksum mismatch reading {path!r}: no intact replica"
                    )
                raise DfsError(
                    f"all replicas of {path!r} are on failed nodes "
                    f"{info.replica_nodes}"
                )
            if degraded:
                restored = self._read_repair_locked(path, info, data)
        if restored:
            if self.telemetry is not None:
                self.telemetry.add("dfs_read_repairs")
            if self.tracer is not None:
                with self.tracer.span("fault.recovered",
                                      mechanism="read_repair",
                                      path=path, restored=restored):
                    pass
        return data

    def _read_repair_locked(self, path: str, info: DfsFileInfo,
                            data: bytes) -> int:
        """Heal a degraded replica set from one intact copy.

        Lost or corrupt copies on live replica nodes are rewritten in
        place; if down nodes leave the file with fewer than ``replication``
        reachable copies, fresh live nodes are recruited.  Caller holds
        ``_lock``.  Returns the number of copies restored.
        """
        restored = 0
        live_good = 0
        for node in info.replica_nodes:
            if node in self._down:
                continue
            blob = self._blobs[node].get(path)
            if blob is None or zlib.crc32(blob) != info.checksum:
                self._blobs[node][path] = data
                restored += 1
            live_good += 1
        if live_good < self.replication:
            fresh = [
                n for n in range(self.node_count)
                if n not in self._down and n not in info.replica_nodes
            ]
            for node in fresh[:self.replication - live_good]:
                self._blobs[node][path] = data
                info.replica_nodes = info.replica_nodes + (node,)
                restored += 1
        return restored

    def stat(self, path: str) -> DfsFileInfo:
        with self._lock:
            info = self._meta.get(path)
        if info is None:
            raise DfsError(f"DFS file not found: {path!r}")
        return info

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._meta

    def delete(self, path: str) -> None:
        """Drop a file from the catalog and every reachable replica.

        Replicas on failed nodes cannot process the delete; they become
        orphans that :meth:`recover_node`'s repair scan removes.
        """
        with self._lock:
            info = self._meta.pop(path, None)
            if info is None:
                raise DfsError(f"DFS file not found: {path!r}")
            for node in info.replica_nodes:
                if node not in self._down:
                    self._blobs[node].pop(path, None)

    def list_files(self, prefix: str = "") -> list[DfsFileInfo]:
        with self._lock:
            return sorted(
                (info for path, info in self._meta.items() if path.startswith(prefix)),
                key=lambda info: info.path,
            )

    def total_bytes(self) -> int:
        """Physical bytes across all replicas (replication included)."""
        with self._lock:
            return sum(len(d) for node in self._blobs for d in node.values())
