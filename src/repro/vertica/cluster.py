"""The cluster facade: Vertica as a multi-node, columnar, MPP database.

:class:`VerticaCluster` ties together the catalog, per-node segments, the
SQL front end and executor, the internal DFS, and the ``R_Models`` catalog.
It is the single object users of :mod:`repro` hold onto for the database
side of the workflow.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.aqp.catalog import AqpCatalog
from repro.errors import CatalogError, NodeDownError, SqlAnalysisError
from repro.faults.plan import FaultPlan, InjectedFault
from repro.obs.trace import Tracer, add_to_current, max_to_current
from repro.storage.encoding import ColumnSchema, SqlType
from repro.vertica.catalog import Catalog
from repro.vertica.dfs import DistributedFileSystem
from repro.vertica.executor import QueryExecutor, ResultSet
from repro.vertica.models import R_MODELS_TABLE_NAME, RModelsCatalog
from repro.vertica.node import DatabaseNode, NodeResources
from repro.vertica.odbc import OdbcConnection
from repro.vertica.pipeline import (
    INFLIGHT_BATCHES_GAUGE,
    INFLIGHT_BYTES_GAUGE,
    PipelineConfig,
    batch_nbytes,
    rechunk,
)
from repro.vertica.segmentation import HashSegmentation, RoundRobinSegmentation, SegmentationScheme
from repro.vertica.sql.parser import parse
from repro.vertica.table import Table
from repro.vertica.telemetry import Telemetry
from repro.vertica.txn.mover import TupleMover, TupleMoverConfig
from repro.vertica.udtf import TransformFunction

__all__ = ["VerticaCluster"]


class VerticaCluster:
    """A simulated multi-node Vertica database."""

    def __init__(
        self,
        node_count: int = 4,
        data_dir: str | Path | None = None,
        codec: str = "zlib",
        node_resources: NodeResources | None = None,
        dfs_replication: int = 2,
        executor_threads: int | None = None,
        pipeline: PipelineConfig | None = None,
        mover: TupleMoverConfig | None = None,
    ) -> None:
        if node_count < 1:
            raise CatalogError("cluster requires at least one node")
        self.node_count = node_count
        self.codec = codec
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.nodes = [
            DatabaseNode(i, node_resources or NodeResources()) for i in range(node_count)
        ]
        self.catalog = Catalog()
        self.dfs = DistributedFileSystem(node_count, replication=dfs_replication)
        self.r_models = RModelsCatalog()
        self.aqp = AqpCatalog()
        self.telemetry = Telemetry()
        self.tracer = Tracer()
        self.faults: FaultPlan | None = None
        # Let the DFS report read-repairs through the cluster's telemetry
        # and tracer (it predates both in the constructor order).
        self.dfs.telemetry = self.telemetry
        self.dfs.tracer = self.tracer
        self.executor_threads = executor_threads or max(4, node_count)
        self.pipeline = pipeline or PipelineConfig()
        self.catalog.epochs.on_advance = (
            lambda delta: self.telemetry.gauge_add("current_epoch", delta))
        self.tuple_mover = TupleMover(self, mover)
        self._executor = QueryExecutor(self)
        self._lock = threading.Lock()
        self._prediction_functions_installed = False

    # -- DDL / data loading ----------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: list[ColumnSchema],
        segmentation: SegmentationScheme | None = None,
        k_safety: int = 0,
    ) -> Table:
        """Create a table; defaults to round-robin segmentation.

        ``k_safety=1`` adds buddy projections so scans survive a single
        node failure (Vertica's fault-tolerance guarantee the paper's DFS
        inherits).
        """
        if name.lower() == R_MODELS_TABLE_NAME:
            raise CatalogError(f"{name!r} is a reserved catalog table name")
        table = Table(
            name=name,
            schema=schema,
            segmentation=segmentation or RoundRobinSegmentation(),
            node_count=self.node_count,
            data_dir=(self.data_dir / name if self.data_dir else None),
            codec=self.codec,
            k_safety=k_safety,
        )
        # Enroll the table in the cluster's MVCC machinery: its inserts
        # stamp commit epochs from the shared clock, and its WOS feeds the
        # ``wos_rows`` gauge.
        table.epochs = self.catalog.epochs
        table.telemetry = self.telemetry
        self.catalog.add_table(table)
        return table

    def create_table_like(
        self, name: str, columns: dict[str, np.ndarray],
        segmentation: SegmentationScheme | None = None,
        k_safety: int = 0,
    ) -> Table:
        """Create a table whose schema is inferred from ``columns``."""
        schema = [
            ColumnSchema(col, SqlType.from_numpy(np.asarray(arr).dtype))
            for col, arr in columns.items()
        ]
        return self.create_table(name, schema, segmentation, k_safety=k_safety)

    def bulk_load(self, table_name: str, columns: dict[str, np.ndarray]) -> int:
        """COPY-style bulk insert of per-column arrays."""
        table = self.catalog.get_table(table_name)
        inserted = table.insert(columns)
        self.telemetry.add("rows_loaded", inserted)
        return inserted

    def load_dataframe_style(
        self, table_name: str, columns: dict[str, np.ndarray],
        segment_by: str | None = None,
    ) -> Table:
        """Create-and-load in one call (convenience used by examples)."""
        segmentation = HashSegmentation(segment_by) if segment_by else None
        table = self.create_table_like(table_name, columns, segmentation)
        self.bulk_load(table_name, columns)
        return table

    # -- query execution ---------------------------------------------------------

    @property
    def executor(self) -> QueryExecutor:
        """The statement executor (the serving layer fronts it directly)."""
        return self._executor

    def sql(self, query: str, user: str = "dbadmin") -> ResultSet:
        """Parse and execute one SQL statement.

        Every statement runs inside a ``query`` span (nested under the
        caller's active span when one exists — a VFT transfer, a DR task)
        and lands one ``query_seconds`` histogram sample.
        """
        start = time.perf_counter()
        with self.tracer.span(
            "query", statement=" ".join(query.split())[:200]
        ) as span:
            statement = parse(query)
            self.telemetry.add("queries_executed")
            result = self._executor.execute(statement, user=user)
            span.set(result_rows=len(result))
        self.telemetry.registry.histogram("query_seconds").observe(
            time.perf_counter() - start)
        return result

    def connect(self, user: str = "dbadmin") -> OdbcConnection:
        """Open an ODBC-style client connection."""
        return OdbcConnection(self, user=user)

    # -- UDTF registry --------------------------------------------------------------

    def register_udtf(self, udtf: TransformFunction, replace: bool = False) -> None:
        """Register a transform function for use in SQL."""
        self.catalog.register_udtf(udtf, replace=replace)

    def install_standard_functions(self) -> None:
        """Register the built-in prediction and transfer UDTFs.

        Imported lazily to avoid circular imports; idempotent and safe to
        call from concurrent transfers.
        """
        from repro.deploy.predict_functions import standard_prediction_functions
        from repro.transfer.vft import ExportToDistributedR

        with self._lock:
            if self._prediction_functions_installed:
                return
            for udtf in standard_prediction_functions():
                self.catalog.register_udtf(udtf, replace=True)
            self.catalog.register_udtf(ExportToDistributedR(), replace=True)
            self._prediction_functions_installed = True

    # -- MVCC conveniences ---------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        """The committed watermark new statements read at."""
        return self.catalog.epochs.current_epoch

    def advance_ahm(self, epoch: int | None = None) -> int:
        """Advance the Ancient History Mark (default: to the committed
        watermark), opening the history behind it up for mergeout purge;
        wakes the Tuple Mover so the purge actually happens."""
        ahm = self.catalog.epochs.advance_ahm(epoch)
        self.tuple_mover.notify()
        return ahm

    # -- node failure / failover --------------------------------------------------

    def install_fault_plan(self, plan: FaultPlan) -> None:
        """Arm a fault plan: injection sites in scans, the VFT sender, UDTF
        instances, the Tuple Mover, and the DFS consult it from now on."""
        plan.bind_cluster(self)
        with self._lock:
            self.faults = plan
        self.dfs.faults = plan

    def clear_fault_plan(self) -> None:
        with self._lock:
            self.faults = None
        self.dfs.faults = None

    def fail_node(self, node: int) -> None:
        """Take a database node down (its DFS replicas go with it)."""
        self.nodes[node].fail()
        self.dfs.fail_node(node)

    def recover_node(self, node: int) -> None:
        self.nodes[node].recover()
        self.dfs.recover_node(node)

    def _buddy_for(self, table: Table, node_index: int) -> int:
        """The live buddy node for a down node's segment, or a clean
        :class:`NodeDownError` — never a hang, never a partial result."""
        buddy = table.buddy_host(node_index)
        if buddy is None:
            raise NodeDownError(
                f"node {node_index} is down and table {table.name!r} has no "
                "buddy projections (create it with k_safety=1)"
            )
        if self.nodes[buddy].is_down:
            raise NodeDownError(
                f"node {node_index} and its buddy {buddy} are both down; "
                f"segment of {table.name!r} is unavailable"
            )
        return buddy

    def _record_failover(self, table: Table, node_index: int, buddy: int,
                         resumed_after: int = 0) -> None:
        self.telemetry.add("buddy_scans")
        self.telemetry.add("failovers")
        with self.tracer.span(
            "fault.recovered", mechanism="buddy_failover", table=table.name,
            node=node_index, buddy=buddy, resumed_after_batches=resumed_after,
        ):
            pass

    def scan_node_with_failover(
        self, table: Table, node_index: int, columns: list[str],
        include_rowid: bool = False, ranges: dict | None = None,
        snapshot=None,
    ) -> dict[str, np.ndarray]:
        """Scan a node's segment, falling over to its buddy replica when the
        node is down (requires the table to have ``k_safety=1``)."""
        prune_counter = lambda n: self.telemetry.add("rowgroups_pruned", n)
        if snapshot is None:
            snapshot = table.resolve_snapshot()
        node = self.nodes[node_index]
        if not node.is_down and self.faults is not None:
            try:
                self.faults.perturb("scan.node", table=table.name,
                                    node=node_index)
            except InjectedFault:
                if not node.is_down:
                    # Not a crash of this node (e.g. a plain error fault):
                    # there is nothing to fail over to, surface it.
                    raise
        if not node.is_down:
            node.acquire_scan_slot()
            try:
                return table.scan_node(node_index, columns,
                                       include_rowid=include_rowid,
                                       ranges=ranges,
                                       prune_counter=prune_counter,
                                       snapshot=snapshot)
            finally:
                node.release_scan_slot()
        buddy = self._buddy_for(table, node_index)
        self._record_failover(table, node_index, buddy)
        buddy_node = self.nodes[buddy]
        buddy_node.acquire_scan_slot()
        try:
            return table.scan_node_replica(node_index, columns,
                                           include_rowid=include_rowid,
                                           ranges=ranges,
                                           prune_counter=prune_counter,
                                           snapshot=snapshot)
        finally:
            buddy_node.release_scan_slot()

    # -- scan services used by the executor and transfers -----------------------------

    def table_columns(self, table_name: str) -> list[str]:
        if table_name.lower() == R_MODELS_TABLE_NAME:
            return list(RModelsCatalog.COLUMNS)
        return self.catalog.get_table(table_name).column_names

    def node_rowgroup_count(self, table_name: str, node: int) -> int:
        if table_name.lower() == R_MODELS_TABLE_NAME:
            return 1
        return self.catalog.get_table(table_name).segments[node].rowgroup_count

    def scan_table_per_node(
        self, table_name: str, columns_needed: set[str],
        ranges: dict | None = None, snapshot=None,
    ) -> list[dict[str, np.ndarray]]:
        """Scan each node's segment in parallel; returns one batch per node.

        Scans hold a per-node scan slot (the bounded resource ODBC storms
        contend on), skip row groups excluded by the ``ranges`` zone-map
        envelopes, and record telemetry.
        """
        if table_name.lower() == R_MODELS_TABLE_NAME:
            arrays = self.r_models.as_arrays()
            if columns_needed:
                unknown = columns_needed - set(arrays)
                if unknown:
                    raise SqlAnalysisError(
                        f"unknown columns {sorted(unknown)} in R_Models"
                    )
            return [arrays]

        table = self.catalog.get_table(table_name)
        if columns_needed:
            unknown = [c for c in columns_needed if not table.has_column(c)]
            if unknown:
                raise SqlAnalysisError(
                    f"unknown columns {unknown} in table {table_name!r}"
                )
            scan_columns = sorted(columns_needed)
        else:
            # No columns referenced (e.g. COUNT(*)): scan the cheapest column
            # just to establish row counts.
            scan_columns = [table.user_schema[0].name]

        # One snapshot for every node scan: the parallel workers all read
        # the same committed epoch, however long each takes.
        if snapshot is None:
            snapshot = table.resolve_snapshot()
        parent = self.tracer.current()

        def scan(node_index: int) -> dict[str, np.ndarray]:
            with self.tracer.span("scan.node", parent=parent,
                                  node=node_index) as span:
                batch = self.scan_node_with_failover(table, node_index,
                                                     scan_columns,
                                                     ranges=ranges,
                                                     snapshot=snapshot)
                rows = len(next(iter(batch.values()))) if batch else 0
                nbytes = batch_nbytes(batch)
                self.telemetry.add("rows_scanned", rows)
                self.telemetry.add("bytes_scanned", nbytes)
                self.telemetry.add("batches_scanned")
                self.telemetry.observe_max("peak_batch_bytes", nbytes)
                span.add(rows=rows, bytes=nbytes)
            return batch

        with ThreadPoolExecutor(max_workers=min(self.node_count, self.executor_threads)) as pool:
            batches = list(pool.map(scan, range(self.node_count)))
        # The whole-table materialization is the eager path's in-flight
        # footprint — recorded on the same gauge the streaming pipeline
        # charges per live batch, so the two modes are directly comparable.
        materialized = sum(batch_nbytes(b) for b in batches)
        self.telemetry.observe_max(
            f"{INFLIGHT_BYTES_GAUGE}_peak", materialized)
        self.telemetry.observe_max(
            f"{INFLIGHT_BATCHES_GAUGE}_peak", len(batches))
        max_to_current(peak_inflight_bytes=materialized)
        return batches

    def stream_node_with_failover(
        self, table: Table, node_index: int, columns: list[str],
        ranges: dict | None = None, snapshot=None,
    ):
        """Stream a node's segment rowgroup-wise, holding the node's scan
        slot for the duration of the stream; falls over to the buddy
        replica when the node is down (requires ``k_safety=1``).

        Failover also works *mid-stream*: if the node dies after N batches,
        the stream resumes from the buddy's replica at the same snapshot,
        skipping the N batches already delivered.  Replica segments store
        identical rowgroups, so the stitched stream is bit-identical to an
        uninterrupted primary scan.
        """
        prune_counter = lambda n: self.telemetry.add("rowgroups_pruned", n)
        if snapshot is None:
            snapshot = table.resolve_snapshot()
        node = self.nodes[node_index]
        delivered = 0
        if not node.is_down:
            node.acquire_scan_slot()
            died_mid_stream = False
            try:
                for batch in table.iter_node_batches(
                        node_index, columns, ranges=ranges,
                        prune_counter=prune_counter, snapshot=snapshot):
                    try:
                        if self.faults is not None:
                            self.faults.perturb("scan.stream", table=table.name,
                                                node=node_index, batch=delivered)
                    except InjectedFault:
                        if not node.is_down:
                            raise
                    if node.is_down:
                        # The node died under us (injected here or failed by
                        # another thread); stop reading its storage and
                        # resume from the buddy below.
                        died_mid_stream = True
                        break
                    yield batch
                    delivered += 1
            finally:
                node.release_scan_slot()
            if not died_mid_stream:
                return
        buddy = self._buddy_for(table, node_index)
        self._record_failover(table, node_index, buddy, resumed_after=delivered)
        buddy_node = self.nodes[buddy]
        buddy_node.acquire_scan_slot()
        try:
            for index, batch in enumerate(table.iter_node_batches(
                    node_index, columns, ranges=ranges,
                    prune_counter=prune_counter, replica=True,
                    snapshot=snapshot)):
                if index < delivered:
                    continue
                yield batch
        finally:
            buddy_node.release_scan_slot()

    def stream_table_per_node(
        self, table_name: str, columns_needed: set[str],
        ranges: dict | None = None, snapshot=None,
    ) -> list:
        """Per-node streaming scan sources for the pipeline executor.

        Returns one zero-argument callable per node; calling it opens a
        fresh iterator of rowgroup-granular batches (re-chunked to the
        pipeline's ``batch_rows``).  Each live batch is charged to the
        ``pipeline_inflight_bytes`` gauge from the moment it is decoded
        until the consumer pulls the next one, so peak in-flight memory is
        measured, not assumed.  Column validation happens here (eagerly),
        not when the stream is first pulled.
        """
        config = self.pipeline
        if table_name.lower() == R_MODELS_TABLE_NAME:
            arrays = self.r_models.as_arrays()
            if columns_needed:
                unknown = columns_needed - set(arrays)
                if unknown:
                    raise SqlAnalysisError(
                        f"unknown columns {sorted(unknown)} in R_Models"
                    )

            def models_source(arrays=arrays):
                yield arrays

            return [models_source]

        table = self.catalog.get_table(table_name)
        if columns_needed:
            unknown = [c for c in columns_needed if not table.has_column(c)]
            if unknown:
                raise SqlAnalysisError(
                    f"unknown columns {unknown} in table {table_name!r}"
                )
            scan_columns = sorted(columns_needed)
        else:
            # No columns referenced (e.g. COUNT(*)): scan the cheapest column
            # just to establish row counts.
            scan_columns = [table.user_schema[0].name]

        # Resolve the statement's snapshot now, not when the stream is
        # first pulled: all node sources must read the same epoch.
        if snapshot is None:
            snapshot = table.resolve_snapshot()

        def make_source(node_index: int):
            def source():
                raw = self.stream_node_with_failover(
                    table, node_index, scan_columns, ranges=ranges,
                    snapshot=snapshot)
                for batch in rechunk(raw, config.batch_rows):
                    rows = len(next(iter(batch.values()))) if batch else 0
                    nbytes = batch_nbytes(batch)
                    self.telemetry.add("batches_scanned")
                    self.telemetry.add("rows_scanned", rows)
                    self.telemetry.add("bytes_scanned", nbytes)
                    self.telemetry.add("rows_streamed", rows)
                    self.telemetry.observe_max("peak_batch_bytes", nbytes)
                    level = self.telemetry.gauge_add(INFLIGHT_BYTES_GAUGE,
                                                     nbytes)
                    self.telemetry.gauge_add(INFLIGHT_BATCHES_GAUGE, 1)
                    # The generator body runs in the consuming thread, so
                    # the ambient span here is that consumer's scan/producer
                    # span — rows and bytes land on the right tree node.
                    add_to_current(rows=rows, bytes=nbytes)
                    max_to_current(peak_inflight_bytes=level)
                    try:
                        yield batch
                    finally:
                        self.telemetry.gauge_add(INFLIGHT_BYTES_GAUGE, -nbytes)
                        self.telemetry.gauge_add(INFLIGHT_BATCHES_GAUGE, -1)
            return source

        return [make_source(node) for node in range(self.node_count)]

    def typed_empty_batch(self, table_name: str, columns: set[str] | list[str]
                          ) -> dict[str, np.ndarray]:
        """A zero-row batch carrying the table's declared column dtypes."""
        if table_name.lower() == R_MODELS_TABLE_NAME:
            arrays = self.r_models.as_arrays()
            return {name: arr[:0] for name, arr in arrays.items()
                    if not columns or name in columns}
        table = self.catalog.get_table(table_name)
        names = sorted(columns) if columns else [table.user_schema[0].name]
        return table.segments[0].typed_empty(names)

    # -- introspection ------------------------------------------------------------------

    def table_stats(self, table_name: str) -> dict:
        """Row counts and per-segment distribution for one table."""
        table = self.catalog.get_table(table_name)
        counts = table.segment_row_counts()
        return {
            "table": table.name,
            "rows": table.row_count,
            "segments": counts,
            "compressed_bytes": table.compressed_size,
            "segmentation": table.segmentation.describe(),
            "skew": (max(counts) / (sum(counts) / len(counts)))
            if table.row_count else 1.0,
        }
