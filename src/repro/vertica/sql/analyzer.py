"""Static semantic analysis for the SQL front-end.

This pass runs between :func:`repro.vertica.sql.parser.parse` and the
executor for *every* statement.  It performs the analyze half of the
analyze→plan split described for Vertica's optimizer pipeline:

* **name resolution** (``SA1xx``) — tables, columns, scalar functions,
  transform functions, and ``R_Models`` references are bound against the
  catalog before anything executes;
* **type checking** (``SA2xx``) — comparisons, arithmetic, aggregate
  argument types, UDTF parameter arity/types, ``PARTITION BY`` key
  validity, INSERT/UPDATE value compatibility;
* **scope checking** (``SA3xx``) — alias resolution, ambiguous columns in
  joins, aggregates mixed with non-grouped columns, structurally invalid
  clause combinations;
* **warnings** (``SA4xx``) — statically detectable smells that still
  execute (cartesian-style join conditions, predicates comparing values of
  incompatible encodings).

The result is a :class:`ResolvedQuery` — bound tables, column types, the
UDTF signature, and the column set each plan shape needs — which the
planner and executor consume instead of re-deriving names ad hoc.

Every diagnostic carries the source offset of the token that caused it
(threaded from the lexer through ``ast`` node positions), so errors point
at the query text instead of surfacing mid-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Protocol

from repro.errors import (
    SemanticError,
    SemanticParameterError,
    SemanticResolutionError,
    StorageError,
)
from repro.storage.encoding import SqlType
from repro.vertica import expressions
from repro.vertica.models import R_MODELS_COLUMN_TYPES, R_MODELS_TABLE_NAME
from repro.vertica.sql import ast
from repro.vertica.udtf import UdtfSignature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = [
    "Diagnostic",
    "ResolvedQuery",
    "BoundTable",
    "SchemaProvider",
    "ClusterProvider",
    "LenientProvider",
    "SA_CODES",
    "analyze",
    "check",
    "raise_for_diagnostics",
    "sa_codes_markdown_table",
]


# ---------------------------------------------------------------------------
# Diagnostic model
# ---------------------------------------------------------------------------

#: Every diagnostic code the analyzer can emit, with its meaning.  The docs
#: table in ``docs/sql_reference.md`` and the exhaustiveness check in
#: ``tests/test_sql_analyzer.py`` are both generated from this registry.
SA_CODES: dict[str, str] = {
    # -- SA1xx: name resolution -----------------------------------------
    "SA101": "unknown table in FROM / INSERT / UPDATE / DELETE / DROP",
    "SA102": "unknown column reference",
    "SA103": "unknown scalar function",
    "SA104": "unknown transform function (UDTF)",
    "SA105": "UDTF 'model' parameter names a model that is not deployed",
    "SA106": "unknown table qualifier (alias) on a column reference",
    "SA107": "R_Models is read-only: INSERT / UPDATE / DELETE rejected",
    "SA108": "R_Models cannot participate in joins",
    "SA109": "REFRESH MODEL names a model that is not deployed",
    "SA110": "DROP SAMPLE names a sample that is not registered",
    # -- SA2xx: type checking -------------------------------------------
    "SA201": "comparison / IN / LIKE over incomparable types",
    "SA202": "arithmetic or numeric function over a non-numeric operand",
    "SA203": "invalid aggregate argument (SUM/AVG over VARCHAR, DISTINCT MIN/MAX)",
    "SA204": "function called with the wrong number or type of arguments",
    "SA205": "missing or invalid USING PARAMETERS entry for a UDTF",
    "SA206": "PARTITION BY key is not a scalar expression",
    "SA207": "WHERE / HAVING predicate cannot be interpreted as a boolean",
    "SA208": "INSERT row arity does not match the table",
    "SA209": "INSERT value type does not match the column",
    "SA210": "unknown SQL type in CREATE TABLE",
    "SA211": "UPDATE assigns a value of an incompatible type",
    "SA212": "CREATE SAMPLE rate outside (0, 1]",
    "SA213": "WITHIN error bound or CONFIDENCE out of range",
    # -- SA3xx: scope checking ------------------------------------------
    "SA301": "ambiguous column reference (present on both join sides)",
    "SA302": "column must appear in GROUP BY or inside an aggregate",
    "SA303": "duplicate name in scope (join aliases, SET targets, column defs)",
    "SA304": "HAVING requires GROUP BY or aggregates",
    "SA305": "nested aggregates are not allowed",
    "SA306": "aggregate used in a clause that cannot evaluate it",
    "SA307": "UDTF call combined with unsupported clauses (join/GROUP/ORDER/LIMIT)",
    "SA308": "SELECT DISTINCT cannot combine with GROUP BY or aggregation",
    "SA309": "SELECT * cannot be combined with aggregation",
    "SA310": "SELECT without FROM is not supported",
    "SA311": "AT EPOCH requires a FROM over a regular table",
    "SA312": "WITHIN requires a single plain COUNT/SUM/AVG over one table",
    # -- SA4xx: warnings ------------------------------------------------
    "SA401": "join condition has no cross-table equality (cartesian-style)",
    "SA402": "predicate compares incompatible encodings (e.g. INTEGER vs fractional literal)",
}

#: Codes reported as warnings; everything else is an error.
WARNING_CODES = frozenset({"SA401", "SA402"})

#: Resolution failures about *missing catalog objects*: raised as
#: :class:`SemanticResolutionError` (a ``CatalogError``) for back-compat.
_CATALOG_CODES = frozenset({"SA101", "SA104", "SA105", "SA109", "SA110"})

#: UDTF calling-convention failures historically raised at execution time:
#: raised as :class:`SemanticParameterError` (an ``ExecutionError``).
_PARAMETER_CODES = frozenset({"SA204", "SA205"})


@dataclass(frozen=True)
class Diagnostic:
    """One analysis finding: a code, a message, and a source offset."""

    code: str
    message: str
    position: int | None = None
    severity: str = "error"  # "error" | "warning"

    def render(self) -> str:
        where = f" (at offset {self.position})" if self.position is not None else ""
        return f"{self.code} {self.severity}: {self.message}{where}"


class _OpenSchema(dict):
    """Marker mapping: the table is accepted but its columns are unknown.

    Returned by :class:`LenientProvider` so schema-less (lint) analysis can
    bind any table without emitting resolution diagnostics for its columns.
    """


#: Singleton open schema for lenient providers.
OPEN_SCHEMA: Mapping[str, SqlType] = _OpenSchema()


@dataclass(frozen=True)
class BoundTable:
    """One table bound during analysis (base table or the R_Models virtual)."""

    name: str
    alias: str
    columns: Mapping[str, SqlType]
    virtual: bool = False  # True for R_Models

    @property
    def open(self) -> bool:
        """True when the table's column set is unknown (lint mode)."""
        return isinstance(self.columns, _OpenSchema)


@dataclass
class ResolvedQuery:
    """The resolved, typed annotation of one analyzed statement.

    ``column_types`` maps every batch key the statement may evaluate
    (bare names; ``alias.name`` for joins) to its SQL type.
    ``columns_needed`` is the projection set the planner would otherwise
    re-derive; ``output_types`` maps select-item output names to inferred
    types (``None`` = statically unknown).  ``create_types`` carries the
    resolved column types of a ``CREATE TABLE`` so the executor does not
    re-parse type names.
    """

    statement: ast.Statement
    tables: list[BoundTable] = field(default_factory=list)
    column_types: dict[str, SqlType] = field(default_factory=dict)
    output_types: dict[str, SqlType | None] = field(default_factory=dict)
    columns_needed: set[str] = field(default_factory=set)
    udtf_signature: UdtfSignature | None = None
    create_types: list[SqlType] | None = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors


# ---------------------------------------------------------------------------
# Schema providers: what the analyzer binds names against
# ---------------------------------------------------------------------------


class SchemaProvider(Protocol):
    """Catalog facts the analyzer needs; ``None`` answers mean "unknown,
    skip the corresponding checks" so the same pass runs both against a
    live cluster and schema-less (lint mode)."""

    def table_types(self, name: str) -> Mapping[str, SqlType] | None:
        """Column name → type, or ``None`` when the table is unknown."""
        ...

    def udtf_signature(self, name: str) -> UdtfSignature | None:
        """Signature of a registered UDTF, ``None`` when unregistered."""
        ...

    def scalar_functions(self) -> frozenset[str] | None:
        """Registered scalar function names, ``None`` to skip the check."""
        ...

    def model_exists(self, name: str) -> bool | None:
        """Whether a model is deployed, ``None`` when undeterminable."""
        ...

    def sample_exists(self, name: str) -> bool | None:
        """Whether an AQP sample is registered, ``None`` when undeterminable."""
        ...


class ClusterProvider:
    """Bind against a live cluster's catalog, R_Models, and UDTF registry."""

    def __init__(self, cluster: "VerticaCluster") -> None:
        self._cluster = cluster

    def table_types(self, name: str) -> Mapping[str, SqlType] | None:
        if name.lower() == R_MODELS_TABLE_NAME:
            return R_MODELS_COLUMN_TYPES
        if not self._cluster.catalog.has_table(name):
            return None
        return self._cluster.catalog.table_types(name)

    def udtf_signature(self, name: str) -> UdtfSignature | None:
        if not self._cluster.catalog.has_udtf(name):
            return None
        return self._cluster.catalog.udtf_signature(name)

    def scalar_functions(self) -> frozenset[str] | None:
        return frozenset(expressions.scalar_function_names())

    def model_exists(self, name: str) -> bool | None:
        return self._cluster.r_models.exists(name)

    def sample_exists(self, name: str) -> bool | None:
        return self._cluster.aqp.exists(name)


class LenientProvider:
    """Schema-less provider for lint mode: every name resolves, every
    signature is permissive, so only structural/scope rules fire."""

    def table_types(self, name: str) -> Mapping[str, SqlType] | None:
        if name.lower() == R_MODELS_TABLE_NAME:
            return R_MODELS_COLUMN_TYPES
        return OPEN_SCHEMA

    def udtf_signature(self, name: str) -> UdtfSignature | None:
        return UdtfSignature()

    def scalar_functions(self) -> frozenset[str] | None:
        return None

    def model_exists(self, name: str) -> bool | None:
        return None

    def sample_exists(self, name: str) -> bool | None:
        return None


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze(
    stmt: ast.Statement,
    provider: SchemaProvider,
    *,
    execution: bool = True,
) -> ResolvedQuery:
    """Analyze one parsed statement; never raises, collects diagnostics.

    ``execution=False`` (EXPLAIN) skips checks that only matter when the
    query will actually run — currently model existence (``SA105``), so a
    plan can be explained for a model that is not deployed yet.
    """
    return _Analyzer(provider, execution=execution).run(stmt)


def check(
    stmt: ast.Statement,
    provider: SchemaProvider,
    *,
    execution: bool = True,
) -> ResolvedQuery:
    """Analyze and raise a typed :class:`SemanticError` on the first error."""
    resolved = analyze(stmt, provider, execution=execution)
    raise_for_diagnostics(resolved)
    return resolved


def raise_for_diagnostics(resolved: ResolvedQuery) -> None:
    """Raise the typed error matching ``resolved``'s first error diagnostic.

    Resolution failures about missing catalog objects raise
    :class:`SemanticResolutionError` (also a ``CatalogError``); UDTF
    calling-convention failures raise :class:`SemanticParameterError` (also
    an ``ExecutionError``); everything else raises :class:`SemanticError`.
    All three are ``SqlAnalysisError`` subclasses.
    """
    errors = resolved.errors
    if not errors:
        return
    first = errors[0]
    if first.code in _CATALOG_CODES:
        cls: type[SemanticError] = SemanticResolutionError
    elif first.code in _PARAMETER_CODES:
        cls = SemanticParameterError
    else:
        cls = SemanticError
    raise cls(
        f"{first.code}: {first.message}",
        diagnostics=tuple(resolved.diagnostics),
        position=first.position,
    )


def sa_codes_markdown_table() -> str:
    """Markdown table of every diagnostic code (embedded in the docs)."""
    lines = ["| Code | Severity | Meaning |", "| --- | --- | --- |"]
    for code in sorted(SA_CODES):
        severity = "warning" if code in WARNING_CODES else "error"
        lines.append(f"| `{code}` | {severity} | {SA_CODES[code]} |")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The analysis pass
# ---------------------------------------------------------------------------

_NUMERIC_TYPES = frozenset({SqlType.INTEGER, SqlType.FLOAT, SqlType.BOOLEAN})

#: Built-in scalar function arities: name -> (min_args, max_args or None).
_SCALAR_ARITY: dict[str, tuple[int, int | None]] = {
    "abs": (1, 1), "sqrt": (1, 1), "exp": (1, 1), "ln": (1, 1),
    "log": (1, 1), "floor": (1, 1), "ceil": (1, 1), "ceiling": (1, 1),
    "sign": (1, 1), "power": (2, 2), "mod": (2, 2), "round": (1, 2),
    "is_null": (1, 1), "coalesce": (1, None), "least": (1, None),
    "greatest": (1, None), "upper": (1, 1), "lower": (1, 1), "length": (1, 1),
}

#: Built-in scalar functions that coerce their arguments to float64 —
#: a VARCHAR argument fails at runtime, so it is a static type error.
_NUMERIC_FUNCTIONS = frozenset({
    "sqrt", "exp", "ln", "log", "floor", "ceil", "ceiling", "sign",
    "power", "mod", "round",
})

#: Built-in scalar function result types (None = follows the argument).
_FUNCTION_RESULTS: dict[str, SqlType | None] = {
    "sqrt": SqlType.FLOAT, "exp": SqlType.FLOAT, "ln": SqlType.FLOAT,
    "log": SqlType.FLOAT, "floor": SqlType.FLOAT, "ceil": SqlType.FLOAT,
    "ceiling": SqlType.FLOAT, "sign": SqlType.FLOAT, "power": SqlType.FLOAT,
    "round": SqlType.FLOAT, "is_null": SqlType.BOOLEAN,
    "upper": SqlType.VARCHAR, "lower": SqlType.VARCHAR,
    "length": SqlType.INTEGER,
    "abs": None, "mod": None, "coalesce": None, "least": None,
    "greatest": None,
}


class _Scope:
    """Name → type bindings for one statement's FROM clause."""

    def __init__(self, tables: list[BoundTable], joined: bool) -> None:
        self.tables = tables
        self.joined = joined
        self.open = any(bound.open for bound in tables)
        self.types: dict[str, SqlType] = {}
        self.ambiguous: set[str] = set()
        if joined:
            counts: dict[str, int] = {}
            for bound in tables:
                for name, sql_type in bound.columns.items():
                    self.types[f"{bound.alias}.{name}"] = sql_type
                    counts[name] = counts.get(name, 0) + 1
                    self.types.setdefault(name, sql_type)
            self.ambiguous = {name for name, n in counts.items() if n > 1}
            for name in self.ambiguous:
                self.types.pop(name, None)
        else:
            for bound in tables:
                self.types.update(bound.columns)

    @property
    def aliases(self) -> list[str]:
        return [bound.alias for bound in self.tables]

    def side_for(self, qualifier: str) -> BoundTable | None:
        for bound in self.tables:
            if bound.alias == qualifier:
                return bound
        return None


class _Analyzer:
    def __init__(self, provider: SchemaProvider, execution: bool = True) -> None:
        self.provider = provider
        self.execution = execution
        self.out: list[Diagnostic] = []

    # -- diagnostics plumbing ---------------------------------------------

    def emit(self, code: str, message: str, position: int | None) -> None:
        severity = "warning" if code in WARNING_CODES else "error"
        self.out.append(Diagnostic(code, message, position, severity))

    # -- statement dispatch -----------------------------------------------

    def run(self, stmt: ast.Statement) -> ResolvedQuery:
        if isinstance(stmt, (ast.Explain, ast.Profile)):
            # EXPLAIN never executes: relax execution-only checks.
            if isinstance(stmt, ast.Explain):
                self.execution = False
            inner = self.run(stmt.query)
            inner.statement = stmt
            return inner
        resolved = ResolvedQuery(statement=stmt, diagnostics=self.out)
        if isinstance(stmt, ast.Select):
            self._select(stmt, resolved)
        elif isinstance(stmt, ast.CreateTable):
            self._create_table(stmt, resolved)
        elif isinstance(stmt, ast.Insert):
            self._insert(stmt, resolved)
        elif isinstance(stmt, ast.Delete):
            self._delete(stmt, resolved)
        elif isinstance(stmt, ast.Update):
            self._update(stmt, resolved)
        elif isinstance(stmt, ast.DropTable):
            self._drop_table(stmt, resolved)
        elif isinstance(stmt, ast.RefreshModel):
            self._refresh_model(stmt, resolved)
        elif isinstance(stmt, ast.CreateSample):
            self._create_sample(stmt, resolved)
        elif isinstance(stmt, ast.DropSample):
            self._drop_sample(stmt)
        # ShowSamples carries no names to resolve.
        return resolved

    # -- table binding -----------------------------------------------------

    def _bind_table(self, name: str, alias: str | None,
                    position: int | None) -> BoundTable | None:
        columns = self.provider.table_types(name)
        if columns is None:
            self.emit("SA101", f"table {name!r} does not exist", position)
            return None
        return BoundTable(
            name=name,
            alias=alias or name,
            columns=columns,
            virtual=name.lower() == R_MODELS_TABLE_NAME,
        )

    # -- SELECT ------------------------------------------------------------

    def _select(self, stmt: ast.Select, resolved: ResolvedQuery) -> None:
        if stmt.table is None:
            if stmt.at_epoch is not None:
                self.emit("SA311",
                          "AT EPOCH requires a FROM over a regular table", None)
            else:
                self.emit("SA310", "SELECT without FROM is not supported", None)
            return

        if stmt.within_error is not None:
            self._check_within(stmt)

        left = self._bind_table(stmt.table, stmt.table_alias, stmt.table_position)
        right: BoundTable | None = None
        if stmt.join is not None:
            if (left is not None and left.virtual) or \
                    stmt.join.table.lower() == R_MODELS_TABLE_NAME:
                self.emit("SA108", "R_Models cannot participate in joins",
                          stmt.join.table_position)
                return
            right = self._bind_table(stmt.join.table, stmt.join.alias,
                                     stmt.join.table_position)
            if left is not None and right is not None and left.alias == right.alias:
                self.emit(
                    "SA303",
                    f"both join inputs are named {left.alias!r}; use distinct aliases",
                    stmt.join.table_position,
                )
                return
        if left is None or (stmt.join is not None and right is None):
            return  # unknown table: suppress cascading column diagnostics

        if left.virtual and stmt.at_epoch is not None:
            self.emit("SA311",
                      "AT EPOCH requires a FROM over a regular table", None)

        joined = stmt.join is not None
        tables = [left] + ([right] if right is not None else [])
        scope = _Scope(tables, joined)
        resolved.tables = tables
        resolved.column_types = dict(scope.types)

        if stmt.udtf is not None:
            self._udtf_select(stmt, scope, resolved)
            return

        # Alias substitution for GROUP BY / HAVING / ORDER BY, mirroring the
        # executor: a real table column of the same name wins over an alias.
        alias_map = {
            item.alias: item.expr for item in stmt.items if item.alias is not None
        }
        real_columns = set()
        for bound in tables:
            real_columns |= set(bound.columns)
        group_by = [self._substitute(e, alias_map, real_columns)
                    for e in stmt.group_by]
        having = (None if stmt.having is None
                  else self._substitute(stmt.having, alias_map, real_columns))
        order_exprs = [self._substitute(o.expr, alias_map, real_columns)
                       for o in stmt.order_by]

        aggregates = self._collect_aggregates(stmt.items, having)
        grouped = bool(aggregates) or bool(group_by)

        if grouped:
            if stmt.select_star:
                self.emit("SA309",
                          "SELECT * cannot be combined with aggregation", None)
            if stmt.distinct:
                self.emit("SA308",
                          "SELECT DISTINCT cannot combine with GROUP BY", None)
        elif stmt.having is not None:
            self.emit("SA304", "HAVING requires GROUP BY or aggregates", None)

        # Resolve and type-check every clause.
        for item in stmt.items:
            item_type = self._infer(item.expr, scope, aggregates_ok=True)
            resolved.output_types[item.output_name] = item_type
        if stmt.where is not None:
            self._check_predicate(stmt.where, scope, "WHERE")
        for expr in group_by:
            self._forbid_aggregates(expr, "GROUP BY")
            self._infer(expr, scope, aggregates_ok=False, report_aggregates=False)
        if having is not None:
            self._check_predicate(having, scope, "HAVING", aggregates_ok=True)
        for expr in order_exprs:
            self._infer(expr, scope, aggregates_ok=True)

        if grouped:
            allowed = set(aggregates)
            for expr in order_exprs:
                for node in expr.walk():
                    if isinstance(node, ast.AggregateCall) and node not in allowed:
                        self.emit(
                            "SA306",
                            f"aggregate {node} in ORDER BY must also appear in "
                            "the select list or HAVING",
                            node.position,
                        )
            group_set = list(group_by)
            for expr in [item.expr for item in stmt.items] + order_exprs \
                    + ([having] if having is not None else []):
                self._check_grouped(expr, group_set)
        else:
            for expr in order_exprs:
                self._forbid_aggregates(expr, "ORDER BY")

        if joined and stmt.join is not None:
            self._check_join_condition(stmt.join, scope)

        resolved.columns_needed = self._columns_needed(
            stmt, group_by, having, order_exprs)

    def _udtf_select(self, stmt: ast.Select, scope: _Scope,
                     resolved: ResolvedQuery) -> None:
        udtf = stmt.udtf
        assert udtf is not None
        if stmt.join is not None:
            self.emit("SA307", "UDTF calls over joins are not supported",
                      udtf.position)
            return
        if stmt.group_by or stmt.having or stmt.order_by or stmt.limit is not None:
            self.emit(
                "SA307",
                "UDTF queries do not support GROUP BY / HAVING / ORDER BY / LIMIT",
                udtf.position,
            )
        signature = self.provider.udtf_signature(udtf.name)
        if signature is None:
            self.emit("SA104",
                      f"transform function {udtf.name!r} is not registered",
                      udtf.position)
        else:
            resolved.udtf_signature = signature
            self._check_udtf_signature(udtf, signature, scope)
        for arg in udtf.args:
            self._infer(arg, scope, aggregates_ok=False)
        if udtf.partition.expr is not None:
            self._forbid_aggregates(udtf.partition.expr, "PARTITION BY",
                                    code="SA206")
            self._infer(udtf.partition.expr, scope, aggregates_ok=False,
                        report_aggregates=False)
        if stmt.where is not None:
            self._check_predicate(stmt.where, scope, "WHERE")
        resolved.columns_needed = self._columns_needed(stmt, [], None, [])

    def _check_udtf_signature(self, udtf: ast.UdtfCall,
                              signature: UdtfSignature, scope: _Scope) -> None:
        count = len(udtf.args)
        if count < signature.min_args:
            noun = "argument" if signature.min_args == 1 else "arguments"
            self.emit(
                "SA204",
                f"{udtf.name} requires at least {signature.min_args} {noun}, "
                f"got {count}",
                udtf.position,
            )
        if signature.max_args is not None and count > signature.max_args:
            self.emit(
                "SA204",
                f"{udtf.name} accepts at most {signature.max_args} arguments, "
                f"got {count}",
                udtf.position,
            )
        if signature.numeric_args:
            for arg in udtf.args:
                arg_type = self._infer(arg, scope, aggregates_ok=False,
                                       report=False)
                if arg_type is SqlType.VARCHAR:
                    self.emit(
                        "SA204",
                        f"{udtf.name} requires numeric arguments; "
                        f"{arg} is VARCHAR",
                        arg.position,
                    )
        for required in sorted(signature.required_parameters):
            if required not in udtf.parameters:
                self.emit(
                    "SA205",
                    f"{udtf.name} requires a {required!r} parameter"
                    + (" naming a deployed model"
                       if required == signature.model_parameter else ""),
                    udtf.position,
                )
        if signature.known_parameters is not None:
            for name in udtf.parameters:
                if name not in signature.known_parameters:
                    self.emit(
                        "SA205",
                        f"{udtf.name} does not accept a parameter {name!r} "
                        f"(known: {sorted(signature.known_parameters)})",
                        udtf.position,
                    )
        if signature.model_parameter is not None and self.execution:
            model = udtf.parameters.get(signature.model_parameter)
            if isinstance(model, str) and model:
                exists = self.provider.model_exists(model)
                if exists is False:
                    self.emit("SA105", f"model {model!r} does not exist",
                              udtf.position)

    # -- mutations and DDL -------------------------------------------------

    def _mutation_table(self, name: str, position: int | None,
                        verb: str) -> BoundTable | None:
        if name.lower() == R_MODELS_TABLE_NAME:
            self.emit(
                "SA107",
                "R_Models is maintained through deploy.model / drop_model, "
                f"not {verb}",
                position,
            )
            return None
        return self._bind_table(name, None, position)

    def _create_table(self, stmt: ast.CreateTable,
                      resolved: ResolvedQuery) -> None:
        if stmt.name.lower() == R_MODELS_TABLE_NAME:
            self.emit("SA107",
                      f"table name {stmt.name!r} is reserved for the model catalog",
                      stmt.name_position)
            return
        seen: set[str] = set()
        types: list[SqlType] = []
        for column in stmt.columns:
            key = column.name.lower()
            if key in seen:
                self.emit("SA303",
                          f"duplicate column {column.name!r} in CREATE TABLE",
                          column.position)
            seen.add(key)
            try:
                types.append(SqlType.from_sql_name(column.type_name))
            except StorageError:
                self.emit("SA210",
                          f"unknown SQL type: {column.type_name!r}",
                          column.type_position)
        if stmt.segmentation is not None and stmt.segmentation.column is not None:
            if stmt.segmentation.column.lower() not in seen:
                self.emit(
                    "SA102",
                    f"segmentation column {stmt.segmentation.column!r} is not "
                    "a declared column",
                    stmt.segmentation_position,
                )
        if len(types) == len(stmt.columns):
            resolved.create_types = types

    def _insert(self, stmt: ast.Insert, resolved: ResolvedQuery) -> None:
        bound = self._mutation_table(stmt.table, stmt.table_position, "INSERT")
        if bound is None:
            return
        resolved.tables = [bound]
        resolved.column_types = dict(bound.columns)
        if bound.open:
            return  # schema unknown: arity/type checks need a live catalog
        width = len(bound.columns)
        column_items = list(bound.columns.items())
        for index, row in enumerate(stmt.rows):
            position = (stmt.row_positions[index]
                        if index < len(stmt.row_positions) else None)
            if len(row) != width:
                self.emit(
                    "SA208",
                    f"INSERT row {index + 1} has {len(row)} values; "
                    f"table {stmt.table!r} has {width} columns",
                    position,
                )
                continue
            for (name, sql_type), value in zip(column_items, row):
                if not _literal_assignable(value, sql_type):
                    self.emit(
                        "SA209",
                        f"INSERT value {value!r} is not assignable to "
                        f"{sql_type.value.upper()} column {name!r}",
                        position,
                    )

    def _delete(self, stmt: ast.Delete, resolved: ResolvedQuery) -> None:
        bound = self._mutation_table(stmt.table, stmt.table_position,
                                     "DELETE/UPDATE")
        if bound is None:
            return
        resolved.tables = [bound]
        resolved.column_types = dict(bound.columns)
        scope = _Scope([bound], joined=False)
        if stmt.where is not None:
            self._check_predicate(stmt.where, scope, "WHERE")
            resolved.columns_needed = expressions.columns_referenced(stmt.where)

    def _update(self, stmt: ast.Update, resolved: ResolvedQuery) -> None:
        bound = self._mutation_table(stmt.table, stmt.table_position,
                                     "DELETE/UPDATE")
        if bound is None:
            return
        resolved.tables = [bound]
        resolved.column_types = dict(bound.columns)
        scope = _Scope([bound], joined=False)
        seen: set[str] = set()
        for index, (column, expr) in enumerate(stmt.assignments):
            position = (stmt.assignment_positions[index]
                        if index < len(stmt.assignment_positions) else None)
            if column in seen:
                self.emit("SA303",
                          f"UPDATE sets a column twice: {column!r}", position)
            seen.add(column)
            target_type = bound.columns.get(column)
            if target_type is None and not bound.open:
                self.emit("SA102",
                          f"table {stmt.table!r} has no column {column!r}",
                          position)
            self._forbid_aggregates(expr, "SET")
            value_type = self._infer(expr, scope, aggregates_ok=False,
                                     report_aggregates=False)
            if target_type is not None and value_type is not None and \
                    not _types_assignable(value_type, target_type):
                self.emit(
                    "SA211",
                    f"cannot assign {value_type.value.upper()} to "
                    f"{target_type.value.upper()} column {column!r}",
                    expr.position if expr.position is not None else position,
                )
        if stmt.where is not None:
            self._check_predicate(stmt.where, scope, "WHERE")

    def _drop_table(self, stmt: ast.DropTable, resolved: ResolvedQuery) -> None:
        if stmt.name.lower() == R_MODELS_TABLE_NAME:
            self.emit("SA107", "R_Models cannot be dropped", stmt.name_position)
            return
        if stmt.if_exists:
            return
        if self.provider.table_types(stmt.name) is None:
            self.emit("SA101", f"table {stmt.name!r} does not exist",
                      stmt.name_position)

    def _refresh_model(self, stmt: ast.RefreshModel,
                       resolved: ResolvedQuery) -> None:
        # Existence is an execution-time concern (like SA105): schema-less
        # lint providers return None and the check is skipped.
        if not self.execution:
            return
        if self.provider.model_exists(stmt.name) is False:
            self.emit("SA109", f"model {stmt.name!r} is not deployed",
                      stmt.name_position)

    # -- AQP statements ----------------------------------------------------

    def _create_sample(self, stmt: ast.CreateSample,
                       resolved: ResolvedQuery) -> None:
        bound = self._mutation_table(stmt.table, stmt.table_position,
                                     "CREATE SAMPLE")
        if bound is None:
            return
        resolved.tables = [bound]
        resolved.column_types = dict(bound.columns)
        if not 0.0 < stmt.rate <= 1.0:
            self.emit(
                "SA212",
                f"sample rate must be in (0, 1]; got {stmt.rate!r} "
                "(write RATE 1% or RATE 0.01)",
                stmt.rate_position,
            )
        if stmt.strata_column is not None and not bound.open \
                and stmt.strata_column not in bound.columns:
            self.emit(
                "SA102",
                f"table {stmt.table!r} has no column {stmt.strata_column!r}",
                stmt.strata_position,
            )

    def _drop_sample(self, stmt: ast.DropSample) -> None:
        # Mirrors SA109: registration is an execution-time concern, skipped
        # by EXPLAIN and by schema-less (None-returning) providers.
        if stmt.if_exists or not self.execution:
            return
        if self._sample_exists(stmt.name) is False:
            self.emit("SA110", f"sample {stmt.name!r} is not registered",
                      stmt.name_position)

    def _sample_exists(self, name: str) -> bool | None:
        # Defensive probe: third-party providers written before samples
        # existed satisfy the old Protocol and must keep working.
        probe = getattr(self.provider, "sample_exists", None)
        if probe is None:
            return None
        result: bool | None = probe(name)
        return result

    def _check_within(self, stmt: ast.Select) -> None:
        """Shape and range checks for ``WITHIN n% ERROR [CONFIDENCE c]``.

        The rewriter scales exactly one plain COUNT/SUM/AVG over a single
        table; anything else cannot be estimated from a Bernoulli sample,
        so the clause is rejected statically instead of silently running
        exact forever.
        """
        assert stmt.within_error is not None
        if not 0.0 < stmt.within_error <= 1.0:
            self.emit(
                "SA213",
                f"WITHIN error bound must be in (0, 1]; got "
                f"{stmt.within_error!r} (write WITHIN 2% ERROR)",
                stmt.within_position,
            )
        if stmt.confidence is not None and not 0.0 < stmt.confidence < 1.0:
            self.emit(
                "SA213",
                f"CONFIDENCE must be in (0, 1); got {stmt.confidence!r}",
                stmt.within_position,
            )
        unsupported = []
        if stmt.join is not None:
            unsupported.append("joins")
        if stmt.udtf is not None:
            unsupported.append("UDTF calls")
        if stmt.group_by:
            unsupported.append("GROUP BY")
        if stmt.having is not None:
            unsupported.append("HAVING")
        if stmt.distinct:
            unsupported.append("DISTINCT")
        if stmt.at_epoch is not None:
            unsupported.append("AT EPOCH")
        if unsupported:
            self.emit(
                "SA312",
                "WITHIN cannot combine with " + " / ".join(unsupported),
                stmt.within_position,
            )
            return
        call = stmt.items[0].expr if len(stmt.items) == 1 else None
        if isinstance(call, ast.AggregateCall) and \
                call.name in ("COUNT", "SUM", "AVG") and not call.distinct:
            return
        self.emit(
            "SA312",
            "WITHIN requires exactly one plain COUNT / SUM / AVG "
            "aggregate in the select list",
            call.position if isinstance(call, ast.AggregateCall)
            else stmt.within_position,
        )

    # -- join condition ----------------------------------------------------

    def _check_join_condition(self, join: ast.JoinClause, scope: _Scope) -> None:
        """Warn (SA401) when no conjunct is a cross-table equality — the
        runtime hash join requires one, so this is a cartesian-style smell
        caught before any scan starts."""
        if scope.open:
            return  # bare names cannot be side-classified without schemas
        left_alias, right_alias = scope.aliases[0], scope.aliases[-1]

        def side_of(expr: ast.Expr) -> str | None:
            refs = [n for n in expr.walk() if isinstance(n, ast.ColumnRef)]
            if not refs:
                return None
            sides = set()
            for ref in refs:
                if ref.qualifier == left_alias:
                    sides.add("left")
                elif ref.qualifier == right_alias:
                    sides.add("right")
                elif ref.qualifier is None:
                    bound = scope.tables[0]
                    other = scope.tables[-1]
                    if ref.name in bound.columns and ref.name not in other.columns:
                        sides.add("left")
                    elif ref.name in other.columns and ref.name not in bound.columns:
                        sides.add("right")
                    else:
                        return None
                else:
                    return None
            return sides.pop() if len(sides) == 1 else None

        conjuncts: list[ast.Expr] = []

        def split(expr: ast.Expr) -> None:
            if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
                split(expr.left)
                split(expr.right)
            else:
                conjuncts.append(expr)

        split(join.condition)
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
                sides = {side_of(conjunct.left), side_of(conjunct.right)}
                if sides == {"left", "right"}:
                    return
        self.emit(
            "SA401",
            "join condition has no cross-table equality; the hash join "
            "will reject it (cartesian-style condition)",
            join.condition.position,
        )

    # -- scope helpers -----------------------------------------------------

    def _substitute(self, expr: ast.Expr, alias_map: Mapping[str, ast.Expr],
                    real_columns: set[str]) -> ast.Expr:
        """Mirror the executor's alias resolution for GROUP/HAVING/ORDER."""
        if not alias_map:
            return expr
        if isinstance(expr, ast.ColumnRef):
            if (expr.qualifier is None and expr.name in alias_map
                    and expr.name not in real_columns):
                return alias_map[expr.name]
            return expr
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self._substitute(expr.left, alias_map, real_columns),
                self._substitute(expr.right, alias_map, real_columns),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(
                expr.op, self._substitute(expr.operand, alias_map, real_columns))
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(expr.name, tuple(
                self._substitute(a, alias_map, real_columns) for a in expr.args))
        if isinstance(expr, ast.AggregateCall):
            arg = (None if expr.arg is None
                   else self._substitute(expr.arg, alias_map, real_columns))
            return ast.AggregateCall(expr.name, arg, expr.distinct)
        return expr

    def _collect_aggregates(
        self, items: Iterable[ast.SelectItem], having: ast.Expr | None,
    ) -> list[ast.AggregateCall]:
        seen: dict[ast.AggregateCall, None] = {}
        sources = [item.expr for item in items]
        if having is not None:
            sources.append(having)
        for expr in sources:
            for node in expr.walk():
                if isinstance(node, ast.AggregateCall):
                    nested = node.arg is not None and any(
                        isinstance(d, ast.AggregateCall)
                        for d in node.arg.walk()
                    )
                    if nested:
                        self.emit("SA305", "nested aggregates are not allowed",
                                  node.position)
                    seen.setdefault(node)
        return list(seen)

    def _forbid_aggregates(self, expr: ast.Expr, clause: str,
                           code: str = "SA306") -> None:
        for node in expr.walk():
            if isinstance(node, ast.AggregateCall):
                self.emit(
                    code,
                    f"aggregate {node} cannot be used in {clause}",
                    node.position,
                )
                return

    def _check_grouped(self, expr: ast.Expr, group_by: list[ast.Expr]) -> None:
        """Every column outside an aggregate must match a GROUP BY expression
        (the executor's rewrite rule, checked statically)."""
        if any(expr == g for g in group_by):
            return
        if isinstance(expr, ast.AggregateCall):
            return
        if isinstance(expr, ast.ColumnRef):
            self.emit(
                "SA302",
                f"column {expr.key!r} must appear in GROUP BY or inside "
                "an aggregate",
                expr.position,
            )
            return
        for child in expr.children():
            self._check_grouped(child, group_by)

    # -- predicates --------------------------------------------------------

    def _check_predicate(self, expr: ast.Expr, scope: _Scope, clause: str,
                         aggregates_ok: bool = False) -> None:
        if not aggregates_ok:
            self._forbid_aggregates(expr, clause)
        predicate_type = self._infer(expr, scope, aggregates_ok=aggregates_ok,
                                     report_aggregates=False)
        if predicate_type is SqlType.VARCHAR:
            self.emit(
                "SA207",
                f"{clause} predicate is VARCHAR-typed and cannot be "
                "interpreted as a boolean",
                expr.position,
            )

    # -- type inference ----------------------------------------------------

    def _resolve_column(self, ref: ast.ColumnRef, scope: _Scope,
                        report: bool = True) -> SqlType | None:
        if scope.joined:
            left, right = scope.tables[0], scope.tables[-1]
            if ref.qualifier is not None:
                bound = scope.side_for(ref.qualifier)
                if bound is None:
                    if report:
                        self.emit(
                            "SA106",
                            f"unknown table qualifier {ref.qualifier!r} "
                            f"(inputs: {left.alias!r}, {right.alias!r})",
                            ref.position,
                        )
                    return None
                if ref.name not in bound.columns:
                    if report and not bound.open:
                        self.emit(
                            "SA102",
                            f"{bound.alias!r} has no column {ref.name!r}",
                            ref.position,
                        )
                    return None
                return bound.columns[ref.name]
            if ref.name in scope.ambiguous:
                if report:
                    self.emit(
                        "SA301",
                        f"column {ref.name!r} is ambiguous; qualify it with "
                        f"{left.alias!r} or {right.alias!r}",
                        ref.position,
                    )
                return None
            if ref.name not in scope.types:
                if report and not scope.open:
                    self.emit(
                        "SA102",
                        f"unknown column {ref.name!r} in join query",
                        ref.position,
                    )
                return None
            return scope.types[ref.name]
        # Single table: batches are keyed by bare column names only, so a
        # qualified reference cannot resolve at runtime either.
        if ref.qualifier is not None:
            if report and not scope.open:
                self.emit(
                    "SA102",
                    f"unknown column {ref.key!r} (qualified references "
                    "require a join)",
                    ref.position,
                )
            return None
        if ref.name not in scope.types:
            if report and not scope.open:
                known = sorted(scope.types)
                self.emit(
                    "SA102",
                    f"unknown column {ref.key!r}; available: {known}",
                    ref.position,
                )
            return None
        return scope.types[ref.name]

    def _infer(self, expr: ast.Expr, scope: _Scope, *,
               aggregates_ok: bool, report: bool = True,
               report_aggregates: bool = True) -> SqlType | None:
        """Infer the SQL type of ``expr`` (None = statically unknown),
        emitting resolution and type diagnostics along the way."""
        if isinstance(expr, ast.Literal):
            return _literal_type(expr.value)
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr, scope, report=report)
        if isinstance(expr, ast.Star):
            return None
        if isinstance(expr, ast.UnaryOp):
            operand = self._infer(expr.operand, scope,
                                  aggregates_ok=aggregates_ok, report=report,
                                  report_aggregates=report_aggregates)
            if expr.op == "NOT":
                return SqlType.BOOLEAN
            if operand is SqlType.VARCHAR:
                if report:
                    self.emit(
                        "SA202",
                        f"unary {expr.op!r} requires a numeric operand; "
                        f"{expr.operand} is VARCHAR",
                        expr.position,
                    )
                return None
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, scope, aggregates_ok=aggregates_ok,
                                      report=report,
                                      report_aggregates=report_aggregates)
        if isinstance(expr, ast.FunctionCall):
            return self._infer_function(expr, scope, aggregates_ok=aggregates_ok,
                                        report=report,
                                        report_aggregates=report_aggregates)
        if isinstance(expr, ast.AggregateCall):
            if not aggregates_ok and report_aggregates:
                self.emit(
                    "SA306",
                    f"aggregate {expr} cannot be used here",
                    expr.position,
                )
            return self._infer_aggregate(expr, scope, report=report)
        if isinstance(expr, ast.InList):
            operand = self._infer(expr.operand, scope,
                                  aggregates_ok=aggregates_ok, report=report,
                                  report_aggregates=report_aggregates)
            if operand is not None and report:
                for value in expr.values:
                    value_type = _literal_type(value)
                    if value_type is not None and \
                            not _types_comparable(operand, value_type):
                        self.emit(
                            "SA201",
                            f"IN list value {value!r} is not comparable with "
                            f"{operand.value.upper()} operand {expr.operand}",
                            expr.position,
                        )
                        break
            return SqlType.BOOLEAN
        if isinstance(expr, ast.LikeMatch):
            operand = self._infer(expr.operand, scope,
                                  aggregates_ok=aggregates_ok, report=report,
                                  report_aggregates=report_aggregates)
            if operand is not None and operand is not SqlType.VARCHAR and report:
                self.emit(
                    "SA201",
                    f"LIKE requires a VARCHAR operand; {expr.operand} is "
                    f"{operand.value.upper()}",
                    expr.position,
                )
            return SqlType.BOOLEAN
        return None

    def _infer_binary(self, expr: ast.BinaryOp, scope: _Scope, *,
                      aggregates_ok: bool, report: bool,
                      report_aggregates: bool) -> SqlType | None:
        left = self._infer(expr.left, scope, aggregates_ok=aggregates_ok,
                           report=report, report_aggregates=report_aggregates)
        right = self._infer(expr.right, scope, aggregates_ok=aggregates_ok,
                            report=report, report_aggregates=report_aggregates)
        op = expr.op
        if op in ("AND", "OR"):
            return SqlType.BOOLEAN
        if op == "||":
            return SqlType.VARCHAR
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left is not None and right is not None and report:
                if not _types_comparable(left, right):
                    self.emit(
                        "SA201",
                        f"cannot compare {left.value.upper()} with "
                        f"{right.value.upper()} in {expr}",
                        expr.position,
                    )
                elif _encoding_mismatch(expr, left, right):
                    self.emit(
                        "SA402",
                        f"comparison {expr} mixes INTEGER encoding with a "
                        "fractional FLOAT literal; it can never be exact",
                        expr.position,
                    )
            return SqlType.BOOLEAN
        # Arithmetic: + - * / %
        result: SqlType | None
        if op == "/":
            result = SqlType.FLOAT
        elif left is SqlType.FLOAT or right is SqlType.FLOAT:
            result = SqlType.FLOAT
        elif left is None or right is None:
            result = None
        else:
            result = SqlType.INTEGER
        for side, side_type in ((expr.left, left), (expr.right, right)):
            if side_type is SqlType.VARCHAR and report:
                self.emit(
                    "SA202",
                    f"operator {op!r} requires numeric operands; "
                    f"{side} is VARCHAR",
                    expr.position,
                )
                return None
        return result

    def _infer_function(self, expr: ast.FunctionCall, scope: _Scope, *,
                        aggregates_ok: bool, report: bool,
                        report_aggregates: bool) -> SqlType | None:
        arg_types = [
            self._infer(arg, scope, aggregates_ok=aggregates_ok, report=report,
                        report_aggregates=report_aggregates)
            for arg in expr.args
        ]
        known = self.provider.scalar_functions()
        if known is not None and expr.name not in known:
            if report:
                self.emit("SA103", f"unknown function {expr.name!r}",
                          expr.position)
            return None
        arity = _SCALAR_ARITY.get(expr.name)
        if arity is not None and report:
            low, high = arity
            if len(expr.args) < low or (high is not None and len(expr.args) > high):
                expected = (str(low) if high == low
                            else f"{low}..{'*' if high is None else high}")
                self.emit(
                    "SA204",
                    f"{expr.name}() expects {expected} argument(s), "
                    f"got {len(expr.args)}",
                    expr.position,
                )
        if expr.name in _NUMERIC_FUNCTIONS and report:
            for arg, arg_type in zip(expr.args, arg_types):
                if arg_type is SqlType.VARCHAR:
                    self.emit(
                        "SA202",
                        f"{expr.name}() requires numeric arguments; "
                        f"{arg} is VARCHAR",
                        arg.position,
                    )
        result = _FUNCTION_RESULTS.get(expr.name)
        if result is not None:
            return result
        if expr.name in _FUNCTION_RESULTS:  # follows the argument type
            return next((t for t in arg_types if t is not None), None)
        return None  # user-registered function: statically unknown

    def _infer_aggregate(self, expr: ast.AggregateCall, scope: _Scope,
                         report: bool = True) -> SqlType | None:
        arg_type: SqlType | None = None
        if expr.arg is not None:
            arg_type = self._infer(expr.arg, scope, aggregates_ok=False,
                                   report=report, report_aggregates=False)
        if expr.name in ("SUM", "AVG") and arg_type is SqlType.VARCHAR and report:
            self.emit(
                "SA203",
                f"{expr.name} requires a numeric argument; {expr.arg} is VARCHAR",
                expr.position,
            )
        if expr.distinct and expr.name in ("MIN", "MAX") and report:
            self.emit(
                "SA203",
                f"DISTINCT is not supported for {expr.name}",
                expr.position,
            )
        if expr.name == "COUNT":
            return SqlType.INTEGER
        if expr.name in ("SUM", "AVG"):
            return SqlType.FLOAT
        return arg_type  # MIN/MAX follow their argument

    # -- projection set ----------------------------------------------------

    def _columns_needed(self, stmt: ast.Select, group_by: list[ast.Expr],
                        having: ast.Expr | None,
                        order_exprs: list[ast.Expr]) -> set[str]:
        """The column keys the planner's plan shapes read (post-alias)."""
        needed: set[str] = set()
        if stmt.udtf is not None:
            for arg in stmt.udtf.args:
                needed |= expressions.columns_referenced(arg)
            if stmt.udtf.partition.expr is not None:
                needed |= expressions.columns_referenced(stmt.udtf.partition.expr)
            if stmt.where is not None:
                needed |= expressions.columns_referenced(stmt.where)
            return needed
        for item in stmt.items:
            needed |= expressions.columns_referenced(item.expr)
        for expr in group_by:
            needed |= expressions.columns_referenced(expr)
        if stmt.where is not None:
            needed |= expressions.columns_referenced(stmt.where)
        if having is not None:
            needed |= expressions.columns_referenced(having)
        for expr in order_exprs:
            needed |= expressions.columns_referenced(expr)
        return needed


# ---------------------------------------------------------------------------
# Type lattice helpers
# ---------------------------------------------------------------------------


def _literal_type(value: object) -> SqlType | None:
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.VARCHAR
    return None  # NULL


def _types_comparable(left: SqlType, right: SqlType) -> bool:
    if left is right:
        return True
    return left in _NUMERIC_TYPES and right in _NUMERIC_TYPES


def _types_assignable(value: SqlType, target: SqlType) -> bool:
    if value is target:
        return True
    return value in _NUMERIC_TYPES and target in _NUMERIC_TYPES


def _literal_assignable(value: object, target: SqlType) -> bool:
    if value is None:
        return True
    value_type = _literal_type(value)
    if value_type is None:
        return True
    return _types_assignable(value_type, target)


def _encoding_mismatch(expr: ast.BinaryOp, left: SqlType, right: SqlType) -> bool:
    """Equality between an INTEGER-encoded side and a fractional FLOAT
    literal can never hold exactly — a statically detectable smell."""
    if expr.op not in ("=", "<>"):
        return False
    for side_type, other in ((left, expr.right), (right, expr.left)):
        if side_type is SqlType.INTEGER and isinstance(other, ast.Literal) \
                and isinstance(other.value, float) \
                and not float(other.value).is_integer():
            return True
    return False
