"""Abstract syntax tree for the SQL subset.

Expression nodes are shared between the parser, the analyzer, and the
vectorized evaluator in :mod:`repro.vertica.expressions`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Expr", "ColumnRef", "Literal", "BinaryOp", "UnaryOp", "FunctionCall",
    "AggregateCall", "InList", "LikeMatch", "Star", "SelectItem", "OrderItem",
    "PartitionSpec", "PartitionKind", "UdtfCall",
    "Statement", "Select", "JoinClause", "CreateTable", "ColumnDef", "SegmentationClause",
    "Insert", "Delete", "Update", "DropTable", "RefreshModel", "Explain",
    "Profile", "CreateSample", "DropSample", "ShowSamples",
]


class Expr:
    """Base class for expression nodes.

    ``position`` is the source offset of the token that started the node,
    attached by the parser via :func:`repro.vertica.sql.parser` (it is a
    plain attribute, not a dataclass field, so node equality and hashing —
    which the planner uses to match aggregates across clauses — ignore it).
    """

    position: int | None = None

    def children(self) -> list["Expr"]:
        return []

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and every descendant."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    qualifier: str | None = None  # table name or alias, e.g. "t" in "t.x"

    @property
    def key(self) -> str:
        """Lookup key in an evaluation batch: ``name`` or ``qualifier.name``."""
        if self.qualifier is None:
            return self.name
        return f"{self.qualifier}.{self.name}"

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class Literal(Expr):
    value: Any  # int, float, str, bool, or None

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> list[Expr]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" or "NOT"
    operand: Expr

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str
    args: tuple[Expr, ...]

    def children(self) -> list[Expr]:
        return list(self.args)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class AggregateCall(Expr):
    """COUNT/SUM/AVG/MIN/MAX; ``arg`` is None for COUNT(*)."""

    name: str
    arg: Expr | None
    distinct: bool = False

    def children(self) -> list[Expr]:
        return [] if self.arg is None else [self.arg]

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (literal, ...)``."""

    operand: Expr
    values: tuple

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        rendered = ", ".join(str(Literal(v)) for v in self.values)
        return f"({self.operand} IN ({rendered}))"


@dataclass(frozen=True)
class LikeMatch(Expr):
    """``expr LIKE 'pattern'`` with %% and _ wildcards."""

    operand: Expr
    pattern: str

    def children(self) -> list[Expr]:
        return [self.operand]

    def __str__(self) -> str:
        return f"({self.operand} LIKE {Literal(self.pattern)})"


@dataclass(frozen=True)
class Star(Expr):
    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return str(self.expr)


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


class PartitionKind(enum.Enum):
    """How a transform UDF's input is partitioned across instances."""

    BY_COLUMN = "by_column"   # PARTITION BY <expr>: co-locate equal keys
    BEST = "best"             # PARTITION BEST: node-local, planner-chosen fan-out
    NODES = "nodes"           # PARTITION NODES: exactly one instance per node


@dataclass(frozen=True)
class PartitionSpec:
    kind: PartitionKind
    expr: Expr | None = None  # only for BY_COLUMN


@dataclass(frozen=True)
class UdtfCall:
    """``func(args USING PARAMETERS k=v, ...) OVER (PARTITION ...)``."""

    name: str
    args: tuple[Expr, ...]
    parameters: dict[str, Any] = field(default_factory=dict)
    partition: PartitionSpec = PartitionSpec(PartitionKind.BEST)
    # Source offset of the function name token (excluded from equality).
    position: int | None = field(default=None, compare=False, repr=False)


class Statement:
    """Base class for parsed statements."""


@dataclass(frozen=True)
class JoinClause:
    """``[INNER | LEFT [OUTER]] JOIN table [alias] ON condition``."""

    table: str
    alias: str | None
    condition: Expr
    kind: str = "inner"  # "inner" | "left"
    # Source offset of the joined table name (excluded from equality).
    table_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class Select(Statement):
    items: list[SelectItem]
    table: str | None
    table_alias: str | None = None
    join: "JoinClause | None" = None
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    udtf: UdtfCall | None = None
    select_star: bool = False
    distinct: bool = False
    # ``AT EPOCH n SELECT ...``: read at historical epoch ``n`` instead of
    # the latest committed snapshot (None = latest).
    at_epoch: int | None = None
    # ``WITHIN n% ERROR [CONFIDENCE c]``: answer approximately from a
    # stored sample when the realized confidence interval meets the
    # relative error bound (both stored as fractions; None = exact).
    within_error: float | None = None
    confidence: float | None = None
    # Source offset of the FROM table name (None when there is no FROM).
    table_position: int | None = field(default=None, compare=False, repr=False)
    within_position: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    position: int | None = field(default=None, compare=False, repr=False)
    type_position: int | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class SegmentationClause:
    """``SEGMENTED BY HASH(col) ALL NODES`` or ``UNSEGMENTED``."""

    kind: str  # "hash" | "unsegmented"
    column: str | None = None


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef]
    segmentation: SegmentationClause | None = None
    name_position: int | None = field(default=None, compare=False, repr=False)
    segmentation_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class Insert(Statement):
    table: str
    rows: list[list[Any]]
    table_position: int | None = field(default=None, compare=False, repr=False)
    # One offset per VALUES row (the opening paren), parallel to ``rows``.
    row_positions: list[int] = field(default_factory=list, compare=False, repr=False)


@dataclass
class Delete(Statement):
    """``DELETE FROM t [WHERE ...]``: delete-vector marks, no rewrites."""

    table: str
    where: Expr | None = None
    table_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class Update(Statement):
    """``UPDATE t SET col = expr, ... [WHERE ...]`` (delete + reinsert)."""

    table: str
    assignments: list[tuple[str, Expr]]
    where: Expr | None = None
    table_position: int | None = field(default=None, compare=False, repr=False)
    # One offset per SET target column name, parallel to ``assignments``.
    assignment_positions: list[int] = field(default_factory=list, compare=False, repr=False)


@dataclass
class DropTable(Statement):
    name: str
    if_exists: bool = False
    name_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class RefreshModel(Statement):
    """``REFRESH MODEL <name>``: fold epochs newer than the model's stamp.

    MODEL is deliberately *not* a lexer keyword (``USING PARAMETERS
    model='x'`` needs it as a plain identifier); the parser consumes it the
    way ``DROP TABLE IF EXISTS`` consumes IF/EXISTS.
    """

    name: str
    name_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class CreateSample(Statement):
    """``CREATE SAMPLE s ON t UNIFORM RATE p% | STRATIFIED BY col [RATE p%]``.

    Like MODEL, the SAMPLE/UNIFORM/RATE/STRATIFIED words stay unreserved;
    the parser consumes them as identifiers.  ``rate`` is stored as a
    fraction in (0, 1].
    """

    name: str
    table: str
    rate: float
    strata_column: str | None = None
    seed: int | None = None
    name_position: int | None = field(default=None, compare=False, repr=False)
    table_position: int | None = field(default=None, compare=False, repr=False)
    rate_position: int | None = field(default=None, compare=False, repr=False)
    strata_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class DropSample(Statement):
    """``DROP SAMPLE [IF EXISTS] s``: catalog entry + backing table + DFS."""

    name: str
    if_exists: bool = False
    name_position: int | None = field(default=None, compare=False, repr=False)


@dataclass
class ShowSamples(Statement):
    """``SHOW SAMPLES``: one row of provenance per registered sample."""


@dataclass
class Explain(Statement):
    """``EXPLAIN <select>``: describe the physical plan without running it."""

    query: "Select"


@dataclass
class Profile(Statement):
    """``PROFILE <select>``: run the query, return its operator span tree
    (wall time, rows, bytes, peak in-flight) instead of its rows."""

    query: "Select"
