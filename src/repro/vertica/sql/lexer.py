"""SQL lexer for the Vertica-subset dialect used by the reproduction.

Produces a flat token stream for the recursive-descent parser.  Keywords are
case-insensitive; identifiers may be double-quoted to preserve case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE",
        "ASC", "DESC", "DISTINCT", "BETWEEN", "LIKE",
        "JOIN", "ON", "INNER", "LEFT", "OUTER",
        "CREATE", "TABLE", "DROP", "INSERT", "INTO", "VALUES", "EXPLAIN",
        "PROFILE", "COPY", "REFRESH",
        "DELETE", "UPDATE", "SET", "AT", "EPOCH", "LATEST",
        "SEGMENTED", "UNSEGMENTED", "HASH", "ALL", "NODES",
        "USING", "PARAMETERS", "OVER", "PARTITION", "BEST",
        "COUNT", "SUM", "AVG", "MIN", "MAX",
        # WITHIN must be reserved (an unreserved word after FROM <table>
        # would parse as the table's alias); SHOW is reserved so statement
        # dispatch can see it.  SAMPLE/SAMPLES/ERROR/CONFIDENCE/UNIFORM/
        # RATE/STRATIFIED stay plain identifiers, matched by the parser
        # the way MODEL and IF/EXISTS are.
        "WITHIN", "SHOW",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            start = i
            text, i = _read_quoted(sql, i, "'")
            tokens.append(Token(TokenType.STRING, text, start))
            continue
        if ch == '"':
            start = i
            text, i = _read_quoted(sql, i, '"')
            tokens.append(Token(TokenType.IDENT, text, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            i = _scan_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched_operator = None
        for op in _OPERATORS:
            if sql.startswith(op, i):
                matched_operator = op
                break
        if matched_operator is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, i))
            i += len(matched_operator)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_quoted(sql: str, start: int, quote: str) -> tuple[str, int]:
    """Read a quoted token starting at ``start``; doubled quotes escape."""
    i = start + 1
    parts: list[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == quote:
            if i + 1 < n and sql[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated quoted token", position=start)


def _scan_number(sql: str, i: int) -> int:
    n = len(sql)
    while i < n and sql[i].isdigit():
        i += 1
    if i < n and sql[i] == ".":
        i += 1
        while i < n and sql[i].isdigit():
            i += 1
    if i < n and sql[i] in "eE":
        j = i + 1
        if j < n and sql[j] in "+-":
            j += 1
        if j < n and sql[j].isdigit():
            i = j
            while i < n and sql[i].isdigit():
                i += 1
    return i
