"""SQL front end: lexer, AST, and recursive-descent parser."""

from repro.vertica.sql import ast
from repro.vertica.sql.lexer import Token, TokenType, tokenize
from repro.vertica.sql.parser import parse, parse_expression

__all__ = ["ast", "tokenize", "Token", "TokenType", "parse", "parse_expression"]
