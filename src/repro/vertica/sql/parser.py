"""Recursive-descent parser for the SQL subset.

Supported statements::

    SELECT <items> FROM <table> [WHERE ...] [GROUP BY ...] [HAVING ...]
        [ORDER BY ...] [LIMIT n] [WITHIN n% ERROR [CONFIDENCE c]]
    SELECT udtf(args USING PARAMETERS k='v', ...)
        OVER (PARTITION BY col | PARTITION BEST | PARTITION NODES) FROM <table>
    CREATE TABLE t (col type, ...) [SEGMENTED BY HASH(col) ALL NODES | UNSEGMENTED]
    CREATE SAMPLE s ON t (UNIFORM RATE p% | STRATIFIED BY col [RATE p%]) [SEED n]
    INSERT INTO t VALUES (...), (...)
    DELETE FROM t [WHERE ...]
    UPDATE t SET col = expr, ... [WHERE ...]
    AT EPOCH n | LATEST SELECT ...
    DROP TABLE [IF EXISTS] t
    DROP SAMPLE [IF EXISTS] s
    SHOW SAMPLES
    REFRESH MODEL m

The grammar follows standard SQL precedence: OR < AND < NOT < comparison <
additive < multiplicative < unary minus.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlSyntaxError
from repro.vertica.sql import ast
from repro.vertica.sql.lexer import Token, TokenType, tokenize

__all__ = ["parse", "parse_expression"]

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}
_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    parser = _Parser(tokenize(sql))
    stmt = parser.statement()
    parser.expect_end()
    return stmt


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone scalar expression (used by tests and filters)."""
    parser = _Parser(tokenize(sql))
    expr = parser.expression()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def check_keyword(self, *keywords: str) -> bool:
        return self.current.matches_keyword(*keywords)

    def accept_keyword(self, *keywords: str) -> bool:
        if self.check_keyword(*keywords):
            self.advance()
            return True
        return False

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SqlSyntaxError(
                f"expected {keyword}, found {self.current.value!r}",
                position=self.current.position,
            )

    def accept_punct(self, punct: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == punct:
            self.advance()
            return True
        return False

    def expect_punct(self, punct: str) -> None:
        if not self.accept_punct(punct):
            raise SqlSyntaxError(
                f"expected {punct!r}, found {self.current.value!r}",
                position=self.current.position,
            )

    def accept_operator(self, *operators: str) -> str | None:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in operators:
            self.advance()
            return token.value
        return None

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        # Allow non-reserved keywords where an identifier is natural
        # (e.g. a column named "best" would be quoted; keep strict here).
        raise SqlSyntaxError(
            f"expected {what}, found {token.value!r}", position=token.position
        )

    def expect_end(self) -> None:
        self.accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"trailing input starting at {self.current.value!r}",
                position=self.current.position,
            )

    # -- statements ---------------------------------------------------------

    def statement(self) -> ast.Statement:
        start = self.current.position
        if self.check_keyword("SELECT"):
            return self.select()
        if self.check_keyword("CREATE"):
            if self._next_is_word("SAMPLE"):
                return self.create_sample()
            return self.create_table()
        if self.check_keyword("INSERT"):
            return self.insert()
        if self.check_keyword("DELETE"):
            return self.delete()
        if self.check_keyword("UPDATE"):
            return self.update()
        if self.check_keyword("DROP"):
            if self._next_is_word("SAMPLE"):
                return self.drop_sample()
            return self.drop_table()
        if self.check_keyword("SHOW"):
            return self.show_samples()
        if self.check_keyword("REFRESH"):
            return self.refresh_model()
        if self.accept_keyword("AT"):
            return self._at_epoch()
        if self.accept_keyword("EXPLAIN"):
            inner = self.statement()
            if not isinstance(inner, ast.Select):
                raise SqlSyntaxError(
                    "EXPLAIN supports SELECT statements only", position=start
                )
            return ast.Explain(inner)
        if self.accept_keyword("PROFILE"):
            inner = self.statement()
            if not isinstance(inner, ast.Select):
                raise SqlSyntaxError(
                    "PROFILE supports SELECT statements only", position=start
                )
            return ast.Profile(inner)
        raise SqlSyntaxError(
            f"expected a statement, found {self.current.value!r}",
            position=self.current.position,
        )

    def select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select_star = False
        items: list[ast.SelectItem] = []
        udtf: ast.UdtfCall | None = None

        if self.accept_operator("*"):
            select_star = True
        else:
            first = True
            while first or self.accept_punct(","):
                first = False
                item_or_udtf = self._select_item()
                if isinstance(item_or_udtf, ast.UdtfCall):
                    if udtf is not None:
                        raise SqlSyntaxError(
                            "multiple UDTF calls in one SELECT",
                            position=item_or_udtf.position,
                        )
                    udtf = item_or_udtf
                else:
                    items.append(item_or_udtf)
        if udtf is not None and items:
            raise SqlSyntaxError(
                "a UDTF call cannot be mixed with other select items",
                position=udtf.position,
            )

        table = None
        table_alias = None
        table_position = None
        join = None
        if self.accept_keyword("FROM"):
            table_position = self.current.position
            table = self.expect_ident("table name")
            if self.current.type is TokenType.IDENT:
                table_alias = self.advance().value
            join = self._join_clause()
        stmt = ast.Select(items=items, table=table, table_alias=table_alias,
                          join=join, udtf=udtf, select_star=select_star,
                          distinct=distinct, table_position=table_position)

        if self.accept_keyword("WHERE"):
            stmt.where = self.expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            stmt.group_by.append(self.expression())
            while self.accept_punct(","):
                stmt.group_by.append(self.expression())
        if self.accept_keyword("HAVING"):
            stmt.having = self.expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            stmt.order_by.append(self._order_item())
            while self.accept_punct(","):
                stmt.order_by.append(self._order_item())
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("LIMIT requires a number", position=token.position)
            self.advance()
            stmt.limit = int(float(token.value))
        if self.check_keyword("WITHIN"):
            stmt.within_position = self.current.position
            self.advance()
            stmt.within_error = self._percent_number("WITHIN")
            self._expect_word("ERROR")
            if self._accept_word("CONFIDENCE"):
                confidence = self._percent_number("CONFIDENCE")
                # "CONFIDENCE 95" (no %) reads as a percentage too.
                stmt.confidence = (
                    confidence / 100.0 if confidence > 1.0 else confidence)
        return stmt

    def _percent_number(self, clause: str) -> float:
        """A numeric literal with an optional ``%`` (which divides by 100)."""
        token = self.current
        if token.type is not TokenType.NUMBER:
            raise SqlSyntaxError(
                f"{clause} requires a number", position=token.position)
        self.advance()
        value = float(token.value)
        if self.accept_operator("%"):
            value /= 100.0
        return value

    def _join_clause(self) -> ast.JoinClause | None:
        kind = "inner"
        if self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            kind = "left"
            self.expect_keyword("JOIN")
        elif self.accept_keyword("INNER"):
            self.expect_keyword("JOIN")
        elif not self.accept_keyword("JOIN"):
            return None
        table_position = self.current.position
        table = self.expect_ident("table name")
        alias = None
        if self.current.type is TokenType.IDENT:
            alias = self.advance().value
        self.expect_keyword("ON")
        condition = self.expression()
        return ast.JoinClause(table=table, alias=alias, condition=condition,
                              kind=kind, table_position=table_position)

    def _order_item(self) -> ast.OrderItem:
        expr = self.expression()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    def _select_item(self) -> ast.SelectItem | ast.UdtfCall:
        # Look ahead for "ident (" that might be a UDTF (decided by the
        # presence of USING PARAMETERS or an OVER clause after the call).
        expr = self.expression()
        if isinstance(expr, ast.FunctionCall) and (
            self.check_keyword("OVER") or getattr(expr, "_udtf_params", None) is not None
        ):
            params = getattr(expr, "_udtf_params", None) or {}
            partition = self._over_clause()
            return ast.UdtfCall(
                name=expr.name, args=expr.args, parameters=params,
                partition=partition, position=expr.position,
            )
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def _over_clause(self) -> ast.PartitionSpec:
        self.expect_keyword("OVER")
        self.expect_punct("(")
        spec = ast.PartitionSpec(ast.PartitionKind.BEST)
        if self.accept_keyword("PARTITION"):
            if self.accept_keyword("BEST"):
                spec = ast.PartitionSpec(ast.PartitionKind.BEST)
            elif self.accept_keyword("NODES"):
                spec = ast.PartitionSpec(ast.PartitionKind.NODES)
            elif self.accept_keyword("BY"):
                spec = ast.PartitionSpec(ast.PartitionKind.BY_COLUMN, self.expression())
            else:
                raise SqlSyntaxError(
                    "expected BEST, NODES, or BY after PARTITION",
                    position=self.current.position,
                )
        self.expect_punct(")")
        return spec

    def create_table(self) -> ast.CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name_position = self.current.position
        name = self.expect_ident("table name")
        self.expect_punct("(")
        columns = [self._column_def()]
        while self.accept_punct(","):
            columns.append(self._column_def())
        self.expect_punct(")")
        segmentation = None
        segmentation_position = None
        if self.accept_keyword("SEGMENTED"):
            self.expect_keyword("BY")
            self.expect_keyword("HASH")
            self.expect_punct("(")
            segmentation_position = self.current.position
            column = self.expect_ident("segmentation column")
            self.expect_punct(")")
            self.expect_keyword("ALL")
            self.expect_keyword("NODES")
            segmentation = ast.SegmentationClause("hash", column)
        elif self.accept_keyword("UNSEGMENTED"):
            segmentation = ast.SegmentationClause("unsegmented")
        return ast.CreateTable(name, columns, segmentation,
                               name_position=name_position,
                               segmentation_position=segmentation_position)

    def _column_def(self) -> ast.ColumnDef:
        position = self.current.position
        name = self.expect_ident("column name")
        type_position = self.current.position
        type_parts = [self.expect_ident("type name")]
        # allow multi-word types like DOUBLE PRECISION
        while self.current.type is TokenType.IDENT:
            type_parts.append(self.advance().value)
        return ast.ColumnDef(name, " ".join(type_parts),
                             position=position, type_position=type_position)

    def insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table_position = self.current.position
        table = self.expect_ident("table name")
        self.expect_keyword("VALUES")
        row_positions = [self.current.position]
        rows = [self._value_row()]
        while self.accept_punct(","):
            row_positions.append(self.current.position)
            rows.append(self._value_row())
        return ast.Insert(table, rows, table_position=table_position,
                          row_positions=row_positions)

    def delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table_position = self.current.position
        table = self.expect_ident("table name")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Delete(table, where, table_position=table_position)

    def update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table_position = self.current.position
        table = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignment_positions = [self.current.position]
        assignments = [self._assignment()]
        while self.accept_punct(","):
            assignment_positions.append(self.current.position)
            assignments.append(self._assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return ast.Update(table, assignments, where,
                          table_position=table_position,
                          assignment_positions=assignment_positions)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_ident("column name")
        self._expect_eq()
        return column, self.expression()

    def _at_epoch(self) -> ast.Select:
        """``AT EPOCH n | LATEST <select>`` (the AT is already consumed)."""
        self.expect_keyword("EPOCH")
        epoch: int | None = None
        if not self.accept_keyword("LATEST"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError(
                    "AT EPOCH requires a number or LATEST",
                    position=token.position,
                )
            self.advance()
            epoch = int(float(token.value))
        inner_position = self.current.position
        inner = self.statement()
        if not isinstance(inner, ast.Select):
            raise SqlSyntaxError(
                "AT EPOCH supports SELECT statements only", position=inner_position
            )
        inner.at_epoch = epoch
        return inner

    def _value_row(self) -> list[Any]:
        self.expect_punct("(")
        values = [self._literal_value()]
        while self.accept_punct(","):
            values.append(self._literal_value())
        self.expect_punct(")")
        return values

    def _literal_value(self) -> Any:
        expr = self.expression()
        return _fold_literal(expr)

    def drop_table(self) -> ast.DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        # "IF EXISTS" arrives as two identifiers since IF/EXISTS are not keywords.
        if self.current.type is TokenType.IDENT and self.current.value.upper() == "IF":
            self.advance()
            nxt = self.advance()
            if nxt.value.upper() != "EXISTS":
                raise SqlSyntaxError("expected EXISTS after IF", position=nxt.position)
            if_exists = True
        name_position = self.current.position
        name = self.expect_ident("table name")
        return ast.DropTable(name, if_exists, name_position=name_position)

    def refresh_model(self) -> ast.RefreshModel:
        self.expect_keyword("REFRESH")
        # MODEL arrives as an identifier: it stays unreserved so that
        # ``USING PARAMETERS model='x'`` keeps parsing as a parameter name.
        token = self.current
        if token.type is not TokenType.IDENT or token.value.upper() != "MODEL":
            raise SqlSyntaxError(
                "expected MODEL after REFRESH", position=token.position
            )
        self.advance()
        name_position = self.current.position
        name = self.expect_ident("model name")
        return ast.RefreshModel(name, name_position=name_position)

    # -- AQP statements ------------------------------------------------------
    # SAMPLE/SAMPLES/UNIFORM/RATE/STRATIFIED/SEED stay unreserved words,
    # consumed as identifiers the way MODEL and IF/EXISTS are.

    def _next_is_word(self, word: str) -> bool:
        """Whether the token *after* the current one is the identifier ``word``."""
        nxt = self._tokens[min(self._pos + 1, len(self._tokens) - 1)]
        return nxt.type is TokenType.IDENT and nxt.value.upper() == word

    def _accept_word(self, word: str) -> bool:
        token = self.current
        if token.type is TokenType.IDENT and token.value.upper() == word:
            self.advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise SqlSyntaxError(
                f"expected {word}, found {self.current.value!r}",
                position=self.current.position,
            )

    def create_sample(self) -> ast.CreateSample:
        self.expect_keyword("CREATE")
        self._expect_word("SAMPLE")
        name_position = self.current.position
        name = self.expect_ident("sample name")
        self.expect_keyword("ON")
        table_position = self.current.position
        table = self.expect_ident("table name")
        strata: str | None = None
        strata_position: int | None = None
        rate = 0.01  # STRATIFIED may omit RATE; default to 1%
        rate_position: int | None = None
        if self._accept_word("UNIFORM"):
            rate_position = self.current.position
            self._expect_word("RATE")
            rate = self._percent_number("RATE")
        elif self._accept_word("STRATIFIED"):
            self.expect_keyword("BY")
            strata_position = self.current.position
            strata = self.expect_ident("stratification column")
            if self.current.type is TokenType.IDENT and \
                    self.current.value.upper() == "RATE":
                rate_position = self.current.position
                self.advance()
                rate = self._percent_number("RATE")
        else:
            raise SqlSyntaxError(
                "expected UNIFORM or STRATIFIED in CREATE SAMPLE",
                position=self.current.position,
            )
        seed: int | None = None
        if self._accept_word("SEED"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise SqlSyntaxError("SEED requires a number",
                                     position=token.position)
            self.advance()
            seed = int(float(token.value))
        return ast.CreateSample(
            name, table, rate, strata, seed,
            name_position=name_position, table_position=table_position,
            rate_position=rate_position, strata_position=strata_position,
        )

    def drop_sample(self) -> ast.DropSample:
        self.expect_keyword("DROP")
        self._expect_word("SAMPLE")
        if_exists = False
        if self.current.type is TokenType.IDENT and \
                self.current.value.upper() == "IF":
            self.advance()
            nxt = self.advance()
            if nxt.value.upper() != "EXISTS":
                raise SqlSyntaxError("expected EXISTS after IF",
                                     position=nxt.position)
            if_exists = True
        name_position = self.current.position
        name = self.expect_ident("sample name")
        return ast.DropSample(name, if_exists, name_position=name_position)

    def show_samples(self) -> ast.ShowSamples:
        self.expect_keyword("SHOW")
        self._expect_word("SAMPLES")
        return ast.ShowSamples()

    # -- expressions (precedence climbing) -----------------------------------

    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while True:
            position = self.current.position
            if not self.accept_keyword("OR"):
                return left
            left = _at(ast.BinaryOp("OR", left, self._and_expr()), position)

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while True:
            position = self.current.position
            if not self.accept_keyword("AND"):
                return left
            left = _at(ast.BinaryOp("AND", left, self._not_expr()), position)

    def _not_expr(self) -> ast.Expr:
        position = self.current.position
        if self.accept_keyword("NOT"):
            return _at(ast.UnaryOp("NOT", self._not_expr()), position)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        position = self.current.position
        op = self.accept_operator(*_COMPARISONS)
        if op is not None:
            normalized = "<>" if op == "!=" else op
            return _at(ast.BinaryOp(normalized, left, self._additive()), position)
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            node: ast.Expr = _at(ast.FunctionCall("is_null", (left,)), position)
            return _at(ast.UnaryOp("NOT", node), position) if negated else node
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return _at(
                ast.BinaryOp(
                    "AND",
                    _at(ast.BinaryOp(">=", left, low), position),
                    _at(ast.BinaryOp("<=", left, high), position),
                ),
                position,
            )
        negated = self.accept_keyword("NOT")
        if self.accept_keyword("IN"):
            self.expect_punct("(")
            values = [self._literal_value()]
            while self.accept_punct(","):
                values.append(self._literal_value())
            self.expect_punct(")")
            node = _at(ast.InList(left, tuple(values)), position)
            return _at(ast.UnaryOp("NOT", node), position) if negated else node
        if self.accept_keyword("LIKE"):
            pattern = self.current
            if pattern.type is not TokenType.STRING:
                raise SqlSyntaxError("LIKE requires a string pattern",
                                     position=pattern.position)
            self.advance()
            node = _at(ast.LikeMatch(left, pattern.value), position)
            return _at(ast.UnaryOp("NOT", node), position) if negated else node
        if negated:
            raise SqlSyntaxError(
                "expected IN or LIKE after NOT in a comparison",
                position=self.current.position,
            )
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            position = self.current.position
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            left = _at(ast.BinaryOp(op, left, self._multiplicative()), position)

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            position = self.current.position
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = _at(ast.BinaryOp(op, left, self._unary()), position)

    def _unary(self) -> ast.Expr:
        position = self.current.position
        if self.accept_operator("-"):
            return _at(ast.UnaryOp("-", self._unary()), position)
        if self.accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return _at(ast.Literal(value), token.position)
        if token.type is TokenType.STRING:
            self.advance()
            return _at(ast.Literal(token.value), token.position)
        if token.matches_keyword("TRUE"):
            self.advance()
            return _at(ast.Literal(True), token.position)
        if token.matches_keyword("FALSE"):
            self.advance()
            return _at(ast.Literal(False), token.position)
        if token.matches_keyword("NULL"):
            self.advance()
            return _at(ast.Literal(None), token.position)
        if token.matches_keyword(*_AGGREGATES):
            self.advance()
            return self._aggregate(token.value, token.position)
        if token.type is TokenType.IDENT:
            self.advance()
            if self.accept_punct("("):
                return self._call(token.value, token.position)
            if self.accept_punct("."):
                column = self.expect_ident("column name")
                return _at(ast.ColumnRef(column, qualifier=token.value), token.position)
            return _at(ast.ColumnRef(token.value), token.position)
        if self.accept_punct("("):
            expr = self.expression()
            self.expect_punct(")")
            return expr
        raise SqlSyntaxError(
            f"expected an expression, found {token.value!r}", position=token.position
        )

    def _aggregate(self, name: str, position: int) -> ast.Expr:
        self.expect_punct("(")
        distinct = self.accept_keyword("DISTINCT")
        if name == "COUNT" and self.accept_operator("*"):
            self.expect_punct(")")
            return _at(ast.AggregateCall("COUNT", None, distinct), position)
        arg = self.expression()
        self.expect_punct(")")
        return _at(ast.AggregateCall(name, arg, distinct), position)

    def _call(self, name: str, position: int) -> ast.Expr:
        """Parse a call after the opening paren; may carry UDTF parameters."""
        args: list[ast.Expr] = []
        params: dict[str, Any] | None = None
        if not self.accept_punct(")"):
            if not self.check_keyword("USING"):
                args.append(self.expression())
                while self.accept_punct(","):
                    args.append(self.expression())
            if self.accept_keyword("USING"):
                self.expect_keyword("PARAMETERS")
                params = {}
                key = self.expect_ident("parameter name")
                self._expect_eq()
                params[key] = _fold_literal(self.expression())
                while self.accept_punct(","):
                    key = self.expect_ident("parameter name")
                    self._expect_eq()
                    params[key] = _fold_literal(self.expression())
            self.expect_punct(")")
        call = _at(ast.FunctionCall(name.lower(), tuple(args)), position)
        if params is not None:
            # Stash UDTF parameters on the node; _select_item turns this into
            # a UdtfCall when it sees the OVER clause.
            object.__setattr__(call, "_udtf_params", params)
        return call

    def _expect_eq(self) -> None:
        if self.accept_operator("=") is None:
            raise SqlSyntaxError(
                f"expected '=', found {self.current.value!r}",
                position=self.current.position,
            )


def _at(node: ast.Expr, position: int | None) -> ast.Expr:
    """Attach a source offset to an expression node (see ``ast.Expr.position``)."""
    object.__setattr__(node, "position", position)
    return node


def _fold_literal(expr: ast.Expr) -> Any:
    """Reduce a constant expression to a Python value (for VALUES/params)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _fold_literal(expr.operand)
        if isinstance(inner, (int, float)):
            return -inner
    raise SqlSyntaxError(
        f"expected a literal value, found {expr}", position=expr.position
    )
