"""The global epoch clock and per-statement snapshots.

Vertica's MVCC stamps every committed change with an *epoch* from a global
clock; a statement reads at a fixed epoch and simply ignores rows inserted
after it or deleted at-or-before it.  Two marks matter:

* the **committed watermark** (``current_epoch``) — the largest epoch *E*
  such that no transaction with an epoch ≤ *E* is still in flight.  New
  snapshots are taken here, so a reader can never observe half of a batch
  whose commit has not landed yet (the torn-insert race this module
  exists to close);
* the **Ancient History Mark** (AHM) — the oldest epoch any query may
  still ask for.  Storage behind the AHM is fair game for the Tuple
  Mover's mergeout to purge; ``AT EPOCH n`` requires ``AHM ≤ n``.

Epoch 0 is the beginning of history: data loaded without an explicit
transaction (plain :meth:`Segment.append`) is stamped 0 and visible to
every snapshot.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import ExecutionError

__all__ = ["EpochClock", "Snapshot"]


class Snapshot:
    """An immutable read handle: "see everything committed at ``epoch``".

    Visibility rule for a row with insert epoch *i* and (optional) delete
    epoch *d*:  visible iff ``i <= epoch`` and (no delete or ``d > epoch``).
    """

    __slots__ = ("epoch",)

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(epoch={self.epoch})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Snapshot) and other.epoch == self.epoch

    def __hash__(self) -> int:
        return hash(("Snapshot", self.epoch))


class EpochClock:
    """Thread-safe allocator of commit epochs plus the two watermarks.

    The protocol is two-phase: :meth:`begin` allocates the next epoch and
    marks it *pending*; the writer applies its changes stamped with that
    epoch (invisible to every snapshot, because snapshots are capped at
    the committed watermark); :meth:`commit` unpends it, advancing the
    watermark once no smaller epoch is still pending.  :meth:`abort` is
    the same advance after the writer rolled its stamped data back out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._last_allocated = 0
        self._pending: set[int] = set()
        self._ahm = 0
        # Called (outside the lock) with the watermark delta whenever the
        # committed watermark advances; the cluster binds this to the
        # ``current_epoch`` gauge.
        self.on_advance: Callable[[int], None] | None = None

    # -- allocation --------------------------------------------------------

    def begin(self) -> int:
        """Allocate the next epoch and mark it pending."""
        with self._lock:
            self._last_allocated += 1
            epoch = self._last_allocated
            self._pending.add(epoch)
        return epoch

    def commit(self, epoch: int) -> int:
        """Mark ``epoch`` committed; returns the new committed watermark."""
        return self._finish(epoch)

    def abort(self, epoch: int) -> int:
        """Retire ``epoch`` after its stamped data has been rolled back.

        Indistinguishable from :meth:`commit` for watermark purposes: the
        epoch no longer blocks later commits from becoming visible, and
        since its data is gone, snapshots at-or-after it see nothing of it.
        """
        return self._finish(epoch)

    def _finish(self, epoch: int) -> int:
        with self._lock:
            before = self._watermark_locked()
            self._pending.discard(epoch)
            after = self._watermark_locked()
        delta = after - before
        if delta and self.on_advance is not None:
            self.on_advance(delta)
        return after

    def stamp(self) -> int:
        """Allocate and immediately commit one epoch (catalog-only ops)."""
        epoch = self.begin()
        self.commit(epoch)
        return epoch

    # -- watermarks --------------------------------------------------------

    def _watermark_locked(self) -> int:
        if self._pending:
            return min(self._pending) - 1
        return self._last_allocated

    @property
    def current_epoch(self) -> int:
        """The committed watermark: the epoch new snapshots read at."""
        with self._lock:
            return self._watermark_locked()

    @property
    def ancient_history_mark(self) -> int:
        with self._lock:
            return self._ahm

    def advance_ahm(self, epoch: int | None = None) -> int:
        """Advance the AHM (default: to the committed watermark).

        The AHM never retreats and never passes the committed watermark;
        returns the AHM after the (possibly clamped) advance.
        """
        with self._lock:
            target = self._watermark_locked() if epoch is None else epoch
            target = min(target, self._watermark_locked())
            if target > self._ahm:
                self._ahm = target
            return self._ahm

    # -- snapshots ---------------------------------------------------------

    def snapshot(self, epoch: int | None = None) -> Snapshot:
        """A read handle at ``epoch`` (default: the committed watermark).

        ``AT EPOCH n`` resolves here; epochs behind the AHM may already be
        partially purged, and epochs past the watermark are the future —
        both are rejected.
        """
        with self._lock:
            watermark = self._watermark_locked()
            ahm = self._ahm
        if epoch is None:
            return Snapshot(watermark)
        if epoch > watermark:
            raise ExecutionError(
                f"AT EPOCH {epoch} is in the future (current epoch {watermark})"
            )
        if epoch < ahm:
            raise ExecutionError(
                f"AT EPOCH {epoch} precedes the ancient history mark ({ahm}); "
                "that history has been purged"
            )
        return Snapshot(epoch)
