"""Transactional mutation engine: epochs, delete vectors, WOS, Tuple Mover.

The paper assumes an *operational* Vertica underneath the analytics: tables
keep ingesting and mutating while models train and score against them.
"The Vertica Analytic Database: C-Store 7 Years Later" describes the
subsystem this package reproduces:

* a global **epoch clock** (:mod:`~repro.vertica.txn.epochs`) — every
  committed change is stamped with an epoch, and every statement reads
  through a :class:`~repro.vertica.txn.epochs.Snapshot` fixed at one
  committed epoch, so scans never observe in-flight work;
* **delete vectors** (:mod:`~repro.vertica.txn.delete_vector`) —
  epoch-stamped sidecars recording which rows a DELETE removed, consulted
  at scan time so DELETE/UPDATE never rewrite read-optimized rowgroups;
* a **WOS** (:mod:`~repro.vertica.txn.wos`) — a per-segment in-memory
  write-optimized store absorbing trickle INSERTs without paying rowgroup
  encoding per statement, unioned into scans at snapshot resolution;
* the **Tuple Mover** (:mod:`~repro.vertica.txn.mover`) — a background
  service doing *moveout* (WOS batches → ROS rowgroups) and *mergeout*
  (compacting small rowgroups and purging rows whose delete epoch precedes
  the Ancient History Mark);
* DELETE / UPDATE statement implementations
  (:mod:`~repro.vertica.txn.mutations`) built on the pieces above.
"""

from repro.vertica.txn.delete_vector import DeleteVector, FrozenDeleteIndex
from repro.vertica.txn.epochs import EpochClock, Snapshot
from repro.vertica.txn.mover import TupleMover, TupleMoverConfig
from repro.vertica.txn.wos import WosBatch

__all__ = [
    "EpochClock",
    "Snapshot",
    "DeleteVector",
    "FrozenDeleteIndex",
    "WosBatch",
    "TupleMover",
    "TupleMoverConfig",
]
