"""DELETE and UPDATE statement execution over the MVCC storage.

Neither statement rewrites read-optimized storage:

* ``DELETE FROM t WHERE ...`` scans for matching rows at the statement's
  snapshot and records their rowids in the per-segment delete vectors,
  stamped with one freshly committed epoch;
* ``UPDATE t SET ... WHERE ...`` is Vertica's delete-plus-reinsert: the
  matched rows are deleted (delete vector) and their updated images
  re-inserted through the WOS — both stamped with the *same* epoch, so a
  snapshot sees either the old rows or the new rows, never both or
  neither.

Statements against one table serialize on ``Table.write_lock``: the
delete vector itself resolves write-write conflicts first-wins, but two
interleaved collect/apply phases could, e.g., double-apply an UPDATE's
SET expressions.  Readers are never blocked — they run against frozen
snapshots throughout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SqlAnalysisError
from repro.vertica import expressions
from repro.vertica.expressions import columns_referenced
from repro.vertica.table import ROWID_COLUMN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster
    from repro.vertica.sql import ast
    from repro.vertica.table import Table

__all__ = ["execute_delete", "execute_update"]


def execute_delete(cluster: "VerticaCluster", stmt: "ast.Delete") -> int:
    """Apply one DELETE statement; returns the number of rows deleted."""
    table = _mutable_table(cluster, stmt.table)
    with table.write_lock:
        snapshot = table.resolve_snapshot()
        matched = _collect_matches(table, stmt.where, snapshot,
                                   columns=_where_columns(table, stmt.where))
        total = sum(len(rowids) for _, rowids in matched)
        if total == 0:
            return 0
        epochs = cluster.catalog.epochs
        epoch = epochs.begin()
        try:
            added = _mark_deleted(table, matched, epoch)
        except BaseException:
            for segment in table.all_segments():
                segment.delete_vector.rollback_epoch(epoch)
            epochs.abort(epoch)
            raise
        table.note_commit(epoch)
        epochs.commit(epoch)
    cluster.telemetry.gauge_add("delete_vector_rows", added)
    cluster.telemetry.add("rows_deleted", total)
    cluster.tuple_mover.notify()
    return total


def execute_update(cluster: "VerticaCluster", stmt: "ast.Update") -> int:
    """Apply one UPDATE statement; returns the number of rows updated."""
    table = _mutable_table(cluster, stmt.table)
    targets = [name for name, _ in stmt.assignments]
    if len(set(targets)) != len(targets):
        raise SqlAnalysisError(f"UPDATE sets a column twice: {targets}")
    for name, expr in stmt.assignments:
        if not table.has_column(name):
            raise SqlAnalysisError(
                f"table {table.name!r} has no column {name!r}")
        for ref in columns_referenced(expr):
            if not table.has_column(ref):
                raise SqlAnalysisError(
                    f"table {table.name!r} has no column {ref!r}")
    with table.write_lock:
        snapshot = table.resolve_snapshot()
        _where_columns(table, stmt.where)  # validates references
        matched = _collect_matches(table, stmt.where, snapshot,
                                   columns=table.column_names,
                                   keep_batches=True)
        total = sum(len(rowids) for _, rowids in matched)
        if total == 0:
            return 0
        old = _concat_matches(matched, table.column_names)
        new_arrays = dict(old)
        for name, expr in stmt.assignments:
            value = np.atleast_1d(np.asarray(expressions.evaluate(expr, old)))
            if len(value) == 1 and total != 1:
                value = np.broadcast_to(value, (total,)).copy()
            if len(value) != total:
                raise SqlAnalysisError(
                    f"SET {name} produced {len(value)} values for {total} rows")
            new_arrays[name] = value
        epochs = cluster.catalog.epochs
        epoch = epochs.begin()
        try:
            added = _mark_deleted(table, matched, epoch)
            table.insert(new_arrays, direct=False, epoch=epoch)
        except BaseException:
            for segment in table.all_segments():
                segment.delete_vector.rollback_epoch(epoch)
                segment.rollback_epoch(epoch)
            epochs.abort(epoch)
            raise
        table.note_commit(epoch)
        epochs.commit(epoch)
    cluster.telemetry.gauge_add("delete_vector_rows", added)
    cluster.telemetry.add("rows_updated", total)
    cluster.tuple_mover.notify()
    return total


# -- shared plumbing ---------------------------------------------------------


def _mutable_table(cluster: "VerticaCluster", name: str) -> "Table":
    from repro.vertica.models import R_MODELS_TABLE_NAME

    if name.lower() == R_MODELS_TABLE_NAME:
        raise SqlAnalysisError(
            "R_Models is maintained through deploy.model / drop_model, "
            "not DELETE/UPDATE")
    return cluster.catalog.get_table(name)


def _where_columns(table: "Table", where) -> list[str]:
    if where is None:
        return []
    referenced = columns_referenced(where)
    for name in referenced:
        if not table.has_column(name):
            raise SqlAnalysisError(
                f"table {table.name!r} has no column {name!r}")
    return sorted(referenced)


def _collect_matches(table: "Table", where, snapshot, columns: list[str],
                     keep_batches: bool = False):
    """Per-node matching rows at ``snapshot``.

    Returns ``[(batches_or_None, rowids)]`` per node; with
    ``keep_batches=True`` the filtered column batches ride along (the
    UPDATE path needs the old row images for its SET expressions).
    """
    matched = []
    for node in range(table.node_count):
        rowid_chunks: list[np.ndarray] = []
        batch_chunks: list[dict[str, np.ndarray]] = []
        for batch in table.iter_node_batches(node, columns=list(columns),
                                             include_rowid=True,
                                             snapshot=snapshot):
            if where is not None:
                mask = np.atleast_1d(np.asarray(
                    expressions.evaluate(where, batch), dtype=bool))
                rows = len(batch[ROWID_COLUMN])
                if mask.shape == (1,) and rows != 1:
                    mask = np.broadcast_to(mask, (rows,))
                if not mask.any():
                    continue
                batch = {name: arr[mask] for name, arr in batch.items()}
            rowid_chunks.append(batch[ROWID_COLUMN])
            if keep_batches:
                batch_chunks.append(batch)
        rowids = (np.concatenate(rowid_chunks) if rowid_chunks
                  else np.empty(0, dtype=np.int64))
        matched.append((batch_chunks if keep_batches else None, rowids))
    return matched


def _concat_matches(matched, columns: list[str]) -> dict[str, np.ndarray]:
    chunks = [batch for batches, _ in matched for batch in (batches or [])]
    return {
        name: np.concatenate([c[name] for c in chunks])
        for name in columns
    }


def _mark_deleted(table: "Table", matched, epoch: int) -> int:
    """Record the matched rowids in the delete vectors (primary + buddy).

    Returns entries added to *primary* vectors (what the
    ``delete_vector_rows`` gauge tracks).
    """
    added = 0
    for node, (_, rowids) in enumerate(matched):
        if not len(rowids):
            continue
        added += table.segments[node].delete_vector.add(rowids, epoch)
        if table.buddy_segments is not None:
            table.buddy_segments[node].delete_vector.add(rowids, epoch)
    return added
