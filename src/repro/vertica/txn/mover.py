"""The Tuple Mover: background moveout (WOS → ROS) and mergeout.

Vertica's Tuple Mover is the housekeeping service that makes the
WOS/ROS split workable: *moveout* batch-converts committed WOS batches
into read-optimized rowgroups once the WOS grows past a size or age
threshold, and *mergeout* compacts accumulations of small rowgroups and
purges rows whose delete epoch precedes the Ancient History Mark.

The mover here is one daemon thread per cluster, started lazily on the
first :meth:`TupleMover.notify` (mutation statements call it) and
self-stopping after a stretch of idle cycles, so short-lived test
clusters don't leak threads.  Both operations are also callable
synchronously (:meth:`run_moveout` / :meth:`run_mergeout`) for
deterministic tests; each pass is wrapped in a ``txn.moveout`` /
``txn.mergeout`` span and feeds the ``wos_rows`` / ``delete_vector_rows``
gauges and the ``mergeout_bytes_rewritten`` counter.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["TupleMover", "TupleMoverConfig"]


@dataclass(frozen=True)
class TupleMoverConfig:
    """Thresholds and cadence of the background mover."""

    moveout_rows: int = 4_096          # flush a segment's WOS at this size
    moveout_age_seconds: float = 1.0   # ... or once its oldest batch is this old
    mergeout_small_rows: int = 8_192   # rowgroups under this are "small"
    mergeout_min_run: int = 2          # merge runs of at least this many
    interval_seconds: float = 0.05     # background cycle cadence
    idle_cycles_before_stop: int = 100  # park the thread after this much quiet


class TupleMover:
    """Background moveout/mergeout over every segment of every table."""

    def __init__(self, cluster: "VerticaCluster",
                 config: TupleMoverConfig | None = None) -> None:
        self.cluster = cluster
        self.config = config or TupleMoverConfig()
        self._lock = threading.Lock()        # thread lifecycle
        self._pass_lock = threading.Lock()   # serializes moveout/mergeout passes
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._wos_first_seen: dict[int, float] = {}  # id(segment) -> time
        self._interrupted = False  # a pass died mid-flight (injected crash)
        self.moveout_passes = 0
        self.mergeout_passes = 0

    # -- lifecycle ---------------------------------------------------------

    def notify(self) -> None:
        """Hint that mutations happened; starts (or wakes) the thread."""
        self._wake.set()
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="tuple-mover", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        self._wake.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)

    def _run(self) -> None:
        idle = 0
        while not self._stop.is_set():
            self._wake.wait(timeout=self.config.interval_seconds)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                moved = self.run_moveout(thresholds=True)
                merged, _ = self.run_mergeout()
                folded = self.run_sample_refresh()
            except ReproError:
                # An injected crash killed this pass.  Segment moveout and
                # mergeout are atomic (new storage is built off to the side
                # and spliced in under the segment lock), so the pass can
                # simply be re-run: the daemon survives and the next cycle
                # picks up from the last completed splice.
                moved = merged = folded = 0
            if moved or merged or folded:
                idle = 0
            else:
                idle += 1
                if idle >= self.config.idle_cycles_before_stop:
                    with self._lock:
                        if not self._wake.is_set():
                            self._thread = None
                            return

    # -- moveout -----------------------------------------------------------

    def run_moveout(self, thresholds: bool = False) -> int:
        """One moveout pass over every segment; returns rows flushed.

        With ``thresholds=True`` (the background loop) a segment's WOS is
        only flushed once it exceeds ``moveout_rows`` or its oldest
        unflushed batch has been waiting ``moveout_age_seconds``; a direct
        call flushes every committed batch unconditionally.
        """
        epochs = self.cluster.catalog.epochs
        committed = epochs.current_epoch
        ahm = epochs.ancient_history_mark
        total = 0
        with self._pass_lock:
            try:
                for table in self.cluster.catalog.tables():
                    for segment in table.all_segments():
                        wos_rows = segment.wos_rows
                        if wos_rows == 0:
                            self._wos_first_seen.pop(id(segment), None)
                            continue
                        if thresholds and not self._due(segment, wos_rows):
                            continue
                        faults = self.cluster.faults
                        if faults is not None:
                            faults.perturb("txn.moveout", table=table.name,
                                           node=segment.node_index)
                        with self.cluster.tracer.span(
                                "txn.moveout", table=table.name,
                                node=segment.node_index):
                            moved = segment.moveout(committed, ahm=ahm)
                        if moved:
                            self._wos_first_seen.pop(id(segment), None)
                            total += moved
                            # Gauges track primary copies; buddy WOS mirrors
                            # move in the same pass but aren't double-counted.
                            if segment in table.segments:
                                self.cluster.telemetry.gauge_add(
                                    "wos_rows", -moved)
            except ReproError:
                # The pass died between segment splices.  Already-flushed
                # segments keep their new ROS; untouched segments keep their
                # WOS — scans see either state bit-identically.  The next
                # pass (background cycle or direct call) finishes the job.
                self._interrupted = True
                raise
            self._mark_recovered_locked("moveout")
            if total:
                self.moveout_passes += 1
        return total

    def _mark_recovered_locked(self, operation: str) -> None:
        """A pass ran to completion; if a prior one was killed, record the
        recovery (called with ``_pass_lock`` held)."""
        if not self._interrupted:
            return
        self._interrupted = False
        self.cluster.telemetry.add("mover_restarts")
        with self.cluster.tracer.span("fault.recovered",
                                      mechanism="mover_restart",
                                      operation=operation):
            pass

    def _due(self, segment, wos_rows: int) -> bool:
        if wos_rows >= self.config.moveout_rows:
            return True
        first_seen = self._wos_first_seen.setdefault(id(segment), time.monotonic())
        return time.monotonic() - first_seen >= self.config.moveout_age_seconds

    # -- mergeout ----------------------------------------------------------

    def run_mergeout(self) -> tuple[int, int]:
        """One mergeout pass; returns (bytes rewritten, rows purged).

        Only storage at-or-before the AHM is eligible; advancing the AHM
        (``cluster.advance_ahm()``) is what opens history up for purging.
        """
        ahm = self.cluster.catalog.epochs.ancient_history_mark
        total_bytes = 0
        total_purged = 0
        with self._pass_lock:
            try:
                for table in self.cluster.catalog.tables():
                    for segment in table.all_segments():
                        if not segment.has_mergeout_work(
                                ahm, small_rows=self.config.mergeout_small_rows,
                                min_run=self.config.mergeout_min_run):
                            continue
                        faults = self.cluster.faults
                        if faults is not None:
                            faults.perturb("txn.mergeout", table=table.name,
                                           node=segment.node_index)
                        with self.cluster.tracer.span(
                                "txn.mergeout", table=table.name,
                                node=segment.node_index):
                            nbytes, purged = segment.mergeout(
                                ahm,
                                small_rows=self.config.mergeout_small_rows,
                                min_run=self.config.mergeout_min_run,
                            )
                        total_bytes += nbytes
                        total_purged += purged
                        if purged:
                            table.note_purge()
                        if purged and segment in table.segments:
                            self.cluster.telemetry.gauge_add(
                                "delete_vector_rows", -purged)
            except ReproError:
                # Same crash-safety argument as moveout: mergeout splices
                # rewritten rowgroups atomically per segment, so a killed
                # pass leaves every segment readable and re-runnable.
                self._interrupted = True
                raise
            self._mark_recovered_locked("mergeout")
            if total_bytes:
                self.cluster.telemetry.add(
                    "mergeout_bytes_rewritten", total_bytes)
                self.mergeout_passes += 1
        return total_bytes, total_purged

    # -- sample maintenance ------------------------------------------------

    def run_sample_refresh(self) -> int:
        """Fold committed base-table deltas into stored AQP samples.

        Incremental-only (``allow_rebuild=False``): a sample whose window
        contains deletes stays stale rather than having its backing table
        dropped and rebuilt under concurrent readers; an explicit
        ``refresh_sample`` call performs rebuilds.  Returns rows folded.
        """
        if not self.cluster.aqp.records():
            return 0
        from repro.aqp.refresh import auto_refresh_samples

        return auto_refresh_samples(self.cluster)
