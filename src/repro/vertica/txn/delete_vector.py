"""Per-segment delete vectors: epoch-stamped "this row is gone" sidecars.

A DELETE in Vertica never rewrites read-optimized storage; it records the
deleted rows' positions in a small sidecar stamped with the delete epoch,
and every scan subtracts the sidecar at snapshot resolution.  Our rows
carry a hidden global ``_rowid``, which works uniformly for ROS rowgroups
and WOS batches, so the sidecar here maps ``rowid -> delete epoch``.

Scans never read the live mapping: they take a :meth:`DeleteVector.frozen`
snapshot — two parallel sorted arrays — and apply
:meth:`FrozenDeleteIndex.keep_mask` per batch.  Freezing is safe without
coordination games because a delete committed *after* a scan's snapshot
carries an epoch greater than the snapshot epoch (the mask ignores it),
and purge (mergeout behind the AHM) rebuilds copies rather than mutating
arrays a frozen index may still reference.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["DeleteVector", "FrozenDeleteIndex", "EMPTY_INDEX"]


class FrozenDeleteIndex:
    """An immutable point-in-time view of one segment's delete vector."""

    __slots__ = ("rowids", "epochs")

    def __init__(self, rowids: np.ndarray, epochs: np.ndarray) -> None:
        self.rowids = rowids    # sorted ascending, int64
        self.epochs = epochs    # aligned with rowids, int64

    def __len__(self) -> int:
        return len(self.rowids)

    def keep_mask(self, rowids: np.ndarray, epoch: int) -> np.ndarray:
        """True where a row survives at snapshot ``epoch``.

        A row is filtered out iff it appears in the index with a delete
        epoch ≤ ``epoch``; deletes from the snapshot's future are ignored.
        """
        rowids = np.asarray(rowids, dtype=np.int64)
        if not len(self.rowids) or not len(rowids):
            return np.ones(len(rowids), dtype=bool)
        pos = np.searchsorted(self.rowids, rowids)
        pos = np.minimum(pos, len(self.rowids) - 1)
        deleted = (self.rowids[pos] == rowids) & (self.epochs[pos] <= epoch)
        return ~deleted

    def count_at(self, epoch: int) -> int:
        """How many entries have delete epoch ≤ ``epoch``.

        Because a row can only be deleted once visible, its delete epoch is
        ≥ its insert epoch — so this count subtracts cleanly from the count
        of rows whose insert epoch is ≤ ``epoch``.
        """
        if not len(self.epochs):
            return 0
        return int((self.epochs <= epoch).sum())


EMPTY_INDEX = FrozenDeleteIndex(
    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
)


class DeleteVector:
    """The mutable, thread-safe delete sidecar of one segment."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[int, int] = {}
        self._frozen: FrozenDeleteIndex | None = EMPTY_INDEX

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def add(self, rowids: np.ndarray, epoch: int) -> int:
        """Record ``rowids`` as deleted at ``epoch``; returns rows added.

        First delete wins: a rowid already present keeps its original
        (smaller) delete epoch, so re-deleting an already-deleted row is a
        no-op rather than a resurrection at a later epoch.
        """
        added = 0
        with self._lock:
            for rowid in np.asarray(rowids, dtype=np.int64):
                key = int(rowid)
                if key not in self._entries:
                    self._entries[key] = epoch
                    added += 1
            if added:
                self._frozen = None
        return added

    def rollback_epoch(self, epoch: int) -> int:
        """Drop every entry stamped exactly ``epoch`` (a failed statement).

        Safe for the same reason :meth:`DeleteVector.add` is first-wins:
        entries carrying this epoch are precisely the ones that statement
        added, and the epoch is still pending so no snapshot applied them.
        """
        with self._lock:
            doomed = [k for k, v in self._entries.items() if v == epoch]
            for key in doomed:
                del self._entries[key]
            if doomed:
                self._frozen = None
        return len(doomed)

    def purge(self, rowids: np.ndarray) -> int:
        """Drop entries for ``rowids`` (mergeout removed the rows themselves).

        Copy-on-purge: any frozen index handed out earlier keeps its own
        arrays, so in-flight scans at epochs ≥ AHM are unaffected (the rows
        they would have filtered are gone from storage *and* their scan set
        predates the purge).
        """
        purged = 0
        with self._lock:
            for rowid in np.asarray(rowids, dtype=np.int64):
                if self._entries.pop(int(rowid), None) is not None:
                    purged += 1
            if purged:
                self._frozen = None
        return purged

    def frozen(self) -> FrozenDeleteIndex:
        """An immutable snapshot of the current entries (cached)."""
        with self._lock:
            if self._frozen is None:
                if self._entries:
                    rowids = np.fromiter(
                        self._entries, dtype=np.int64, count=len(self._entries)
                    )
                    order = np.argsort(rowids, kind="stable")
                    rowids = rowids[order]
                    epochs = np.fromiter(
                        self._entries.values(), dtype=np.int64,
                        count=len(self._entries),
                    )[order]
                    self._frozen = FrozenDeleteIndex(rowids, epochs)
                else:
                    self._frozen = EMPTY_INDEX
            return self._frozen
