"""The Write-Optimized Store: per-segment trickle-insert staging.

Encoding a compressed rowgroup per INSERT statement would make trickle
loads quadratically slow; Vertica instead lands small INSERTs in a
row-oriented in-memory WOS and lets the Tuple Mover batch-convert them to
ROS rowgroups later (*moveout*).  Here the WOS is a list of immutable
:class:`WosBatch` objects appended under the owning segment's mutation
lock; scans union the list after the ROS rowgroups, and moveout flushes a
*prefix* of the list — never the middle — so the global scan order
(ROS rowgroups, then remaining WOS batches) is preserved bit for bit
across a flush.
"""

from __future__ import annotations

import numpy as np

from repro.vertica.pipeline import batch_nbytes

__all__ = ["WosBatch"]


class WosBatch:
    """One committed trickle-insert batch: uncompressed column arrays.

    The arrays carry the full stored schema (user columns plus the hidden
    ``_rowid``) and are never mutated after construction — scans slice
    them by numpy views, and moveout re-encodes them wholesale.
    """

    __slots__ = ("epoch", "arrays", "rows", "nbytes")

    def __init__(self, epoch: int, arrays: dict[str, np.ndarray]) -> None:
        self.epoch = epoch
        self.arrays = arrays
        self.rows = len(next(iter(arrays.values()))) if arrays else 0
        self.nbytes = batch_nbytes(arrays)

    def read(self, names: list[str]) -> dict[str, np.ndarray]:
        return {name: self.arrays[name] for name in names}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WosBatch(epoch={self.epoch}, rows={self.rows})"
