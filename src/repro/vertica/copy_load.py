"""Bulk CSV ingest: the ``COPY table FROM 'file'`` path.

"In a typical enterprise scenario, customers use standard ETL processes to
first load data into Vertica" (§2) — this module is that ETL edge: a
streaming CSV reader that parses in batches, coerces to the table schema,
and routes rows through the normal segmentation machinery.  Also provides
the writer used to stage DR-disk (ext4) datasets for the Fig 21 comparison.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import CatalogError, StorageError
from repro.storage.encoding import SqlType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["copy_from_csv", "write_csv"]

DEFAULT_BATCH_ROWS = 50_000


def copy_from_csv(
    cluster: "VerticaCluster",
    table_name: str,
    path: str | Path,
    delimiter: str = ",",
    header: bool = True,
    null_token: str = "",
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> int:
    """Stream a CSV file into an existing table; returns rows loaded.

    With ``header=True`` the file's column order is taken from its header
    (any order, must cover the table's columns); otherwise the file must
    list columns in table order.  Values equal to ``null_token`` load as
    NaN/empty-string depending on the column type.
    """
    table = cluster.catalog.get_table(table_name)
    path = Path(path)
    if not path.exists():
        raise StorageError(f"CSV file not found: {path}")
    if batch_rows < 1:
        raise CatalogError("batch_rows must be positive")

    expected = table.column_names
    total = 0
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        if header:
            try:
                file_columns = [c.strip() for c in next(reader)]
            except StopIteration:
                return 0
            missing = [c for c in expected if c not in file_columns]
            if missing:
                raise CatalogError(
                    f"CSV header {file_columns} missing table columns {missing}"
                )
            positions = [file_columns.index(c) for c in expected]
        else:
            positions = list(range(len(expected)))

        for batch in _batched_rows(reader, batch_rows):
            columns: dict[str, np.ndarray] = {}
            for position, column_name in zip(positions, expected):
                column = table.column(column_name)
                raw = [row[position] if position < len(row) else null_token
                       for row in batch]
                columns[column_name] = _parse_column(
                    raw, column.sql_type, null_token, column_name)
            total += table.insert(columns)
    cluster.telemetry.add("rows_loaded", total)
    return total


def _batched_rows(reader: Iterator[list[str]], batch_rows: int
                  ) -> Iterator[list[list[str]]]:
    batch: list[list[str]] = []
    for row in reader:
        if not row:
            continue
        batch.append(row)
        if len(batch) >= batch_rows:
            yield batch
            batch = []
    if batch:
        yield batch


def _parse_column(raw: list[str], sql_type: SqlType, null_token: str,
                  column_name: str) -> np.ndarray:
    if sql_type is SqlType.VARCHAR:
        return np.asarray(
            [None if v == null_token else v for v in raw], dtype=object)
    if sql_type is SqlType.BOOLEAN:
        truthy = {"t", "true", "1", "yes"}
        falsy = {"f", "false", "0", "no"}
        values = []
        for v in raw:
            lowered = v.strip().lower()
            if lowered in truthy:
                values.append(True)
            elif lowered in falsy or v == null_token:
                values.append(False)
            else:
                raise StorageError(
                    f"bad boolean {v!r} in column {column_name!r}")
        return np.asarray(values, dtype=bool)
    try:
        if sql_type is SqlType.INTEGER:
            return np.asarray(
                [0 if v == null_token else int(v) for v in raw], dtype=np.int64)
        return np.asarray(
            [np.nan if v == null_token else float(v) for v in raw],
            dtype=np.float64)
    except ValueError as exc:
        raise StorageError(
            f"bad {sql_type.value} value in column {column_name!r}: {exc}"
        ) from exc


def write_csv(
    path: str | Path,
    columns: dict[str, np.ndarray],
    delimiter: str = ",",
    header: bool = True,
) -> int:
    """Write per-column arrays to a CSV file; returns rows written."""
    names = list(columns)
    if not names:
        raise StorageError("write_csv requires at least one column")
    arrays = [np.atleast_1d(np.asarray(columns[name])) for name in names]
    lengths = {len(arr) for arr in arrays}
    if len(lengths) != 1:
        raise StorageError(f"ragged columns in write_csv: {lengths}")
    (rows,) = lengths
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header:
            writer.writerow(names)
        for i in range(rows):
            writer.writerow([_format_value(arr[i]) for arr in arrays])
    return rows


def _format_value(value) -> str:
    if value is None:
        return ""
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.bool_, bool)):
        return "true" if value else "false"
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    return str(value)
