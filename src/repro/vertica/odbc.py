"""ODBC-style connections: the slow baseline the paper improves upon.

An :class:`OdbcConnection` reproduces the three properties §1.1 and §3 blame
for slow extraction:

1. **Row orientation** — results are serialized row-at-a-time to delimited
   text and parsed back by the client (real CPU work per row, like an ODBC
   driver's conversion layer).
2. **Ordered range fetches destroy locality** — a client asking for global
   rows ``[start, stop)`` forces every node to scan its segments and filter
   by the hidden row id, then the initiator re-sorts; the rows of one range
   come from *all* nodes.
3. **Connection storms** — each concurrent fetch holds a per-node scan slot
   while scanning; hundreds of connections queue on the bounded slots,
   which is the "overwhelm the database" effect of Figure 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ExecutionError, TransferError
from repro.vertica.executor import ResultSet
from repro.vertica.table import ROWID_COLUMN

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vertica.cluster import VerticaCluster

__all__ = ["OdbcConnection"]


class OdbcConnection:
    """One client connection with a simple cursor interface."""

    def __init__(self, cluster: "VerticaCluster", user: str = "dbadmin") -> None:
        self.cluster = cluster
        self.user = user
        self._closed = False
        self._result: ResultSet | None = None
        self._cursor_position = 0
        self.bytes_transferred = 0
        self.rows_transferred = 0
        cluster.telemetry.add("odbc_connections_opened")

    # -- standard cursor API -------------------------------------------------

    def execute(self, sql: str) -> "OdbcConnection":
        """Run a SQL statement; SELECT results become fetchable."""
        self._check_open()
        result = self.cluster.sql(sql, user=self.user)
        self._install_result(result)
        return self

    def fetchone(self) -> tuple | None:
        self._check_open()
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, size: int = 1000) -> list[tuple]:
        """Fetch up to ``size`` rows, charged through the text wire format."""
        self._check_open()
        if self._result is None:
            raise ExecutionError("no result set; execute a SELECT first")
        start = self._cursor_position
        stop = min(start + size, len(self._result))
        if start >= stop:
            return []
        self._cursor_position = stop
        arrays = self._result.as_arrays()
        window = {
            name: arrays[name][start:stop] for name in self._result.column_names
        }
        wire = _serialize_rows(self._result.column_names, window)
        self.bytes_transferred += len(wire)
        self.cluster.telemetry.add("odbc_bytes", len(wire))
        rows = _parse_rows(wire, self._column_kinds(window))
        self.rows_transferred += len(rows)
        self.cluster.telemetry.add("odbc_rows", len(rows))
        return rows

    def fetchall(self) -> list[tuple]:
        self._check_open()
        rows: list[tuple] = []
        while True:
            chunk = self.fetchmany(65_536)
            if not chunk:
                return rows
            rows.extend(chunk)

    def close(self) -> None:
        self._closed = True
        self._result = None

    def __enter__(self) -> "OdbcConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the range-fetch path used by parallel extraction ----------------------

    def fetch_row_range(
        self, table_name: str, columns: list[str], start_row: int, stop_row: int
    ) -> dict[str, np.ndarray]:
        """Fetch global rows ``[start_row, stop_row)`` of a table.

        This is what each of the N parallel R instances does in the paper's
        ODBC setup: instance *i* asks for its 1/N slice of the table in
        global row order.  Serving it requires every node to scan and filter
        its segments (holding a scan slot), then a global sort by row id.
        """
        self._check_open()
        if start_row < 0 or stop_row < start_row:
            raise TransferError(f"bad row range [{start_row}, {stop_row})")
        table = self.cluster.catalog.get_table(table_name)
        for column in columns:
            table.column(column)  # validates existence

        pieces: list[dict[str, np.ndarray]] = []
        for node_index in range(table.node_count):
            batch = self.cluster.scan_node_with_failover(
                table, node_index, columns, include_rowid=True)
            rowids = batch[ROWID_COLUMN]
            mask = (rowids >= start_row) & (rowids < stop_row)
            if mask.any():
                pieces.append({name: arr[mask] for name, arr in batch.items()})
        if not pieces:
            empty = {
                name: np.empty(0, dtype=table.column(name).numpy_dtype)
                for name in columns
            }
            return empty

        gathered = {
            name: np.concatenate([p[name] for p in pieces])
            for name in list(columns) + [ROWID_COLUMN]
        }
        order = np.argsort(gathered[ROWID_COLUMN], kind="stable")
        ordered = {name: gathered[name][order] for name in columns}

        # Round-trip through the delimited text wire format: this is the
        # row-at-a-time conversion cost inherent to ODBC extraction.
        wire = _serialize_rows(columns, ordered)
        self.bytes_transferred += len(wire)
        self.rows_transferred += len(ordered[columns[0]]) if columns else 0
        self.cluster.telemetry.add("odbc_bytes", len(wire))
        self.cluster.telemetry.add("odbc_rows", len(order))
        kinds = self._column_kinds(ordered)
        parsed_rows = _parse_rows(wire, kinds)
        out: dict[str, np.ndarray] = {}
        for i, name in enumerate(columns):
            values = [row[i] for row in parsed_rows]
            dtype = table.column(name).numpy_dtype
            out[name] = np.asarray(values, dtype=dtype)
        return out

    # -- internals -------------------------------------------------------------

    def _install_result(self, result: ResultSet) -> None:
        self._result = result
        self._cursor_position = 0

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("connection is closed")

    @staticmethod
    def _column_kinds(columns: dict[str, np.ndarray]) -> list[str]:
        kinds = []
        for arr in columns.values():
            arr = np.asarray(arr)
            if arr.dtype == object:
                kinds.append("str")
            elif arr.dtype.kind == "b":
                kinds.append("bool")
            elif arr.dtype.kind in "iu":
                kinds.append("int")
            else:
                kinds.append("float")
        return kinds


def _serialize_rows(names: list[str], columns: dict[str, np.ndarray]) -> bytes:
    """Render rows as tab-separated text, one line per row."""
    arrays = [np.atleast_1d(np.asarray(columns[name])) for name in names]
    if not arrays:
        return b""
    lines = []
    for i in range(len(arrays[0])):
        lines.append("\t".join(_format_value(arr[i]) for arr in arrays))
    return ("\n".join(lines)).encode("utf-8")


def _format_value(value) -> str:
    if isinstance(value, (np.floating, float)):
        return repr(float(value))
    if isinstance(value, (np.bool_, bool)):
        return "t" if value else "f"
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    if value is None:
        return ""
    # Escape the wire format's structural characters in string values.
    return (str(value).replace("\\", "\\\\")
            .replace("\t", "\\t").replace("\n", "\\n"))


def _unescape_string(text: str) -> str:
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            if nxt == "t":
                out.append("\t")
                i += 2
                continue
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt == "\\":
                out.append("\\")
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_rows(wire: bytes, kinds: list[str]) -> list[tuple]:
    """Parse the text wire format back into typed Python tuples."""
    if not wire:
        return []
    converters = {
        "int": int,
        "float": float,
        "bool": lambda s: s == "t",
        "str": _unescape_string,
    }
    fns = [converters[kind] for kind in kinds]
    rows = []
    for line in wire.decode("utf-8").split("\n"):
        fields = line.split("\t")
        if len(fields) != len(fns):
            raise TransferError("malformed wire row")
        rows.append(tuple(fn(field) for fn, field in zip(fns, fields)))
    return rows
